//! Criterion bench: sweep vs the standard O(|E|²) NBM baseline vs the
//! MST baseline — the head-to-head of Fig. 4(2) in micro form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linkclust_core::baseline::{MstClustering, NbmClustering};
use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, SweepConfig};
use linkclust_graph::generate::{gnm, WeightMode};

fn bench_baselines(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let mut group = c.benchmark_group("baseline");
    for &(n, m) in &[(60usize, 400usize), (100, 1000), (150, 2500)] {
        let g = gnm(n, m, w, 11);
        let sims = compute_similarities(&g);
        let sorted = sims.clone().into_sorted();
        let id = format!("n{n}_m{m}");
        group.bench_with_input(BenchmarkId::new("sweep", &id), &(), |b, ()| {
            b.iter(|| sweep(&g, &sorted, SweepConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("mst_kruskal", &id), &(), |b, ()| {
            b.iter(|| MstClustering::new().run(&g, &sims));
        });
        group.bench_with_input(BenchmarkId::new("standard_nbm", &id), &(), |b, ()| {
            b.iter(|| NbmClustering::new().run(&g, &sims));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_baselines
}
criterion_main!(benches);
