//! Criterion bench: coarse-grained vs fine-grained sweeping (Fig. 5(2))
//! plus ablations over γ and φ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linkclust_core::coarse::{coarse_sweep, CoarseConfig};
use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, SweepConfig};
use linkclust_graph::generate::{barabasi_albert, WeightMode};

fn bench_coarse(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let mut group = c.benchmark_group("coarse_vs_fine");
    for &n in &[300usize, 600, 1200] {
        let g = barabasi_albert(n, 6, w, 9);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig {
            phi: 100.min(g.edge_count() / 4).max(1),
            initial_chunk: (sims.incident_pair_count() / 1000).max(8),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("fine", n), &(), |b, ()| {
            b.iter(|| sweep(&g, &sims, SweepConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("coarse", n), &(), |b, ()| {
            b.iter(|| coarse_sweep(&g, &sims, cfg));
        });
    }
    group.finish();

    // Ablation: the soundness bound γ trades rollback work against level
    // granularity; φ bounds how much of the tail is processed.
    let g = barabasi_albert(600, 6, w, 9);
    let sims = compute_similarities(&g).into_sorted();
    let mut group = c.benchmark_group("coarse_ablation");
    for &gamma in &[1.25, 2.0, 4.0] {
        let cfg = CoarseConfig { gamma, phi: 50, initial_chunk: 64, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("gamma", format!("{gamma}")), &(), |b, ()| {
            b.iter(|| coarse_sweep(&g, &sims, cfg));
        });
    }
    for &phi in &[10usize, 100, 1000] {
        let cfg = CoarseConfig { phi, initial_chunk: 64, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("phi", phi), &(), |b, ()| {
            b.iter(|| coarse_sweep(&g, &sims, cfg));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coarse
}
criterion_main!(benches);
