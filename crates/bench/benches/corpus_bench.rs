//! Criterion bench: text-substrate throughput — tokenizer, Porter
//! stemmer, pipeline, and association-network construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use linkclust_corpus::assoc::AssocNetworkBuilder;
use linkclust_corpus::porter::stem;
use linkclust_corpus::synth::{SynthCorpus, SynthCorpusConfig};
use linkclust_corpus::TextPipeline;

fn bench_corpus(c: &mut Criterion) {
    let sc = SynthCorpus::generate(&SynthCorpusConfig {
        documents: 2_000,
        vocabulary: 800,
        topics: 10,
        seed: 1,
        ..Default::default()
    });
    let tweets = sc.render_tweets(2);
    let total_bytes: usize = tweets.iter().map(String::len).sum();

    let mut group = c.benchmark_group("corpus/pipeline");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("tokenize_stem_filter", |b| {
        let p = TextPipeline::new();
        b.iter(|| p.process_all(&tweets));
    });
    group.finish();

    c.bench_function("corpus/porter_stemmer", |b| {
        let words: Vec<String> = sc.vocabulary().iter().take(500).cloned().collect();
        b.iter(|| {
            let mut n = 0;
            for w in &words {
                n += stem(w).len();
                n += stem(&format!("{w}ing")).len();
                n += stem(&format!("{w}ed")).len();
            }
            n
        });
    });

    let mut group = c.benchmark_group("corpus/assoc_network");
    for &top in &[50usize, 200, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(top), &top, |b, &top| {
            b.iter(|| {
                AssocNetworkBuilder::new()
                    .top_words(top)
                    .min_document_count(2)
                    .build(sc.documents())
                    .expect("non-empty corpus")
            });
        });
    }
    group.finish();

    c.bench_function("corpus/synth_generate", |b| {
        b.iter(|| {
            SynthCorpus::generate(&SynthCorpusConfig {
                documents: 1_000,
                vocabulary: 400,
                topics: 8,
                seed: 3,
                ..Default::default()
            })
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corpus
}
criterion_main!(benches);
