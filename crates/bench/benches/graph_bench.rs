//! Criterion bench: graph substrate operations — statistics (K₁/K₂/K₃),
//! edge lookup, and the cluster-array / union-find comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linkclust_core::unionfind::UnionFind;
use linkclust_core::ClusterArray;
use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_graph::stats::GraphStats;
use linkclust_graph::{EdgeIndex, GraphView, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_graph(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let mut group = c.benchmark_group("graph/stats");
    for &(n, m) in &[(200usize, 2000usize), (500, 10000), (1000, 40000)] {
        let g = gnm(n, m, w, 1);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_m{m}")), &g, |b, g| {
            b.iter(|| GraphStats::compute(g));
        });
    }
    group.finish();

    // Edge lookup two ways: the trait's per-query binary search vs the
    // O(1) probe of a precomputed index (what the hot paths now use).
    let g = gnm(500, 10000, w, 1);
    c.bench_function("graph/edge_lookup/scan", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        b.iter(|| {
            let u = VertexId::new(rng.gen_range(0..500));
            let v = VertexId::new(rng.gen_range(0..500));
            GraphView::edge_between(&g, u, v)
        });
    });
    c.bench_function("graph/edge_lookup/index", |b| {
        let index = EdgeIndex::for_graph(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        b.iter(|| {
            let u = VertexId::new(rng.gen_range(0..500));
            let v = VertexId::new(rng.gen_range(0..500));
            index.edge_between(u, v)
        });
    });

    // Ablation: the paper's chain array vs classic union-find on the
    // same random merge workload.
    let mut rng = SmallRng::seed_from_u64(2);
    let n = 20_000usize;
    let ops: Vec<(usize, usize)> =
        (0..n).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
    let mut group = c.benchmark_group("merge_structure");
    group.bench_function("cluster_array", |b| {
        b.iter(|| {
            let mut ca = ClusterArray::new(n);
            for &(i, j) in &ops {
                ca.merge(i, j);
            }
            ca.cluster_count()
        });
    });
    group.bench_function("union_find", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(n);
            for &(i, j) in &ops {
                uf.union(i, j);
            }
            uf.set_count()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph
}
criterion_main!(benches);
