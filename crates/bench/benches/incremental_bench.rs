//! Criterion bench: incremental similarity maintenance vs batch
//! recomputation — the amortized cost of one edge update against a full
//! Phase-I rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linkclust_core::incremental::IncrementalSimilarities;
use linkclust_core::init::compute_similarities;
use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_graph::VertexId;

fn bench_incremental(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let mut group = c.benchmark_group("incremental");
    for &(n, m) in &[(200usize, 2000usize), (400, 6000)] {
        let g = gnm(n, m, w, 5);
        let id = format!("n{n}_m{m}");

        // Cost of one add+remove cycle on a warm index.
        group.bench_with_input(BenchmarkId::new("single_update", &id), &(), |b, ()| {
            let mut inc = IncrementalSimilarities::from_graph(&g);
            // A vertex pair guaranteed absent: rotate through candidates.
            let mut k = 0usize;
            b.iter(|| {
                // find a free pair deterministically
                loop {
                    let u = VertexId::new(k % n);
                    let v = VertexId::new((k * 7 + 1) % n);
                    k += 1;
                    if u != v && inc.weight_between(u, v).is_none() {
                        inc.add_edge(u, v, 1.0).expect("pair is free");
                        inc.remove_edge(u, v).expect("edge exists");
                        break;
                    }
                }
            });
        });

        // Cost of a full batch recomputation for the same graph.
        group.bench_with_input(BenchmarkId::new("batch_rebuild", &id), &(), |b, ()| {
            b.iter(|| compute_similarities(&g));
        });

        // Cost of a snapshot (materializing scores) from the warm index.
        group.bench_with_input(BenchmarkId::new("snapshot", &id), &(), |b, ()| {
            let inc = IncrementalSimilarities::from_graph(&g);
            b.iter(|| inc.similarities());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_incremental
}
criterion_main!(benches);
