//! Criterion bench: Phase I (similarity initialization) across graph
//! sizes — the `Initialization` series of Fig. 4(2) in micro form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use linkclust_core::init::compute_similarities;
use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};

fn bench_init(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let mut group = c.benchmark_group("init/gnm");
    for &(n, m) in &[(100usize, 500usize), (200, 2000), (400, 8000)] {
        let g = gnm(n, m, w, 42);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_m{m}")), &g, |b, g| {
            b.iter(|| compute_similarities(g));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("init/power_law");
    for &n in &[200usize, 500, 1000] {
        let g = barabasi_albert(n, 6, w, 7);
        group.throughput(Throughput::Elements(g.edge_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| compute_similarities(g));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_init
}
criterion_main!(benches);
