//! Criterion bench: multi-threaded initialization and sweeping vs thread
//! count (Fig. 6 in micro form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linkclust_core::coarse::CoarseConfig;
use linkclust_core::init::compute_similarities;
use linkclust_graph::generate::{barabasi_albert, WeightMode};
use linkclust_parallel::{compute_similarities_parallel, parallel_coarse_sweep};

fn bench_parallel(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let g = barabasi_albert(800, 8, w, 4);

    let mut group = c.benchmark_group("parallel_init");
    for &threads in &[1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| compute_similarities_parallel(&g, t));
        });
    }
    group.finish();

    let sims = compute_similarities(&g).into_sorted();
    let cfg = CoarseConfig {
        phi: 100,
        initial_chunk: (sims.incident_pair_count() / 500).max(16),
        ..Default::default()
    };
    let mut group = c.benchmark_group("parallel_sweep");
    for &threads in &[1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| parallel_coarse_sweep(&g, &sims, cfg, t));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}
criterion_main!(benches);
