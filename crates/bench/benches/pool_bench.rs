//! Criterion benchmarks isolating the persistent-pool win:
//!
//! * `pool_dispatch` — raw fan-out overhead: dispatching a batch of
//!   tiny tasks through the persistent [`WorkerPool`] vs spawning fresh
//!   scoped threads for the same batch. This is the per-chunk fixed
//!   cost the pool amortises.
//! * `chunk_throughput` — the full coarse sweep in the many-small-chunk
//!   regime (high `phi`, small `initial_chunk`), pooled
//!   [`ParallelChunkProcessor`] vs the historical
//!   [`SpawnPerChunkProcessor`] baseline.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linkclust_bench::spawnchunk::SpawnPerChunkProcessor;
use linkclust_core::coarse::{coarse_sweep_with, CoarseConfig};
use linkclust_core::init::compute_similarities;
use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_parallel::pool::{Task, WorkerPool};
use linkclust_parallel::ParallelChunkProcessor;

fn bench_pool_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch");
    for threads in [2usize, 4] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("pooled", threads), &threads, |b, &t| {
            b.iter(|| {
                let tasks: Vec<Task<u64>> = (0..t as u64)
                    .map(|i| Box::new(move || black_box(i) * 3 + 1) as Task<u64>)
                    .collect();
                black_box(pool.run_tasks(tasks))
            });
        });
        group.bench_with_input(BenchmarkId::new("spawn_scoped", threads), &threads, |b, &t| {
            b.iter(|| {
                let out: Vec<u64> = std::thread::scope(|s| {
                    let handles: Vec<_> =
                        (0..t as u64).map(|i| s.spawn(move || black_box(i) * 3 + 1)).collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                black_box(out)
            });
        });
    }
    group.finish();
}

fn bench_chunk_throughput(c: &mut Criterion) {
    let g = gnm(400, 1600, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 42);
    let sims = Arc::new(compute_similarities(&g).into_sorted());
    let cfg = CoarseConfig { phi: 150, initial_chunk: 8, ..Default::default() };
    let threads = 4usize;

    let mut group = c.benchmark_group("chunk_throughput");
    group.sample_size(10);
    let mut pooled = ParallelChunkProcessor::new(threads)
        .unwrap()
        .min_entries_per_thread(1)
        .shared_entries(Arc::clone(&sims));
    group.bench_function(BenchmarkId::new("pooled", threads), |b| {
        b.iter(|| black_box(coarse_sweep_with(&g, &sims, cfg, &mut pooled)));
    });
    group.bench_function(BenchmarkId::new("spawn_per_chunk", threads), |b| {
        b.iter(|| {
            let mut proc = SpawnPerChunkProcessor::new(threads).min_entries_per_thread(1);
            black_box(coarse_sweep_with(&g, &sims, cfg, &mut proc))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pool_dispatch, bench_chunk_throughput
}
criterion_main!(benches);
