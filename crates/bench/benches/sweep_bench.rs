//! Criterion bench: Phase II (sweeping) across graph sizes — the
//! `Sweeping` series of Fig. 4(2) in micro form. Initialization and
//! sorting are done once outside the timed loop to isolate the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, EdgeOrder, SweepConfig};
use linkclust_graph::generate::{gnm, k_regular, WeightMode};

fn bench_sweep(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let mut group = c.benchmark_group("sweep/gnm");
    for &(n, m) in &[(100usize, 500usize), (200, 2000), (400, 8000)] {
        let g = gnm(n, m, w, 42);
        let sims = compute_similarities(&g).into_sorted();
        group.throughput(Throughput::Elements(sims.incident_pair_count()));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(&g, &sims),
            |b, (g, sims)| b.iter(|| sweep(g, sims, SweepConfig::default())),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("sweep/kregular");
    for &n in &[500usize, 1000, 2000] {
        let g = k_regular(n, 12, w, 3);
        let sims = compute_similarities(&g).into_sorted();
        group.throughput(Throughput::Elements(sims.incident_pair_count()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&g, &sims), |b, (g, sims)| {
            b.iter(|| sweep(g, sims, SweepConfig::default()));
        });
    }
    group.finish();

    // Ablation: shuffled vs insertion edge order (the paper assigns ids
    // "in a random order"; the partition is invariant, the cost is too).
    let g = gnm(200, 2000, w, 5);
    let sims = compute_similarities(&g).into_sorted();
    let mut group = c.benchmark_group("sweep/edge_order");
    group.bench_function("insertion", |b| b.iter(|| sweep(&g, &sims, SweepConfig::default())));
    group.bench_function("shuffled", |b| {
        b.iter(|| {
            sweep(
                &g,
                &sims,
                SweepConfig { edge_order: EdgeOrder::Shuffled { seed: 1 }, ..Default::default() },
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep
}
criterion_main!(benches);
