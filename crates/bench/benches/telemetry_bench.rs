//! Criterion bench: telemetry overhead on the full pipeline.
//!
//! The acceptance bar for the observability layer is that a run with the
//! default disabled telemetry stays within noise (<5%) of the
//! pre-telemetry pipeline, and that `stats(true)` stays cheap because
//! counters are batched per phase rather than recorded per merge.
//! Compares, on gnm(10_000, ·):
//!
//! * `off`     — disabled telemetry (the default; no clock reads),
//! * `stats`   — the built-in [`RunRecorder`] aggregation,
//! * `custom`  — a bench-side event-log sink,
//! * `traced`  — `stats` plus per-thread event tracing into ring
//!   buffers (no file write; measures the recording cost alone).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use linkclust_bench::telemetry::EventLog;
use linkclust_core::telemetry::TraceCollector;
use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_parallel::LinkClustering;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let g = gnm(10_000, 50_000, w, 42);

    let mut group = c.benchmark_group("telemetry/fine_run");
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("off"), &g, |b, g| {
        b.iter(|| LinkClustering::new().run(g).unwrap());
    });
    group.bench_with_input(BenchmarkId::from_parameter("stats"), &g, |b, g| {
        b.iter(|| LinkClustering::new().stats(true).run(g).unwrap());
    });
    group.bench_with_input(BenchmarkId::from_parameter("custom"), &g, |b, g| {
        b.iter(|| LinkClustering::new().recorder(Arc::new(EventLog::new())).run(g).unwrap());
    });
    group.bench_with_input(BenchmarkId::from_parameter("traced"), &g, |b, g| {
        b.iter(|| {
            LinkClustering::new()
                .stats(true)
                .tracer(Arc::new(TraceCollector::new()))
                .run(g)
                .unwrap()
        });
    });
    group.finish();

    let mut group = c.benchmark_group("telemetry/parallel_run");
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("off_t{threads}")),
            &g,
            |b, g| b.iter(|| LinkClustering::new().threads(threads).run(g).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("stats_t{threads}")),
            &g,
            |b, g| b.iter(|| LinkClustering::new().threads(threads).stats(true).run(g).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("traced_t{threads}")),
            &g,
            |b, g| {
                b.iter(|| {
                    LinkClustering::new()
                        .threads(threads)
                        .stats(true)
                        .tracer(Arc::new(TraceCollector::new()))
                        .run(g)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_telemetry_overhead
}
criterion_main!(benches);
