//! A counting global allocator.
//!
//! The paper reports virtual-memory footprints (Fig. 4(3), Fig. 5(2));
//! the harness substitutes *peak live heap bytes*, tracked by wrapping
//! the system allocator. Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: linkclust_bench::alloc::CountingAlloc = linkclust_bench::alloc::CountingAlloc;
//! ```
//!
//! then bracket a measurement with [`reset_peak`] / [`peak_bytes`].
//!
//! All counter accesses are `Relaxed`: each update is a single atomic
//! RMW, and a reader observes another thread's allocations only through
//! its own happens-before edge with that thread (a `join`, or the
//! worker pool's caller-helps rendezvous) — not through these
//! orderings. Measurement brackets in this workspace always hold such
//! an edge (the pool run they bracket has completed), so the counts
//! they read are exact; an unsynchronized concurrent read would be
//! advisory only.

// The workspace denies `unsafe_code`; this module is the single audited
// exception — implementing `GlobalAlloc` is inherently unsafe, and every
// unsafe block here only forwards to the `System` allocator with the
// caller's own layout, which preserves its contract verbatim.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] wrapper around [`System`] that tracks current and
/// peak live bytes.
pub struct CountingAlloc;

impl CountingAlloc {
    fn record_alloc(size: usize) {
        let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size; // ordering: stats RMW
        PEAK.fetch_max(cur, Ordering::Relaxed); // ordering: monotone-max stats RMW
        TOTAL_BYTES.fetch_add(size, Ordering::Relaxed); // ordering: stats RMW
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed); // ordering: stats RMW
    }

    fn record_dealloc(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed); // ordering: stats RMW
    }
}

// SAFETY: delegates all allocation to `System`; the counters are simple
// atomics with no aliasing concerns.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                Self::record_alloc(new_size - layout.size());
            } else {
                Self::record_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

/// Live heap bytes right now (0 if the counting allocator is not
/// installed). Exact for allocations the caller happens-after (see the
/// module note); advisory for threads still running.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed) // ordering: see module note on reader HB edges
}

/// Peak live heap bytes since the last [`reset_peak`]. Exact once the
/// measured threads have been joined or rendezvoused with (see the
/// module note); advisory while they still run.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed) // ordering: see module note on reader HB edges
}

/// Resets the peak to the current live count and returns the old peak.
pub fn reset_peak() -> usize {
    // ordering: stats RMW + read; see module note on reader HB edges
    PEAK.swap(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// Measures the peak live heap growth while running `f`: resets the
/// peak, runs, and returns `(result, peak_bytes − bytes_at_entry)`.
///
/// Returns 0 growth when the counting allocator is not installed.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = current_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(before))
}

/// Cumulative allocation traffic since process start: `(bytes, calls)`.
/// Monotone — diff two snapshots to attribute traffic to a region (this
/// is how the pool bench shows the per-chunk clone traffic going away).
#[must_use]
pub fn total_allocated() -> (usize, usize) {
    // ordering: monotone stats reads; see module note on reader HB edges
    (TOTAL_BYTES.load(Ordering::Relaxed), TOTAL_ALLOCS.load(Ordering::Relaxed))
}

/// Measures cumulative allocation traffic attributable to `f`:
/// `(result, bytes_allocated, allocation_calls)`. Both are 0 when the
/// counting allocator is not installed.
pub fn measure_alloc_traffic<T>(f: impl FnOnce() -> T) -> (T, usize, usize) {
    let (bytes0, calls0) = total_allocated();
    let out = f();
    let (bytes1, calls1) = total_allocated();
    (out, bytes1.saturating_sub(bytes0), calls1.saturating_sub(calls0))
}

/// Formats a byte count human-readably (KiB/MiB/GiB).
#[must_use]
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0 MiB");
        assert_eq!(format_bytes(5 * 1024 * 1024 * 1024), "5.0 GiB");
    }

    #[test]
    fn measure_peak_without_installed_allocator_is_safe() {
        // In the test harness the counting allocator is not the global
        // one, so counters stay 0 — the API must still be well-behaved.
        let (value, growth) = measure_peak(|| vec![0u8; 1024].len());
        assert_eq!(value, 1024);
        let _ = growth; // 0 here; > 0 when installed (verified in repro)
        assert!(current_bytes() <= peak_bytes() || peak_bytes() == 0);
    }
}
