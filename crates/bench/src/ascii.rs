//! Terminal plotting: compact ASCII renditions of the figure curves, so
//! `repro` output is readable without gnuplot.

/// Renders `values` as a one-line sparkline using eighth-block glyphs.
///
/// # Examples
///
/// ```
/// use linkclust_bench::ascii::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        return GLYPHS[0].to_string().repeat(values.len());
    }
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return GLYPHS[0];
            }
            let t = ((v - lo) / span * 7.0).round() as usize;
            GLYPHS[t.min(7)]
        })
        .collect()
}

/// Renders an xy-curve as a fixed-size ASCII scatter plot (rows ×
/// cols). Points are marked `*`; axes are drawn on the left and bottom.
#[must_use]
pub fn scatter(points: &[(f64, f64)], rows: usize, cols: usize) -> String {
    let rows = rows.max(2);
    let cols = cols.max(2);
    let mut grid = vec![vec![' '; cols]; rows];
    if !points.is_empty() {
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        let xs = (x_hi - x_lo).max(1e-12);
        let ys = (y_hi - y_lo).max(1e-12);
        for &(x, y) in points {
            let c = (((x - x_lo) / xs) * (cols - 1) as f64).round() as usize;
            let r = (((y - y_lo) / ys) * (rows - 1) as f64).round() as usize;
            grid[rows - 1 - r.min(rows - 1)][c.min(cols - 1)] = '*';
        }
    }
    let mut out = String::new();
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    out
}

/// Downsamples `values` to at most `max_points` evenly spaced samples
/// (keeps endpoints).
#[must_use]
pub fn downsample(values: &[f64], max_points: usize) -> Vec<f64> {
    let max_points = max_points.max(2);
    if values.len() <= max_points {
        return values.to_vec();
    }
    (0..max_points)
        .map(|i| {
            let idx = i * (values.len() - 1) / (max_points - 1);
            values[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_glyph_range() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn sparkline_handles_flat_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[3.0, 3.0, 3.0]);
        assert_eq!(flat.chars().count(), 3);
        let nan = sparkline(&[f64::NAN, f64::NAN]);
        assert_eq!(nan.chars().count(), 2);
    }

    #[test]
    fn scatter_shape() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = scatter(&pts, 6, 30);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 7); // 6 rows + axis
        assert!(lines[6].starts_with('+'));
        assert!(s.contains('*'));
        // Monotone curve: the bottom-left region holds the low end.
        assert!(lines[5].contains('*'));
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[9], 99.0);
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }
}
