//! The scale benchmark ladder: generator families × edge tiers up to
//! 10⁶ edges, each rung timed on the CSR backend at threads {1, 2, 4, 8}
//! and checked bit-for-bit against the adjacency-list oracle. Results
//! land in `BENCH_scale.json` (override with `--out <path>`).
//!
//! The parent process re-executes itself once per rung with
//! `--one-rung <family:tier>` so every rung's peak RSS (`VmHWM`) is
//! measured in an otherwise-clean process; the child prints its rung
//! report as one JSON line on stdout. If re-execution fails (no procfs,
//! exotic sandbox), the parent falls back to measuring the rung
//! in-process and the rung's `peak_rss_bytes` inherits earlier rungs'
//! footprint.
//!
//! Run via `cargo xtask bench-ladder [--smoke]` or directly:
//!
//! ```text
//! cargo run --release -p linkclust-bench --bin bench_ladder -- --smoke
//! ```

use std::process::{Command, Stdio};

use linkclust_bench::ladder::{
    detect_hardware, document_json, run_rung, rung_specs, RungSpec, THREADS,
};

struct Args {
    smoke: bool,
    runs: usize,
    out_path: String,
    one_rung: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed =
        Args { smoke: false, runs: 3, out_path: String::from("BENCH_scale.json"), one_rung: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--runs" => {
                parsed.runs =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or(parsed.runs).max(1);
            }
            "--out" => {
                if let Some(v) = args.next() {
                    parsed.out_path = v;
                }
            }
            "--one-rung" => parsed.one_rung = args.next(),
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --smoke, --runs N, --out PATH, \
                     --one-rung FAMILY:TIER)"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// Child mode: measure one rung, print its JSON object, exit.
fn child_main(id: &str, runs: usize) -> ! {
    let Some(spec) = RungSpec::parse(id) else {
        eprintln!("invalid rung id: {id}");
        std::process::exit(2);
    };
    let report = run_rung(spec, runs);
    println!("{}", report.to_json());
    std::process::exit(0);
}

/// Spawns this binary on one rung and returns the child's JSON line;
/// `None` if the child could not run or misbehaved (the caller falls
/// back to in-process measurement).
fn measure_in_child(spec: RungSpec, runs: usize) -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let output = Command::new(exe)
        .args(["--one-rung", &spec.id(), "--runs", &runs.to_string()])
        .stdin(Stdio::null())
        .stderr(Stdio::inherit())
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let stdout = String::from_utf8(output.stdout).ok()?;
    let line = stdout.lines().rev().find(|l| l.trim_start().starts_with('{'))?;
    Some(line.trim().to_owned())
}

fn main() {
    let args = parse_args();
    if let Some(id) = &args.one_rung {
        child_main(id, args.runs);
    }

    let specs = rung_specs(args.smoke);
    let mode = if args.smoke { "smoke" } else { "full" };
    eprintln!("bench_ladder ({mode}): {} rungs, {} runs each", specs.len(), args.runs);

    let hardware = detect_hardware();
    if hardware.threads_exceed_cores {
        eprintln!(
            "warning: the ladder times up to {} threads but this machine grants only \
             {:.2} effective core(s) ({} visible{}) — multi-thread samples measure \
             contention, not parallel scaling; the document flags this via \
             hardware.threads_exceed_cores",
            THREADS.iter().copied().max().unwrap_or(1),
            hardware.effective_cores(),
            hardware.cores,
            hardware
                .cgroup_quota_cores
                .map_or_else(String::new, |q| format!(", cgroup quota {q:.2}")),
        );
    }

    let mut rung_objects = Vec::with_capacity(specs.len());
    let mut all_ok = true;
    // Every rung at the ladder's largest tier must itself report
    // positive parallel speedup for the document-level headline flag.
    let largest_tier = specs.iter().map(|s| s.tier).max().unwrap_or(0);
    let mut speedup_at_largest = true;
    for spec in &specs {
        eprintln!("rung {} ...", spec.id());
        let json = match measure_in_child(*spec, args.runs) {
            Some(json) => json,
            None => {
                eprintln!("  (child re-exec unavailable; measuring in-process)");
                run_rung(*spec, args.runs).to_json()
            }
        };
        if json.contains("\"csr_matches_adjacency\":false")
            || json.contains("\"bin_roundtrip_ok\":false")
        {
            eprintln!("  CORRECTNESS FAILURE in rung {}", spec.id());
            all_ok = false;
        }
        if spec.tier == largest_tier && json.contains("\"parallel_speedup_positive\":false") {
            speedup_at_largest = false;
        }
        rung_objects.push(json);
    }

    let doc = document_json(args.smoke, args.runs, &hardware, speedup_at_largest, &rung_objects);
    if let Err(e) = std::fs::write(&args.out_path, &doc) {
        eprintln!("failed to write {}: {e}", args.out_path);
        std::process::exit(1);
    }
    println!("wrote {} ({} rungs)", args.out_path, rung_objects.len());
    if !all_ok {
        eprintln!("one or more rungs failed their correctness checks");
        std::process::exit(1);
    }
}
