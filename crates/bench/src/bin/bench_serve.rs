//! `bench_serve` — load benchmark for the `linkclustd` query server.
//!
//! ```text
//! bench_serve [--queries N] [--smoke] [--out FILE] [--daemon PATH]
//!             [--vertices N] [--edges M] [--threads N] [--seed S]
//!             [--daemon-stats FILE] [--log FILE|stderr]
//! ```
//!
//! Spawns a `linkclustd` daemon (by default the binary sitting next to
//! this one — build the workspace first), generates a G(n, m) workload,
//! drives a mixed query stream through the socket with one recluster
//! admission at the halfway mark, and writes `BENCH_serve.json`
//! (schema `linkclust-bench-serve/v1`).
//!
//! The full run issues 100 000 queries; `--smoke` drops to 2 000 for
//! the CI gate (the emitted document records which one it was).

use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};

use linkclust_bench::serve::{run_load, SCHEMA};
use linkclust_graph::generate::{gnm, WeightMode};

struct Options {
    queries: u64,
    smoke: bool,
    out: String,
    daemon: Option<String>,
    vertices: usize,
    edges: usize,
    threads: usize,
    seed: u64,
    daemon_stats: Option<String>,
    log: Option<String>,
}

fn parse_args() -> Option<Options> {
    let mut opts = Options {
        queries: 100_000,
        smoke: false,
        out: "BENCH_serve.json".to_owned(),
        daemon: None,
        vertices: 500,
        edges: 2_000,
        threads: 2,
        seed: 0x5EED,
        daemon_stats: None,
        log: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--queries" => opts.queries = args.next()?.parse().ok()?,
            "--smoke" => {
                opts.smoke = true;
                opts.queries = opts.queries.min(2_000);
            }
            "--out" => opts.out = args.next()?,
            "--daemon" => opts.daemon = Some(args.next()?),
            "--vertices" => opts.vertices = args.next()?.parse().ok()?,
            "--edges" => opts.edges = args.next()?.parse().ok()?,
            "--threads" => opts.threads = args.next()?.parse().ok()?,
            "--seed" => opts.seed = args.next()?.parse().ok()?,
            "--daemon-stats" => opts.daemon_stats = Some(args.next()?),
            "--log" => opts.log = Some(args.next()?),
            _ => return None,
        }
    }
    (opts.queries > 0 && opts.vertices > 1 && opts.edges > 0 && opts.threads > 0).then_some(opts)
}

/// The daemon binary: `--daemon` if given, else `linkclustd` next to
/// this executable.
fn daemon_path(opts: &Options) -> Result<std::path::PathBuf, String> {
    if let Some(p) = &opts.daemon {
        return Ok(std::path::PathBuf::from(p));
    }
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let dir = exe.parent().ok_or("executable has no parent directory")?;
    let candidate = dir.join("linkclustd");
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!(
            "{} not found — build it first (cargo build -p linkclust --bin linkclustd) \
             or pass --daemon PATH",
            candidate.display()
        ))
    }
}

/// Spawns the daemon over the edge list on its stdin and parses the
/// `LISTENING <addr>` line from its stdout.
fn spawn_daemon(
    path: &std::path::Path,
    edge_list: &[u8],
    opts: &Options,
) -> Result<(Child, String), String> {
    let mut extra: Vec<String> = Vec::new();
    if let Some(stats) = &opts.daemon_stats {
        extra.push("--stats-json".to_owned());
        extra.push(stats.clone());
    }
    if let Some(log) = &opts.log {
        extra.push("--log".to_owned());
        extra.push(log.clone());
    }
    let mut child = Command::new(path)
        .args(["-", "--listen", "127.0.0.1:0", "--threads", &opts.threads.to_string()])
        .args(&extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", path.display()))?;
    child
        .stdin
        .take()
        .ok_or("daemon stdin not piped")?
        .write_all(edge_list)
        .map_err(|e| format!("cannot feed the graph to the daemon: {e}"))?;
    // stdin drops here, signalling EOF; the daemon clusters and binds.
    let stdout = child.stdout.take().ok_or("daemon stdout not piped")?;
    let mut lines = BufReader::new(stdout).lines();
    match lines.next() {
        Some(Ok(line)) if line.starts_with("LISTENING ") => {
            Ok((child, line["LISTENING ".len()..].to_owned()))
        }
        other => {
            let _ = child.kill();
            Err(format!("daemon did not announce its address: {other:?}"))
        }
    }
}

fn main() -> std::process::ExitCode {
    let Some(opts) = parse_args() else {
        eprintln!(
            "usage: bench_serve [--queries N] [--smoke] [--out FILE] [--daemon PATH] \
             [--vertices N] [--edges M] [--threads N] [--seed S] \
             [--daemon-stats FILE] [--log FILE|stderr]"
        );
        return std::process::ExitCode::FAILURE;
    };
    let daemon = match daemon_path(&opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::FAILURE;
        }
    };

    let g = gnm(opts.vertices, opts.edges, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, opts.seed);
    let (vertices, edges) = (g.vertex_count(), g.edge_count());
    let mut edge_list = Vec::new();
    if let Err(e) = linkclust_graph::io::write_edge_list(&g, &mut edge_list) {
        eprintln!("cannot serialize the workload: {e}");
        return std::process::ExitCode::FAILURE;
    }

    eprintln!(
        "spawning {} over G({vertices}, {edges}), {} queries ({} run)",
        daemon.display(),
        opts.queries,
        if opts.smoke { "smoke" } else { "full" },
    );
    let (mut child, addr) = match spawn_daemon(&daemon, &edge_list, &opts) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::FAILURE;
        }
    };

    let result = run_load(&addr, opts.queries, vertices, edges, opts.seed);
    // Always try to shut the daemon down, even after a failed load.
    if let Ok(mut client) = linkclust_bench::serve::ServeClient::connect(&addr) {
        let _ = client.ask("{\"op\":\"shutdown\"}");
    }
    let _ = child.wait();

    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let doc = report.to_json(opts.smoke, vertices, edges);
    if let Err(e) = std::fs::write(&opts.out, doc + "\n") {
        eprintln!("cannot write {}: {e}", opts.out);
        return std::process::ExitCode::FAILURE;
    }
    eprintln!(
        "{}: {} queries, cache hit rate {:.1}%, swap completed: {} \
         ({} queries served during admission), schema {SCHEMA}",
        opts.out,
        report.queries,
        100.0 * report.cache_hits as f64 / (report.cache_hits + report.cache_misses).max(1) as f64,
        report.swap_completed,
        report.queries_during_admission,
    );
    std::process::ExitCode::SUCCESS
}
