//! Smoke benchmark for the parallel phases: a fixed-seed `gnm` workload
//! in the many-small-chunk regime (high `phi`, small `initial_chunk`)
//! comparing the pooled chunk pipeline against the spawn-per-chunk
//! baseline, plus the parallel init passes. Writes machine-readable
//! results to `BENCH_parallel.json` (override with `--out <path>`), and
//! an init-phase A/B — the owner-sharded pass 2 against the historical
//! hierarchical map merge, on a uniform `gnm` and a power-law
//! `barabasi_albert` workload — to `BENCH_init.json` (override with
//! `--init-out <path>`).
//!
//! Run via `cargo xtask bench-smoke` or directly:
//!
//! ```text
//! cargo run --release -p linkclust-bench --bin bench_smoke -- --runs 5
//! ```

use std::sync::Arc;
use std::time::Duration;

use linkclust_bench::alloc::{measure_alloc_traffic, CountingAlloc};
use linkclust_bench::mapmerge::compute_similarities_mapmerge;
use linkclust_bench::spawnchunk::SpawnPerChunkProcessor;
use linkclust_bench::timing::{format_duration, time_runs};
use linkclust_core::coarse::{coarse_sweep_with, CoarseConfig};
use linkclust_core::init::compute_similarities;
use linkclust_core::telemetry::{Phase, TraceCollector};
use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};
use linkclust_graph::WeightedGraph;
use linkclust_parallel::{compute_similarities_parallel, LinkClustering, ParallelChunkProcessor};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const VERTICES: usize = 600;
const EDGES: usize = 2400;
const SEED: u64 = 42;
const PHI: usize = 200;
const INITIAL_CHUNK: u64 = 8;
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct SweepSample {
    min: Duration,
    mean: Duration,
    alloc_bytes: usize,
    alloc_calls: usize,
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn measure_sweep(runs: usize, mut sweep: impl FnMut()) -> SweepSample {
    // Warm-up run outside the timing loop (first call builds the
    // processor's persistent context), then timed runs, then one
    // instrumented run for the allocation traffic.
    sweep();
    let ((), stats) = time_runs(runs, &mut sweep);
    let ((), alloc_bytes, alloc_calls) = measure_alloc_traffic(sweep);
    SweepSample { min: stats.min, mean: stats.mean, alloc_bytes, alloc_calls }
}

/// A/B of Phase I pass 2 on one workload: the owner-sharded accumulator
/// (`compute_similarities_parallel`) against the hierarchical-map-merge
/// baseline, at each thread count. Returns the JSON rows plus whether the
/// sharded path won on time at every thread count ≥ 4.
fn bench_init_workload(name: &str, g: &WeightedGraph, runs: usize, json: &mut Vec<String>) -> bool {
    let mut sharded_wins = true;
    let mut rows = Vec::new();
    for threads in THREADS {
        let sharded = measure_sweep(runs, || {
            let _ = compute_similarities_parallel(g, threads);
        });
        let mapmerge = measure_sweep(runs, || {
            let _ = compute_similarities_mapmerge(g, threads);
        });
        let speedup = mapmerge.min.as_secs_f64() / sharded.min.as_secs_f64().max(1e-9);
        if threads >= 4
            && (sharded.min > mapmerge.min || sharded.alloc_bytes > mapmerge.alloc_bytes)
        {
            sharded_wins = false;
        }
        println!(
            "init[{name}] t={threads}: sharded {} ({} B allocated) vs mapmerge {} ({} B allocated) — {speedup:.2}x",
            format_duration(sharded.min),
            sharded.alloc_bytes,
            format_duration(mapmerge.min),
            mapmerge.alloc_bytes,
        );
        rows.push(format!(
            "{{\"threads\":{threads},\
              \"sharded\":{{\"min_ms\":{:.3},\"mean_ms\":{:.3},\"alloc_bytes\":{},\"alloc_calls\":{}}},\
              \"mapmerge\":{{\"min_ms\":{:.3},\"mean_ms\":{:.3},\"alloc_bytes\":{},\"alloc_calls\":{}}},\
              \"sharded_speedup\":{speedup:.4}}}",
            millis(sharded.min),
            millis(sharded.mean),
            sharded.alloc_bytes,
            sharded.alloc_calls,
            millis(mapmerge.min),
            millis(mapmerge.mean),
            mapmerge.alloc_bytes,
            mapmerge.alloc_calls,
        ));
    }
    json.push(format!(
        "{{\"workload\":\"{name}\",\"vertices\":{},\"edges\":{},\"rows\":[{}]}}",
        g.vertex_count(),
        g.edge_count(),
        rows.join(","),
    ));
    sharded_wins
}

/// Telemetry and tracing overhead on the unified facade: the same
/// coarse workload with telemetry off, with `stats(true)` (tracing
/// disabled — the path the documented <5% bar guards), and with a
/// [`TraceCollector`] attached. Also extracts the queue-wait and
/// chunk-processing latency quantiles from one stats run. Returns the
/// JSON object for the `"telemetry"` key.
fn bench_telemetry(g: &WeightedGraph, cfg: CoarseConfig, runs: usize) -> String {
    const TELEMETRY_THREADS: usize = 4;
    let run = |lc: LinkClustering| {
        if lc.run_coarse(g, cfg).is_err() {
            eprintln!("telemetry probe: coarse run rejected its configuration");
            std::process::exit(1);
        }
    };
    let base = || LinkClustering::new().threads(TELEMETRY_THREADS);
    let off = measure_sweep(runs, || run(base()));
    let stats = measure_sweep(runs, || run(base().stats(true)));
    let traced =
        measure_sweep(runs, || run(base().stats(true).tracer(Arc::new(TraceCollector::new()))));
    let stats_ratio = millis(stats.min) / millis(off.min).max(1e-9);
    let traced_ratio = millis(traced.min) / millis(off.min).max(1e-9);
    let disabled_within_bar = stats_ratio <= 1.05;
    println!(
        "telemetry t={TELEMETRY_THREADS}: off {} vs stats {} ({stats_ratio:.3}x, within 5% bar: \
         {disabled_within_bar}) vs traced {} ({traced_ratio:.3}x)",
        format_duration(off.min),
        format_duration(stats.min),
        format_duration(traced.min),
    );

    // One stats run for the latency quantiles the run report now carries.
    let report = base()
        .stats(true)
        .run_coarse(g, cfg)
        .ok()
        .and_then(|r| r.report().cloned())
        .unwrap_or_default();
    let quantiles = |p: Phase| {
        format!(
            "{{\"p50_nanos\":{},\"p90_nanos\":{},\"p99_nanos\":{}}}",
            report.phase_quantile_nanos(p, 0.5),
            report.phase_quantile_nanos(p, 0.9),
            report.phase_quantile_nanos(p, 0.99),
        )
    };
    println!(
        "telemetry quantiles: pool_queue_wait p50 {} ns / p99 {} ns, chunk_process p50 {} ns / p99 {} ns",
        report.phase_quantile_nanos(Phase::PoolQueueWait, 0.5),
        report.phase_quantile_nanos(Phase::PoolQueueWait, 0.99),
        report.phase_quantile_nanos(Phase::ChunkProcess, 0.5),
        report.phase_quantile_nanos(Phase::ChunkProcess, 0.99),
    );
    format!(
        "{{\"threads\":{TELEMETRY_THREADS},\
          \"off_min_ms\":{:.3},\"stats_min_ms\":{:.3},\"traced_min_ms\":{:.3},\
          \"stats_overhead_ratio\":{stats_ratio:.4},\"trace_overhead_ratio\":{traced_ratio:.4},\
          \"tracing_disabled_within_bar\":{disabled_within_bar},\
          \"pool_queue_wait\":{},\"chunk_process\":{}}}",
        millis(off.min),
        millis(stats.min),
        millis(traced.min),
        quantiles(Phase::PoolQueueWait),
        quantiles(Phase::ChunkProcess),
    )
}

fn main() {
    let mut runs = 5usize;
    let mut out_path = String::from("BENCH_parallel.json");
    let mut init_out_path = String::from("BENCH_init.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                runs = args.next().and_then(|v| v.parse().ok()).unwrap_or(runs).max(1);
            }
            "--out" => {
                if let Some(v) = args.next() {
                    out_path = v;
                }
            }
            "--init-out" => {
                if let Some(v) = args.next() {
                    init_out_path = v;
                }
            }
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --runs N, --out PATH, --init-out PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    let g = gnm(VERTICES, EDGES, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, SEED);
    let sims = Arc::new(compute_similarities(&g).into_sorted());
    let cfg = CoarseConfig { phi: PHI, initial_chunk: INITIAL_CHUNK, ..Default::default() };
    println!(
        "workload: gnm({VERTICES}, {EDGES}, seed {SEED}) — {} entries, phi {PHI}, chunk {INITIAL_CHUNK}, {runs} runs",
        sims.len()
    );

    // Init: serial baseline, then the pooled parallel passes.
    let ((), serial_init) = time_runs(runs, || {
        let _ = compute_similarities(&g);
    });
    let mut init_json = Vec::new();
    println!("init serial: {}", format_duration(serial_init.min));
    for threads in THREADS {
        let ((), stats) = time_runs(runs, || {
            let _ = compute_similarities_parallel(&g, threads);
        });
        println!("init pooled t={threads}: {}", format_duration(stats.min));
        init_json.push(format!(
            "{{\"threads\":{threads},\"min_ms\":{:.3},\"mean_ms\":{:.3}}}",
            millis(stats.min),
            millis(stats.mean)
        ));
    }

    // Chunk throughput: pooled pipeline vs spawn-per-chunk baseline on
    // the same many-small-chunk coarse sweep. min_entries_per_thread(1)
    // forces fan-out even on tiny chunks — the regime the pool targets.
    let mut sweep_json = Vec::new();
    let mut pooled_beats_spawn_at_4 = true;
    for threads in THREADS {
        let Ok(pooled_proc) = ParallelChunkProcessor::new(threads) else {
            eprintln!("thread count {threads} rejected by ParallelChunkProcessor");
            std::process::exit(1);
        };
        let mut pooled_proc =
            pooled_proc.min_entries_per_thread(1).shared_entries(Arc::clone(&sims));
        let pooled = measure_sweep(runs, || {
            let _ = coarse_sweep_with(&g, &sims, cfg, &mut pooled_proc);
        });
        let spawn = measure_sweep(runs, || {
            let mut proc = SpawnPerChunkProcessor::new(threads).min_entries_per_thread(1);
            let _ = coarse_sweep_with(&g, &sims, cfg, &mut proc);
        });
        let speedup = spawn.min.as_secs_f64() / pooled.min.as_secs_f64().max(1e-9);
        if threads >= 4 && pooled.min > spawn.min {
            pooled_beats_spawn_at_4 = false;
        }
        println!(
            "sweep t={threads}: pooled {} ({} B allocated) vs spawn {} ({} B allocated) — {speedup:.2}x",
            format_duration(pooled.min),
            pooled.alloc_bytes,
            format_duration(spawn.min),
            spawn.alloc_bytes,
        );
        sweep_json.push(format!(
            "{{\"threads\":{threads},\
              \"pooled\":{{\"min_ms\":{:.3},\"mean_ms\":{:.3},\"alloc_bytes\":{},\"alloc_calls\":{}}},\
              \"spawn_per_chunk\":{{\"min_ms\":{:.3},\"mean_ms\":{:.3},\"alloc_bytes\":{},\"alloc_calls\":{}}},\
              \"pooled_speedup\":{speedup:.4}}}",
            millis(pooled.min),
            millis(pooled.mean),
            pooled.alloc_bytes,
            pooled.alloc_calls,
            millis(spawn.min),
            millis(spawn.mean),
            spawn.alloc_bytes,
            spawn.alloc_calls,
        ));
    }

    // Telemetry overhead + latency quantiles on the unified facade.
    let telemetry_json = bench_telemetry(&g, cfg, runs);

    let json = format!(
        "{{\"workload\":{{\"kind\":\"gnm\",\"vertices\":{VERTICES},\"edges\":{EDGES},\"seed\":{SEED},\
          \"entries\":{},\"phi\":{PHI},\"initial_chunk\":{INITIAL_CHUNK},\"runs\":{runs}}},\
          \"init\":{{\"serial_min_ms\":{:.3},\"parallel\":[{}]}},\
          \"chunk_throughput\":[{}],\
          \"telemetry\":{telemetry_json},\
          \"pooled_beats_spawn_at_4_threads\":{pooled_beats_spawn_at_4}}}",
        sims.len(),
        millis(serial_init.min),
        init_json.join(","),
        sweep_json.join(","),
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // Init A/B: owner-sharded pass 2 vs the hierarchical-map-merge
    // baseline, on the uniform gnm workload plus a power-law graph whose
    // hub vertices stress the shard routing.
    let power = barabasi_albert(VERTICES, 4, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, SEED);
    let mut init_ab_json = Vec::new();
    let gnm_ok = bench_init_workload("gnm", &g, runs, &mut init_ab_json);
    let power_ok = bench_init_workload("barabasi_albert", &power, runs, &mut init_ab_json);
    let sharded_beats_mapmerge = gnm_ok && power_ok;
    let init_doc = format!(
        "{{\"runs\":{runs},\"threads\":[1,2,4,8],\
          \"workloads\":[{}],\
          \"sharded_beats_mapmerge_at_4_threads\":{sharded_beats_mapmerge}}}",
        init_ab_json.join(","),
    );
    if let Err(e) = std::fs::write(&init_out_path, init_doc) {
        eprintln!("failed to write {init_out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {init_out_path}");
}
