//! `compare` — diff two `repro` result directories.
//!
//! ```text
//! compare <left-dir> <right-dir> [--tolerance 0.05]
//! ```
//!
//! Exits non-zero if any shared CSV differs beyond tolerance (files
//! present on only one side are reported but do not fail the run, so a
//! partial rerun can be compared against a full baseline).

use std::path::PathBuf;
use std::process::ExitCode;

use linkclust_bench::compare::{compare_dirs, FileComparison};

fn usage() -> ExitCode {
    eprintln!("usage: compare <left-dir> <right-dir> [--tolerance REL]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut tolerance = 0.05f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                let Some(t) = args.next().and_then(|t| t.parse().ok()) else {
                    return usage();
                };
                tolerance = t;
            }
            "--help" | "-h" => return usage(),
            p => dirs.push(PathBuf::from(p)),
        }
    }
    if dirs.len() != 2 {
        return usage();
    }

    let results = match compare_dirs(&dirs[0], &dirs[1], tolerance) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("comparison failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for (name, c) in &results {
        match c {
            FileComparison::Match { cells } => println!("  ok {name} ({cells} cells)"),
            FileComparison::OnlyLeft => println!("only-left {name}"),
            FileComparison::OnlyRight => println!("only-right {name}"),
            FileComparison::Differs { mismatches } => {
                failed = true;
                println!("DIFF {name}:");
                for m in mismatches {
                    println!("      {m}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("all shared files within tolerance {tolerance}");
        ExitCode::SUCCESS
    }
}
