//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale small|medium|full] [--out DIR] <target>...
//! targets: all fig1 fig2-1 fig2-2 fig4-1 fig4-2 fig4-3 fig5-1 fig5-2
//!          fig6-1 fig6-2 cor1
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use linkclust_bench::alloc::CountingAlloc;
use linkclust_bench::figures::{ablation, cor1, fig1, fig2, fig4, fig5, fig6, FigureContext};
use linkclust_bench::workloads::Scale;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const ALL_TARGETS: [&str; 12] = [
    "fig1", "fig2-1", "fig2-2", "fig4-1", "fig4-2", "fig4-3", "fig5-1", "fig5-2", "fig6-1",
    "fig6-2", "cor1", "ablation",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale small|medium|full] [--out DIR] <target>...\n\
         targets: all {}",
        ALL_TARGETS.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::Medium;
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|v| Scale::parse(&v)) else {
                    return usage();
                };
                scale = v;
            }
            "--out" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                out_dir = PathBuf::from(v);
            }
            "--help" | "-h" => return usage(),
            t => targets.push(t.to_owned()),
        }
    }
    if targets.is_empty() {
        return usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_TARGETS.iter().map(|s| (*s).to_owned()).collect();
    }

    let ctx = FigureContext::new(scale, out_dir.clone());
    println!(
        "reproducing {} target(s) at {:?} scale on {} core(s)\n",
        targets.len(),
        scale,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    for target in &targets {
        println!("### {target} ###");
        let started = std::time::Instant::now();
        let result = match target.as_str() {
            "fig1" => fig1::run(&ctx),
            "fig2-1" => fig2::run_fig2_1(&ctx),
            "fig2-2" => fig2::run_fig2_2(&ctx),
            "fig4-1" => fig4::run_fig4_1(&ctx),
            "fig4-2" => fig4::run_fig4_2(&ctx),
            "fig4-3" => fig4::run_fig4_3(&ctx),
            "fig5-1" => fig5::run_fig5_1(&ctx),
            "fig5-2" => fig5::run_fig5_2(&ctx),
            "fig6-1" => fig6::run_fig6_1(&ctx),
            "fig6-2" => fig6::run_fig6_2(&ctx),
            "cor1" => cor1::run(&ctx),
            "ablation" => ablation::run(&ctx),
            other => {
                eprintln!("unknown target: {other}");
                return usage();
            }
        };
        if let Err(e) = result {
            eprintln!("{target} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("[{target} done in {:.1?}]\n", started.elapsed());
    }
    match linkclust_bench::plots::write_plot_scripts(&out_dir) {
        Ok(()) => println!(
            "wrote {} gnuplot scripts to {} (render with: gnuplot {}/*.gp)",
            linkclust_bench::plots::plot_count(),
            out_dir.display(),
            out_dir.display()
        ),
        Err(e) => eprintln!("could not write plot scripts: {e}"),
    }
    ExitCode::SUCCESS
}
