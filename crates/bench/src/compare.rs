//! Comparing two result directories (e.g. two runs of `repro`).
//!
//! `repro` emits deterministic workload statistics and noisy timing
//! measurements side by side. This module diffs two result trees CSV by
//! CSV: numeric cells are compared with a relative tolerance, text cells
//! exactly — so a rerun on the same machine can be checked for
//! regressions, and runs at different scales can be compared
//! structurally. The `compare` binary prints a per-file verdict.

use std::collections::BTreeSet;
use std::path::Path;

/// The outcome of comparing one CSV file.
#[derive(Clone, PartialEq, Debug)]
pub enum FileComparison {
    /// Present in both, all cells within tolerance.
    Match {
        /// Number of data cells compared.
        cells: usize,
    },
    /// Present in both but differing.
    Differs {
        /// Human-readable mismatch descriptions (capped).
        mismatches: Vec<String>,
    },
    /// Present only in the first directory.
    OnlyLeft,
    /// Present only in the second directory.
    OnlyRight,
}

/// Compares two CSV strings cell-wise. Numeric cells (parseable as
/// `f64`) match when `|a − b| ≤ tolerance · max(|a|, |b|, 1)`; other
/// cells must be equal. Shape differences (row/column counts) are
/// reported as mismatches.
#[must_use]
pub fn compare_csv(left: &str, right: &str, tolerance: f64) -> FileComparison {
    let l_rows: Vec<Vec<&str>> = left.lines().map(|l| l.split(',').collect()).collect();
    let r_rows: Vec<Vec<&str>> = right.lines().map(|l| l.split(',').collect()).collect();
    let mut mismatches = Vec::new();
    if l_rows.len() != r_rows.len() {
        mismatches.push(format!("row count {} vs {}", l_rows.len(), r_rows.len()));
    }
    let mut cells = 0usize;
    for (i, (lr, rr)) in l_rows.iter().zip(&r_rows).enumerate() {
        if lr.len() != rr.len() {
            mismatches.push(format!("row {i}: column count {} vs {}", lr.len(), rr.len()));
            continue;
        }
        for (j, (lc, rc)) in lr.iter().zip(rr).enumerate() {
            cells += 1;
            if cells_match(lc, rc, tolerance) {
                continue;
            }
            if mismatches.len() < 16 {
                mismatches.push(format!("row {i} col {j}: {lc:?} vs {rc:?}"));
            }
        }
    }
    if mismatches.is_empty() {
        FileComparison::Match { cells }
    } else {
        FileComparison::Differs { mismatches }
    }
}

fn cells_match(a: &str, b: &str, tolerance: f64) -> bool {
    if a == b {
        return true;
    }
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= tolerance * scale
        }
        _ => false,
    }
}

/// Compares every `*.csv` in two directories.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn compare_dirs(
    left: &Path,
    right: &Path,
    tolerance: f64,
) -> std::io::Result<Vec<(String, FileComparison)>> {
    let list = |dir: &Path| -> std::io::Result<BTreeSet<String>> {
        let mut names = BTreeSet::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".csv") {
                names.insert(name);
            }
        }
        Ok(names)
    };
    let l_names = list(left)?;
    let r_names = list(right)?;
    let mut out = Vec::new();
    for name in l_names.union(&r_names) {
        let comparison = match (l_names.contains(name), r_names.contains(name)) {
            (true, false) => FileComparison::OnlyLeft,
            (false, true) => FileComparison::OnlyRight,
            (true, true) => {
                let l = std::fs::read_to_string(left.join(name))?;
                let r = std::fs::read_to_string(right.join(name))?;
                compare_csv(&l, &r, tolerance)
            }
            (false, false) => unreachable!("name came from the union"),
        };
        out.push((name.clone(), comparison));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_csvs_match() {
        let csv = "a,b\n1,2\n3,x\n";
        assert_eq!(compare_csv(csv, csv, 0.0), FileComparison::Match { cells: 6 });
    }

    #[test]
    fn numeric_tolerance_applies() {
        let a = "t\n1.00\n100\n";
        let b = "t\n1.04\n104\n";
        assert!(matches!(compare_csv(a, b, 0.05), FileComparison::Match { .. }));
        assert!(matches!(compare_csv(a, b, 0.01), FileComparison::Differs { .. }));
    }

    #[test]
    fn text_cells_must_be_exact() {
        let a = "h\nfoo\n";
        let b = "h\nbar\n";
        match compare_csv(a, b, 1.0) {
            FileComparison::Differs { mismatches } => {
                assert!(mismatches[0].contains("foo"));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn shape_differences_reported() {
        let a = "h\n1\n2\n";
        let b = "h\n1\n";
        assert!(matches!(compare_csv(a, b, 0.0), FileComparison::Differs { .. }));
        let c = "h,x\n1,2\n";
        assert!(matches!(compare_csv(a, c, 0.0), FileComparison::Differs { .. }));
    }

    #[test]
    fn directory_comparison() {
        let base = std::env::temp_dir().join("linkclust_compare_test");
        let (l, r) = (base.join("l"), base.join("r"));
        std::fs::create_dir_all(&l).unwrap();
        std::fs::create_dir_all(&r).unwrap();
        std::fs::write(l.join("same.csv"), "a\n1\n").unwrap();
        std::fs::write(r.join("same.csv"), "a\n1\n").unwrap();
        std::fs::write(l.join("only_left.csv"), "a\n1\n").unwrap();
        std::fs::write(r.join("only_right.csv"), "a\n1\n").unwrap();
        std::fs::write(l.join("skipme.txt"), "not a csv").unwrap();
        let results = compare_dirs(&l, &r, 0.0).unwrap();
        let get = |n: &str| {
            results
                .iter()
                .find(|(name, _)| name == n)
                .map_or_else(|| panic!("{n} missing"), |(_, c)| c.clone())
        };
        assert!(matches!(get("same.csv"), FileComparison::Match { .. }));
        assert_eq!(get("only_left.csv"), FileComparison::OnlyLeft);
        assert_eq!(get("only_right.csv"), FileComparison::OnlyRight);
        assert_eq!(results.len(), 3);
        let _ = std::fs::remove_dir_all(base);
    }
}
