//! Ablations over the design choices DESIGN.md calls out: the soundness
//! bound γ, the termination floor φ, and the edge enumeration order.
//!
//! Not a paper figure — this quantifies the knobs the paper fixes at
//! γ = 2, φ = 100 (§VII-B) and "a random order" (§IV-B).

use std::io;

use linkclust_core::coarse::{coarse_sweep, CoarseConfig};
use linkclust_core::dendrogram::partition_density;
use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, EdgeOrder, SweepConfig};

use crate::table::{fmt_f64, Table};
use crate::timing::time_runs;

use super::FigureContext;

/// Runs all three ablations on the α = 0.005 workload graph.
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run(ctx: &FigureContext) -> io::Result<()> {
    let g = ctx.workload().graph_for_alpha(0.005);
    let sims = compute_similarities(&g).into_sorted();
    let k2 = sims.incident_pair_count();
    let runs = ctx.scale().timing_runs();
    let base = CoarseConfig::auto_tuned(&g, &sims);

    // --- gamma: soundness vs rollback work ---
    let mut t = Table::new(
        "Ablation: soundness bound gamma (phi fixed)",
        &["gamma", "time_s", "levels", "rollbacks", "max_unforced_rate", "processed_frac"],
    );
    for &gamma in &[1.25, 1.5, 2.0, 3.0, 4.0] {
        let cfg = CoarseConfig { gamma, ..base };
        let (r, stats) = time_runs(runs, || coarse_sweep(&g, &sims, cfg));
        t.row(vec![
            gamma.to_string(),
            fmt_f64(stats.mean_secs(), 4),
            r.levels().len().to_string(),
            r.epoch_breakdown().rollback.to_string(),
            fmt_f64(r.max_unforced_merge_rate(), 3),
            fmt_f64(r.processed_fraction(), 3),
        ]);
    }
    println!("(smaller gamma => finer dendrogram, more levels and rollbacks)");
    t.emit(&ctx.csv_path("ablation_gamma.csv"))?;

    // --- phi: how much of the tail is skipped, and what it costs in
    //     community quality ---
    let mut t = Table::new(
        "Ablation: termination floor phi (gamma = 2)",
        &["phi", "time_s", "processed_frac", "final_clusters", "final_partition_density"],
    );
    for &phi in &[10usize, 50, 100, 500, 2000] {
        let cfg = CoarseConfig { phi: phi.min(g.edge_count()), ..base };
        let (r, stats) = time_runs(runs, || coarse_sweep(&g, &sims, cfg));
        let density = partition_density(&g, &r.output().edge_assignments());
        t.row(vec![
            phi.to_string(),
            fmt_f64(stats.mean_secs(), 4),
            fmt_f64(r.processed_fraction(), 3),
            r.dendrogram().final_cluster_count().to_string(),
            fmt_f64(density, 4),
        ]);
    }
    println!("(larger phi stops earlier: fewer pairs processed, more clusters left)");
    t.emit(&ctx.csv_path("ablation_phi.csv"))?;

    // --- edge order: the paper enumerates edges randomly; the partition
    //     is invariant, and so (within noise) is the cost ---
    let mut t = Table::new(
        "Ablation: edge enumeration order (fine-grained sweep)",
        &["order", "time_s", "merges"],
    );
    for (name, order) in [
        ("insertion", EdgeOrder::Insertion),
        ("shuffled_1", EdgeOrder::Shuffled { seed: 1 }),
        ("shuffled_2", EdgeOrder::Shuffled { seed: 2 }),
    ] {
        let cfg = SweepConfig { edge_order: order, ..Default::default() };
        let (out, stats) = time_runs(runs, || sweep(&g, &sims, cfg));
        t.row(vec![
            name.to_owned(),
            fmt_f64(stats.mean_secs(), 4),
            out.dendrogram().merge_count().to_string(),
        ]);
    }
    println!("(K2 = {k2}; the merge count is order-invariant)");
    t.emit(&ctx.csv_path("ablation_edge_order.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Scale, Workload};

    #[test]
    fn smaller_gamma_gives_finer_dendrograms() {
        let w = Workload::generate(Scale::Small);
        let g = w.graph_for_alpha(0.005);
        let sims = compute_similarities(&g).into_sorted();
        let base = CoarseConfig::auto_tuned(&g, &sims);
        let fine = coarse_sweep(&g, &sims, CoarseConfig { gamma: 1.25, ..base });
        let coarse = coarse_sweep(&g, &sims, CoarseConfig { gamma: 4.0, ..base });
        assert!(
            fine.levels().len() > coarse.levels().len(),
            "gamma 1.25 gave {} levels vs gamma 4.0 {}",
            fine.levels().len(),
            coarse.levels().len()
        );
    }

    #[test]
    fn larger_phi_processes_fewer_pairs() {
        let w = Workload::generate(Scale::Small);
        let g = w.graph_for_alpha(0.005);
        let sims = compute_similarities(&g).into_sorted();
        let base = CoarseConfig::auto_tuned(&g, &sims);
        let strict = coarse_sweep(&g, &sims, CoarseConfig { phi: 10, ..base });
        let loose = coarse_sweep(&g, &sims, CoarseConfig { phi: 200, ..base });
        assert!(loose.processed_fraction() <= strict.processed_fraction() + 1e-12);
    }
}
