//! Corollary 1 / Appendix — asymptotic scaling on structured graphs.
//!
//! The appendix proves that on graphs with |E| = ω(|V| log² |V|) the
//! sweep costs O(|E|²·√(|V|/|E|)), beating SLINK's O(|E|²) by at least
//! √(|E|/|V|): on k-regular graphs the gap is √|V|, and on complete
//! graphs the sweep is O(|V|³·⁵) vs O(|V|⁴). This runner measures both
//! algorithms across a size ladder and fits log-log slopes so the
//! *growth exponents* — not wall-clock constants — can be compared
//! against the theory.

use std::io;

use linkclust_core::baseline::NbmClustering;
use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, SweepConfig};
use linkclust_graph::generate::{complete, k_regular, WeightMode};

use crate::table::{fmt_f64, Table};
use crate::timing::time_runs;
use crate::workloads::Scale;

use super::FigureContext;

/// Least-squares slope of `ln y` against `ln x`.
#[must_use]
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln().max(-30.0));
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Runs the Corollary-1 scaling study.
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run(ctx: &FigureContext) -> io::Result<()> {
    let runs = ctx.scale().timing_runs();
    let w = WeightMode::Uniform { lo: 0.5, hi: 1.5 };

    // Complete graphs: sweep should grow ~n^3.5, standard ~n^4.
    let sizes: &[usize] = match ctx.scale() {
        Scale::Small => &[16, 24, 32, 40],
        Scale::Medium => &[24, 36, 48, 64],
        Scale::Full => &[32, 48, 64, 88],
    };
    let mut t = Table::new(
        "Corollary 1: complete graphs K_n (sweep ~ n^3.5, standard ~ n^4)",
        &["n", "edges", "sweep_s", "standard_s"],
    );
    let mut sweep_pts = Vec::new();
    let mut std_pts = Vec::new();
    for &n in sizes {
        let g = complete(n, w, 1);
        let (_, s_sweep) = time_runs(runs, || {
            let sims = compute_similarities(&g).into_sorted();
            sweep(&g, &sims, SweepConfig::default())
        });
        let (_, s_std) = time_runs(runs, || {
            let sims = compute_similarities(&g);
            NbmClustering::new().run(&g, &sims)
        });
        sweep_pts.push((n as f64, s_sweep.mean_secs()));
        std_pts.push((n as f64, s_std.mean_secs()));
        t.row(vec![
            n.to_string(),
            g.edge_count().to_string(),
            fmt_f64(s_sweep.mean_secs(), 5),
            fmt_f64(s_std.mean_secs(), 5),
        ]);
    }
    println!(
        "complete-graph log-log slopes: sweep {:.2} (theory 3.5), standard {:.2} (theory 4.0)",
        log_log_slope(&sweep_pts),
        log_log_slope(&std_pts)
    );
    t.emit(&ctx.csv_path("cor1_complete.csv"))?;

    // k-regular graphs at fixed k: sweep linear-ish in |E|, standard
    // quadratic.
    let ns: &[usize] = match ctx.scale() {
        Scale::Small => &[200, 400, 800],
        Scale::Medium => &[400, 800, 1600],
        Scale::Full => &[800, 1600, 3200],
    };
    let k = 16;
    let mut t = Table::new(
        "Corollary 1: k-regular graphs (k = 16)",
        &["n", "edges", "k2", "sweep_s", "standard_s"],
    );
    let mut sweep_pts = Vec::new();
    let mut std_pts = Vec::new();
    for &n in ns {
        let g = k_regular(n, k, w, 2);
        let sims0 = compute_similarities(&g);
        let k2 = sims0.incident_pair_count();
        let (_, s_sweep) = time_runs(runs, || {
            let sims = compute_similarities(&g).into_sorted();
            sweep(&g, &sims, SweepConfig::default())
        });
        let (_, s_std) = time_runs(runs.min(2), || NbmClustering::new().run(&g, &sims0));
        sweep_pts.push((g.edge_count() as f64, s_sweep.mean_secs()));
        std_pts.push((g.edge_count() as f64, s_std.mean_secs()));
        t.row(vec![
            n.to_string(),
            g.edge_count().to_string(),
            k2.to_string(),
            fmt_f64(s_sweep.mean_secs(), 5),
            fmt_f64(s_std.mean_secs(), 5),
        ]);
    }
    println!(
        "k-regular log-log slopes vs |E|: sweep {:.2} (theory ~1), standard {:.2} (theory 2.0)",
        log_log_slope(&sweep_pts),
        log_log_slope(&std_pts)
    );
    t.emit(&ctx.csv_path("cor1_kregular.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_power_law_is_exact() {
        let pts: Vec<(f64, f64)> = (2..10).map(|i| (i as f64, (i as f64).powf(2.5))).collect();
        assert!((log_log_slope(&pts) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn standard_grows_faster_than_sweep_on_kregular() {
        // The asymptotic separation: quadrupling |E| should widen the
        // standard/sweep time ratio on sparse regular graphs.
        let w = WeightMode::Unit;
        let ratio = |n: usize| {
            let g = k_regular(n, 8, w, 3);
            let sims = compute_similarities(&g);
            let t_std = {
                let s = std::time::Instant::now();
                let _ = NbmClustering::new().run(&g, &sims);
                s.elapsed().as_secs_f64()
            };
            let t_sw = {
                let s = std::time::Instant::now();
                let sorted = sims.into_sorted();
                let _ = sweep(&g, &sorted, SweepConfig::default());
                s.elapsed().as_secs_f64()
            };
            t_std / t_sw.max(1e-9)
        };
        let small = ratio(200);
        let large = ratio(800);
        assert!(
            large > small,
            "standard/sweep ratio should grow with size: {small:.1} -> {large:.1}"
        );
    }
}
