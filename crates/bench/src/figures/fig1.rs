//! Fig. 1 — the paper's example graph and its data structure.
//!
//! The example graph of Fig. 1 satisfies K₁ = 7 < K₂ = 16 < K₃ = 28 with
//! |E| = 8; the complete bipartite graph K₂,₄ realizes exactly these
//! counts. This runner prints the graph, the sorted list `L` (Fig. 1(2))
//! and the resulting dendrogram.

use std::io;

use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, SweepConfig};
use linkclust_graph::stats::GraphStats;
use linkclust_graph::{GraphBuilder, WeightedGraph};

use crate::table::{fmt_f64, Table};

use super::FigureContext;

/// Builds the K₂,₄ example graph (hubs 0, 1; leaves 2–5; unit weights).
/// # Panics
///
/// Never panics in practice: the edge list is a fixed, valid literal.
#[must_use]
pub fn example_graph() -> WeightedGraph {
    GraphBuilder::from_edges(
        6,
        &[
            (0, 2, 1.0),
            (0, 3, 1.0),
            (0, 4, 1.0),
            (0, 5, 1.0),
            (1, 2, 1.0),
            (1, 3, 1.0),
            (1, 4, 1.0),
            (1, 5, 1.0),
        ],
    )
    .expect("example graph is valid")
    .build()
}

/// Runs the Fig. 1 demonstration.
///
/// # Errors
///
/// Propagates CSV-write failures.
///
/// # Panics
///
/// Panics if the computed pair counts diverge from the paper's
/// `K1 = 7 < K2 = 16 < K3 = 28` — the figure is only worth emitting if
/// the reproduction matches.
pub fn run(ctx: &FigureContext) -> io::Result<()> {
    let g = example_graph();
    let s = GraphStats::compute(&g);
    println!("Fig. 1 example graph: K_{{2,4}} with |V| = {}, |E| = {}", s.vertices, s.edges);
    println!(
        "K1 = {} < K2 = {} < K3 = {}   (paper: 7 < 16 < 28)",
        s.common_neighbor_pairs, s.incident_edge_pairs, s.distinct_edge_pairs
    );
    assert_eq!(
        (s.common_neighbor_pairs, s.incident_edge_pairs, s.distinct_edge_pairs),
        (7, 16, 28),
        "example graph must reproduce the paper's counts"
    );

    let sims = compute_similarities(&g).into_sorted();
    let mut t = Table::new("Fig. 1(2): sorted list L", &["pair", "similarity", "common neighbors"]);
    for e in sims.entries() {
        t.row(vec![
            e.pair.to_string(),
            fmt_f64(e.score, 4),
            e.common_neighbors.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" "),
        ]);
    }
    t.emit(&ctx.csv_path("fig1_list.csv"))?;

    let out = sweep(&g, &sims, SweepConfig::default());
    let mut t = Table::new("Fig. 1: dendrogram merges", &["level", "left", "right", "into"]);
    for m in out.dendrogram().merges() {
        t.row(vec![
            m.level.to_string(),
            m.left.to_string(),
            m.right.to_string(),
            m.into.to_string(),
        ]);
    }
    t.emit(&ctx.csv_path("fig1_dendrogram.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_graph_has_paper_counts() {
        let s = GraphStats::compute(&example_graph());
        assert_eq!(s.common_neighbor_pairs, 7);
        assert_eq!(s.incident_edge_pairs, 16);
        assert_eq!(s.distinct_edge_pairs, 28);
        assert_eq!(s.edges, 8);
    }

    #[test]
    fn example_graph_l_has_k1_entries() {
        let sims = compute_similarities(&example_graph());
        assert_eq!(sims.len(), 7);
        assert_eq!(sims.incident_pair_count(), 16);
    }
}
