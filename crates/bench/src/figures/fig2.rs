//! Fig. 2 — chunked-sweep dynamics and the sigmoid model.

use std::io;

use linkclust_core::init::compute_similarities;
use linkclust_core::model::{normalize_curve, SigmoidModel};
use linkclust_core::sweep::{fixed_chunk_sweep, EdgeOrder};

use crate::ascii::{downsample, sparkline};
use crate::table::{fmt_f64, Table};

use super::FigureContext;

/// Fig. 2(1): the number of changes on array `C` per (normalized) level,
/// sweeping the α = 0.001 workload in fixed chunks (the paper uses
/// chunks of 1,000 incident pairs on its 1.6 M-edge graph; the chunk is
/// scaled so the level count stays comparable).
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig2_1(ctx: &FigureContext) -> io::Result<()> {
    let g = ctx.workload().graph_for_alpha(0.001);
    let sims = compute_similarities(&g).into_sorted();
    let k2 = sims.incident_pair_count();
    // The paper's setup yields ~1,600 levels; keep the same order.
    let chunk = (k2 / 1500).max(20);
    let trace = fixed_chunk_sweep(&g, &sims, chunk, EdgeOrder::Insertion);
    let n_levels = trace.levels.len().max(1) as f64;

    let mut t = Table::new(
        &format!("Fig. 2(1): changes on array C (chunk = {chunk}, K2 = {k2})"),
        &["level", "normalized_level", "changes", "clusters"],
    );
    for l in &trace.levels {
        t.row(vec![
            l.level.to_string(),
            fmt_f64(l.level as f64 / n_levels, 4),
            l.changes.to_string(),
            l.clusters.to_string(),
        ]);
    }
    t.emit(&ctx.csv_path("fig2_1_changes.csv"))?;

    let curve: Vec<f64> = trace.levels.iter().map(|l| l.changes as f64).collect();
    println!("changes per level: {}", sparkline(&downsample(&curve, 60)));

    // The paper's observation: most changes occur in the lower half of
    // the levels.
    let half = trace.levels.len() / 2;
    let lower: u64 = trace.levels[..half].iter().map(|l| l.changes).sum();
    let total: u64 = trace.levels.iter().map(|l| l.changes).sum();
    if total > 0 {
        println!(
            "lower-half levels carry {:.1}% of all changes (paper: most changes in lower half)\n",
            100.0 * lower as f64 / total as f64
        );
    }
    Ok(())
}

/// Fig. 2(2): normalized cluster count vs normalized log level id for
/// α ∈ {0.0005, 0.001, 0.005}, with a fitted sigmoid per curve and the
/// paper's reference parameters.
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig2_2(ctx: &FigureContext) -> io::Result<()> {
    let mut curves = Table::new(
        "Fig. 2(2): normalized cluster decay",
        &["alpha", "norm_log_level", "norm_clusters", "sigmoid_fit"],
    );
    let mut fits = Table::new(
        "Fig. 2(2): fitted sigmoid parameters (paper: a=-1, b=0.48, c=1, k=10)",
        &["alpha", "a", "b", "c", "k", "r_squared"],
    );
    for &alpha in &[0.0005, 0.001, 0.005] {
        let g = ctx.workload().graph_for_alpha(alpha);
        let sims = compute_similarities(&g).into_sorted();
        let k2 = sims.incident_pair_count();
        let chunk = (k2 / 120).max(5);
        let trace = fixed_chunk_sweep(&g, &sims, chunk, EdgeOrder::Insertion);
        let points: Vec<(u32, usize)> =
            trace.levels.iter().map(|l| (l.level, l.clusters)).collect();
        if points.len() < 4 {
            println!("alpha {alpha}: too few levels ({}) to fit, skipping", points.len());
            continue;
        }
        let norm = normalize_curve(&points);
        let model = SigmoidModel::fit(&norm);
        let ys: Vec<f64> = norm.iter().map(|&(_, y)| y).collect();
        println!("alpha {alpha}: cluster decay {}", sparkline(&downsample(&ys, 60)));
        for &(u, y) in &norm {
            curves.row(vec![
                alpha.to_string(),
                fmt_f64(u, 4),
                fmt_f64(y, 4),
                fmt_f64(model.eval(u), 4),
            ]);
        }
        fits.row(vec![
            alpha.to_string(),
            fmt_f64(model.a, 3),
            fmt_f64(model.b, 3),
            fmt_f64(model.c, 3),
            fmt_f64(model.k, 2),
            fmt_f64(model.r_squared(&norm), 4),
        ]);
    }
    curves.emit(&ctx.csv_path("fig2_2_curves.csv"))?;
    fits.emit(&ctx.csv_path("fig2_2_fits.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Scale, Workload};

    #[test]
    fn cluster_decay_is_sigmoid_shaped() {
        // The modeling claim of §V: the normalized decay fits a sigmoid
        // well (R² high) on a synthetic workload too.
        let w = Workload::generate(Scale::Small);
        let g = w.graph_for_alpha(0.001);
        let sims = compute_similarities(&g).into_sorted();
        let chunk = (sims.incident_pair_count() / 60).max(2);
        let trace = fixed_chunk_sweep(&g, &sims, chunk, EdgeOrder::Insertion);
        let points: Vec<(u32, usize)> =
            trace.levels.iter().map(|l| (l.level, l.clusters)).collect();
        assert!(points.len() >= 10, "expected a multi-level trace, got {}", points.len());
        let norm = normalize_curve(&points);
        let model = SigmoidModel::fit(&norm);
        let r2 = model.r_squared(&norm);
        assert!(r2 > 0.9, "sigmoid fit should be good, R² = {r2} ({model})");
    }
}
