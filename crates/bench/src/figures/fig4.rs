//! Fig. 4 — serial-mode evaluation: statistics, time, and memory vs α.

use std::io;

use linkclust_core::baseline::NbmClustering;
use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, SweepConfig};
use linkclust_graph::stats::GraphStats;

use crate::alloc::{format_bytes, measure_peak};
use crate::table::{fmt_f64, Table};
use crate::timing::time_runs;
use crate::workloads::ALPHAS;

use super::FigureContext;

/// Fig. 4(1): nodes, edges, vertex pairs (K₁) and incident edge pairs
/// (K₂) for every α of the sweep.
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig4_1(ctx: &FigureContext) -> io::Result<()> {
    let mut t = Table::new(
        "Fig. 4(1): graph statistics vs alpha",
        &["alpha", "words", "nodes", "edges", "density", "k1_vertex_pairs", "k2_edge_pairs"],
    );
    for &alpha in &ALPHAS {
        let g = ctx.workload().graph_for_alpha(alpha);
        let s = GraphStats::compute(&g);
        t.row(vec![
            alpha.to_string(),
            ctx.scale().words_for_alpha(alpha).to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            fmt_f64(s.density, 3),
            s.common_neighbor_pairs.to_string(),
            s.incident_edge_pairs.to_string(),
        ]);
    }
    println!(
        "(paper: density falls 1.0 -> 0.136 across the sweep; K2 dominates |E| by 2-4 orders)"
    );
    t.emit(&ctx.csv_path("fig4_1_stats.csv"))
}

/// Fig. 4(2): execution time of the initialization phase, the sweeping
/// algorithm, and the standard O(|E|²) algorithm vs α. The standard
/// algorithm is skipped above the per-scale edge cap (the paper could
/// not finish it for α > 0.001 either).
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig4_2(ctx: &FigureContext) -> io::Result<()> {
    let runs = ctx.scale().timing_runs();
    let cap = ctx.scale().nbm_edge_cap();
    let mut t = Table::new(
        "Fig. 4(2): execution time (seconds) vs alpha",
        &["alpha", "edges", "init_s", "sweep_s", "standard_s", "speedup_std_over_sweep"],
    );
    for &alpha in &ALPHAS {
        let g = ctx.workload().graph_for_alpha(alpha);
        let (sims, init_stats) = time_runs(runs, || compute_similarities(&g));
        let (_, sweep_stats) = time_runs(runs, || {
            let sorted = sims.clone().into_sorted();
            sweep(&g, &sorted, SweepConfig::default())
        });
        let (std_cell, speedup_cell) = if g.edge_count() <= cap {
            let (_, std_stats) = time_runs(runs, || NbmClustering::new().run(&g, &sims));
            let total_sweep = init_stats.mean_secs() + sweep_stats.mean_secs();
            (
                fmt_f64(std_stats.mean_secs(), 4),
                fmt_f64(std_stats.mean_secs() / total_sweep.max(1e-12), 1),
            )
        } else {
            ("skipped(>cap)".to_owned(), "-".to_owned())
        };
        t.row(vec![
            alpha.to_string(),
            g.edge_count().to_string(),
            fmt_f64(init_stats.mean_secs(), 4),
            fmt_f64(sweep_stats.mean_secs(), 4),
            std_cell,
            speedup_cell,
        ]);
    }
    println!("(paper: sweeping ~ initialization; speedups over standard: 2.0, 40.0, 74.2)");
    t.emit(&ctx.csv_path("fig4_2_time.csv"))
}

/// Fig. 4(3): peak heap growth of the sweeping algorithm vs the standard
/// algorithm per α (the paper reports virtual memory: 881 MB vs 19.9 GB
/// at α = 0.001).
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig4_3(ctx: &FigureContext) -> io::Result<()> {
    let cap = ctx.scale().nbm_edge_cap();
    let mut t = Table::new(
        "Fig. 4(3): peak heap growth vs alpha",
        &["alpha", "edges", "sweep_bytes", "sweep_human", "standard_bytes", "standard_human"],
    );
    for &alpha in &ALPHAS {
        let g = ctx.workload().graph_for_alpha(alpha);
        let (_, sweep_peak) = measure_peak(|| {
            let sims = compute_similarities(&g).into_sorted();
            sweep(&g, &sims, SweepConfig::default())
        });
        let (std_bytes, std_human) = if g.edge_count() <= cap {
            let (_, std_peak) = measure_peak(|| {
                let sims = compute_similarities(&g);
                NbmClustering::new().run(&g, &sims)
            });
            (std_peak.to_string(), format_bytes(std_peak))
        } else {
            let projected = 8u128 * (g.edge_count() as u128) * (g.edge_count() as u128);
            ("skipped(>cap)".to_owned(), format!("~{} projected", format_bytes(projected as usize)))
        };
        t.row(vec![
            alpha.to_string(),
            g.edge_count().to_string(),
            sweep_peak.to_string(),
            format_bytes(sweep_peak),
            std_bytes,
            std_human,
        ]);
    }
    println!("(paper at alpha=0.001: sweeping 881 MB vs standard 19.9 GB)");
    t.emit(&ctx.csv_path("fig4_3_memory.csv"))
}

#[cfg(test)]
mod tests {
    use crate::workloads::{Scale, Workload};
    use linkclust_core::baseline::NbmClustering;
    use linkclust_core::init::compute_similarities;
    use linkclust_core::sweep::{sweep, SweepConfig};

    #[test]
    fn sweep_beats_standard_on_the_workload() {
        // The headline claim, checked on the small preset: on the larger
        // alpha points the sweep is faster than the standard algorithm.
        let w = Workload::generate(Scale::Small);
        let g = w.graph_for_alpha(0.005);
        let sims = compute_similarities(&g);
        let t_std = {
            let start = std::time::Instant::now();
            let _ = NbmClustering::new().run(&g, &sims);
            start.elapsed()
        };
        let t_sweep = {
            let start = std::time::Instant::now();
            let sorted = sims.into_sorted();
            let _ = sweep(&g, &sorted, SweepConfig::default());
            start.elapsed()
        };
        assert!(
            t_sweep < t_std,
            "sweep ({t_sweep:?}) should beat standard ({t_std:?}) at |E| = {}",
            g.edge_count()
        );
    }
}
