//! Fig. 5 — coarse-grained hierarchical clustering evaluation.

use std::io;

use linkclust_core::coarse::{coarse_sweep, CoarseConfig};
use linkclust_core::init::compute_similarities;
use linkclust_core::sweep::{sweep, SweepConfig};
use linkclust_graph::WeightedGraph;

use crate::alloc::{format_bytes, measure_peak};
use crate::table::{fmt_f64, Table};
use crate::timing::time_runs;
use crate::workloads::ALPHAS;

use super::FigureContext;

/// The coarse configuration for a workload graph, mirroring §VII-B:
/// γ = 2, φ = 100 (clamped for small graphs), δ₀ scaled to the
/// workload's K₂ like the paper's {100…10000} track its graph sizes.
#[must_use]
pub fn coarse_config_for(g: &WeightedGraph, k2: u64) -> CoarseConfig {
    CoarseConfig {
        gamma: 2.0,
        phi: 100.min((g.edge_count() / 4).max(1)),
        initial_chunk: (k2 / 1500).max(8),
        eta0: 8.0,
        ..Default::default()
    }
}

/// Fig. 5(1): epoch breakdown (head/fresh, tail/fresh, rollback, reused)
/// per α.
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig5_1(ctx: &FigureContext) -> io::Result<()> {
    let mut t = Table::new(
        "Fig. 5(1): coarse-sweep epoch breakdown vs alpha",
        &["alpha", "head_fresh", "tail_fresh", "rollback", "reused", "levels", "processed_frac"],
    );
    for &alpha in &ALPHAS {
        let g = ctx.workload().graph_for_alpha(alpha);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = coarse_config_for(&g, sims.incident_pair_count());
        let r = coarse_sweep(&g, &sims, cfg);
        let b = r.epoch_breakdown();
        t.row(vec![
            alpha.to_string(),
            b.head_fresh.to_string(),
            b.tail_fresh.to_string(),
            b.rollback.to_string(),
            b.reused.to_string(),
            r.levels().len().to_string(),
            fmt_f64(r.processed_fraction(), 3),
        ]);
    }
    println!("(paper: few head epochs; majority of pairs processed in tail mode)");
    t.emit(&ctx.csv_path("fig5_1_epochs.csv"))
}

/// Fig. 5(2): execution time and peak memory of the coarse-grained sweep
/// vs the fine-grained sweep per α, plus the fraction of incident pairs
/// the coarse sweep actually processed.
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig5_2(ctx: &FigureContext) -> io::Result<()> {
    let runs = ctx.scale().timing_runs();
    let mut t = Table::new(
        "Fig. 5(2): coarse-grained vs fine-grained sweeping",
        &[
            "alpha",
            "coarse_s",
            "sweep_s",
            "coarse_mem",
            "sweep_mem",
            "processed_frac",
            "final_clusters",
        ],
    );
    for &alpha in &ALPHAS {
        let g = ctx.workload().graph_for_alpha(alpha);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = coarse_config_for(&g, sims.incident_pair_count());

        let (r, coarse_stats) = time_runs(runs, || coarse_sweep(&g, &sims, cfg));
        let (_, sweep_stats) = time_runs(runs, || sweep(&g, &sims, SweepConfig::default()));
        let (_, coarse_mem) = measure_peak(|| coarse_sweep(&g, &sims, cfg));
        let (_, sweep_mem) = measure_peak(|| sweep(&g, &sims, SweepConfig::default()));

        t.row(vec![
            alpha.to_string(),
            fmt_f64(coarse_stats.mean_secs(), 4),
            fmt_f64(sweep_stats.mean_secs(), 4),
            format_bytes(coarse_mem),
            format_bytes(sweep_mem),
            fmt_f64(r.processed_fraction(), 3),
            r.dendrogram().final_cluster_count().to_string(),
        ]);
    }
    println!(
        "(paper: coarse-grained finishes faster; at alpha=0.005 only 55.1% of pairs processed)"
    );
    t.emit(&ctx.csv_path("fig5_2_coarse.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Scale, Workload};

    #[test]
    fn coarse_processes_fewer_pairs_than_full_sweep() {
        // The phi cutoff must leave part of the tail unprocessed on a
        // realistically sized workload graph.
        let w = Workload::generate(Scale::Small);
        let g = w.graph_for_alpha(0.005);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = coarse_config_for(&g, sims.incident_pair_count());
        let r = coarse_sweep(&g, &sims, cfg);
        assert!(
            r.processed_fraction() < 1.0,
            "expected early phi-termination, processed {:.3}",
            r.processed_fraction()
        );
        assert!(r.dendrogram().final_cluster_count() <= cfg.phi);
    }
}
