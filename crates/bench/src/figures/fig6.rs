//! Fig. 6 — multi-threading speedups.
//!
//! The paper's workstation has 6 physical cores; the harness runs the
//! same thread sweep {1, 2, 4, 6} on whatever hardware is present and
//! reports honestly (on fewer cores, speedups saturate at the core
//! count; on one core they hover near or below 1.0 due to threading
//! overhead — the *correctness* of the parallel path is covered by the
//! test suite independently of speedup).

use std::io;

use linkclust_core::init::compute_similarities;
use linkclust_parallel::{compute_similarities_parallel, parallel_coarse_sweep};

use crate::figures::fig5::coarse_config_for;
use crate::table::{fmt_f64, Table};
use crate::timing::time_runs;

use super::FigureContext;

/// The thread counts of Fig. 6.
pub const THREADS: [usize; 4] = [1, 2, 4, 6];

/// α values evaluated (the paper drops α = 0.0001 as trivially fast).
const FIG6_ALPHAS: [f64; 4] = [0.0005, 0.001, 0.005, 0.01];

/// Fig. 6(1): initialization-phase speedup vs thread count per α.
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig6_1(ctx: &FigureContext) -> io::Result<()> {
    let runs = ctx.scale().timing_runs();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut t = Table::new(
        &format!("Fig. 6(1): initialization speedup ({cores} hardware cores)"),
        &["alpha", "threads", "time_s", "speedup"],
    );
    for &alpha in &FIG6_ALPHAS {
        let g = ctx.workload().graph_for_alpha(alpha);
        let mut base = None;
        for &threads in &THREADS {
            let (_, stats) = time_runs(runs, || compute_similarities_parallel(&g, threads));
            let secs = stats.mean_secs();
            let base_secs = *base.get_or_insert(secs);
            t.row(vec![
                alpha.to_string(),
                threads.to_string(),
                fmt_f64(secs, 4),
                fmt_f64(base_secs / secs.max(1e-12), 2),
            ]);
        }
    }
    println!("(paper on 6 cores: ~2.0x at 2 threads, 3.5-4.0x at 4, 4.5-5.0x at 6)");
    t.emit(&ctx.csv_path("fig6_1_init_speedup.csv"))
}

/// Fig. 6(2): coarse-sweep speedup vs thread count per α (initialization
/// is shared; only the sweep is timed).
///
/// # Errors
///
/// Propagates CSV-write failures.
pub fn run_fig6_2(ctx: &FigureContext) -> io::Result<()> {
    let runs = ctx.scale().timing_runs();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut t = Table::new(
        &format!("Fig. 6(2): coarse-sweep speedup ({cores} hardware cores)"),
        &["alpha", "threads", "time_s", "speedup"],
    );
    for &alpha in &FIG6_ALPHAS {
        let g = ctx.workload().graph_for_alpha(alpha);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = coarse_config_for(&g, sims.incident_pair_count());
        let mut base = None;
        for &threads in &THREADS {
            let (_, stats) = time_runs(runs, || parallel_coarse_sweep(&g, &sims, cfg, threads));
            let secs = stats.mean_secs();
            let base_secs = *base.get_or_insert(secs);
            t.row(vec![
                alpha.to_string(),
                threads.to_string(),
                fmt_f64(secs, 4),
                fmt_f64(base_secs / secs.max(1e-12), 2),
            ]);
        }
    }
    t.emit(&ctx.csv_path("fig6_2_sweep_speedup.csv"))
}
