//! One runner per figure of the paper's evaluation.
//!
//! | id | paper | runner |
//! |----|-------|--------|
//! | `fig1` | Fig. 1 example graph (K₁=7 < K₂=16 < K₃=28) | [`fig1`] |
//! | `fig2-1` | changes on array C per level | [`fig2::run_fig2_1`] |
//! | `fig2-2` | cluster decay + sigmoid fit | [`fig2::run_fig2_2`] |
//! | `fig4-1` | graph statistics vs α | [`fig4::run_fig4_1`] |
//! | `fig4-2` | execution times vs α | [`fig4::run_fig4_2`] |
//! | `fig4-3` | memory vs α | [`fig4::run_fig4_3`] |
//! | `fig5-1` | epoch breakdown | [`fig5::run_fig5_1`] |
//! | `fig5-2` | coarse vs sweeping | [`fig5::run_fig5_2`] |
//! | `fig6-1` | init speedup vs threads | [`fig6::run_fig6_1`] |
//! | `fig6-2` | sweep speedup vs threads | [`fig6::run_fig6_2`] |
//! | `cor1` | Corollary 1 asymptotics | [`cor1`] |
//! | `ablation` | γ/φ/edge-order design-choice sweeps (not a paper figure) | [`ablation`] |

pub mod ablation;
pub mod cor1;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;

use std::path::PathBuf;

use crate::workloads::{Scale, Workload};

/// Shared state for figure runners: the scale preset, output directory,
/// and the lazily generated workload.
pub struct FigureContext {
    scale: Scale,
    out_dir: PathBuf,
    workload: std::cell::OnceCell<Workload>,
}

impl FigureContext {
    /// Creates a context writing CSVs under `out_dir`.
    #[must_use]
    pub fn new(scale: Scale, out_dir: PathBuf) -> Self {
        FigureContext { scale, out_dir, workload: std::cell::OnceCell::new() }
    }

    /// The scale preset.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The output path for a CSV file.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// The workload (generated on first use, cached).
    pub fn workload(&self) -> &Workload {
        self.workload.get_or_init(|| {
            eprintln!("[workload] generating synthetic corpus at {:?} scale...", self.scale);
            Workload::generate(self.scale)
        })
    }
}
