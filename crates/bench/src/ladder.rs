//! The scale benchmark ladder (§VI at scale).
//!
//! A fixed grid of rungs — three generator families (`gnm`,
//! Barabási–Albert, LFR-style planted communities) crossed with
//! edge-count tiers from ~10³ up to 10⁶ — each measured end to end on
//! the CSR backend at thread counts {1, 2, 4, 8}. Every rung records
//! wall-clock (min and mean over the configured runs), the rung
//! process's peak RSS (`VmHWM`), the CSR slab footprint, binary-format
//! round-trip latency, a bit-identity check against the adjacency-list
//! oracle, a per-thread-count phase split (init/sort/sweep, from the
//! telemetry spans of a dedicated instrumented run), a
//! `parallel_speedup_positive` verdict, and — on the LFR family —
//! ground-truth recovery scored with NMI and pair-counting F1 from
//! `linkclust_core::evaluate`. The document additionally records the
//! runner's honest hardware situation (visible cores, cgroup CPU quota,
//! and whether the thread grid exceeds them) so speedup numbers from a
//! quota-limited CI box are flagged rather than believed.
//!
//! The `bench_ladder` binary drives the grid: the parent process
//! re-executes itself once per rung (`--one-rung <id>`) so each rung's
//! `VmHWM` is isolated, then assembles the per-rung reports into
//! `BENCH_scale.json`. The Barabási–Albert family is capped at 10⁵
//! edges (preferential attachment is quadratic in the generator), which
//! the emitted JSON records explicitly rather than silently.

use std::time::Duration;

use linkclust_core::evaluate::{normalized_mutual_information, pair_f1};
use linkclust_core::init::compute_similarities;
use linkclust_core::telemetry::Phase;
use linkclust_graph::generate::{barabasi_albert, gnm, lfr_like, PlantedPartition, WeightMode};
use linkclust_graph::{CsrGraph, GraphFile, WeightedGraph};
use linkclust_parallel::LinkClustering;

use crate::timing::time_runs;

/// Identifier of the emitted document layout; bump on breaking change.
/// v2 added honest hardware detection (`cgroup_quota_cores`,
/// `threads_exceed_cores`), per-thread-sample phase splits
/// (init/sort/sweep), per-rung `parallel_speedup_positive`, and the
/// document-level `parallel_speedup_positive_at_largest_rung` flag.
pub const SCHEMA: &str = "linkclust-bench-scale/v2";

/// Thread counts every rung is timed at.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Target edge-count tiers of the full ladder.
pub const TIERS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Barabási–Albert rungs stop here: preferential attachment in the
/// generator is O(n·m) and the family exists to cover power-law degree
/// skew, which 10⁵ edges already exhibit.
pub const BA_EDGE_CAP: usize = 100_000;

/// What the machine actually offers the ladder — recorded in the
/// document so speedup figures can be judged honestly. A containerized
/// runner frequently reports many hardware threads through
/// `available_parallelism` while a cgroup CPU quota pins the process to
/// a fraction of one core; `threads_exceed_cores` flags any rung grid
/// whose largest thread count the machine cannot actually run in
/// parallel.
#[derive(Clone, Copy, Debug)]
pub struct Hardware {
    /// `std::thread::available_parallelism()`, 1 if unknown.
    pub cores: usize,
    /// Effective cores granted by a cgroup CPU quota (v2 `cpu.max` or v1
    /// `cfs_quota_us / cfs_period_us`), `None` when unlimited or not in
    /// a cgroup.
    pub cgroup_quota_cores: Option<f64>,
    /// `true` when the largest entry of [`THREADS`] exceeds the
    /// effective core count — speedup figures are then contention
    /// artifacts, not parallel scaling.
    pub threads_exceed_cores: bool,
}

impl Hardware {
    /// The smaller of the visible core count and the cgroup quota.
    #[must_use]
    pub fn effective_cores(&self) -> f64 {
        let cores = self.cores as f64;
        self.cgroup_quota_cores.map_or(cores, |q| q.min(cores))
    }

    /// The `"hardware"` JSON object of the document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let quota =
            self.cgroup_quota_cores.map_or_else(|| "null".to_owned(), |q| format!("{q:.4}"));
        format!(
            "{{\"cores\":{},\"cgroup_quota_cores\":{},\"threads_exceed_cores\":{}}}",
            self.cores, quota, self.threads_exceed_cores,
        )
    }
}

/// Probes the runner: visible parallelism, cgroup CPU quota (v2 first,
/// then v1), and whether the ladder's largest thread count exceeds what
/// the machine can actually run.
#[must_use]
pub fn detect_hardware() -> Hardware {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let cgroup_quota_cores = cgroup_v2_quota().or_else(cgroup_v1_quota);
    let max_threads = THREADS.iter().copied().max().unwrap_or(1);
    let effective = cgroup_quota_cores.map_or(cores as f64, |q| q.min(cores as f64));
    Hardware { cores, cgroup_quota_cores, threads_exceed_cores: max_threads as f64 > effective }
}

/// cgroup v2: `/sys/fs/cgroup/cpu.max` is `"<quota> <period>"` in
/// microseconds, or `"max ..."` when unlimited.
fn cgroup_v2_quota() -> Option<f64> {
    let text = std::fs::read_to_string("/sys/fs/cgroup/cpu.max").ok()?;
    let mut parts = text.split_whitespace();
    let quota: f64 = parts.next()?.parse().ok()?;
    let period: f64 = parts.next()?.parse().ok()?;
    // float-cmp: sign test against exact-zero sentinels, not an
    // equality on computed values.
    (quota > 0.0 && period > 0.0).then(|| quota / period)
}

/// cgroup v1: quota and period live in separate `cpu.cfs_*_us` files;
/// a quota of `-1` means unlimited.
fn cgroup_v1_quota() -> Option<f64> {
    let read = |name: &str| -> Option<f64> {
        std::fs::read_to_string(format!("/sys/fs/cgroup/cpu/{name}")).ok()?.trim().parse().ok()
    };
    let quota = read("cpu.cfs_quota_us")?;
    let period = read("cpu.cfs_period_us")?;
    // float-cmp: sign test against exact-zero sentinels (v1 encodes
    // "unlimited" as -1), not an equality on computed values.
    (quota > 0.0 && period > 0.0).then(|| quota / period)
}

/// The generator families the ladder spans.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Erdős–Rényi G(n, m) with uniform weights.
    Gnm,
    /// Barabási–Albert preferential attachment (power-law degrees).
    BarabasiAlbert,
    /// LFR-style planted communities with ground truth.
    LfrLike,
}

impl Family {
    /// The stable name used in rung ids and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Gnm => "gnm",
            Family::BarabasiAlbert => "barabasi_albert",
            Family::LfrLike => "lfr_like",
        }
    }
}

/// One rung: a generator family at a target edge tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RungSpec {
    /// Generator family.
    pub family: Family,
    /// Target edge count (generators land near, not exactly on, it).
    pub tier: usize,
}

impl RungSpec {
    /// The id used on the `--one-rung` command line, `family:tier`.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}:{}", self.family.name(), self.tier)
    }

    /// Parses a `family:tier` id back into a spec.
    #[must_use]
    pub fn parse(id: &str) -> Option<RungSpec> {
        let (family, tier) = id.split_once(':')?;
        let family = match family {
            "gnm" => Family::Gnm,
            "barabasi_albert" => Family::BarabasiAlbert,
            "lfr_like" => Family::LfrLike,
            _ => return None,
        };
        Some(RungSpec { family, tier: tier.parse().ok()? })
    }
}

/// The rung grid: every family at every tier it supports, smallest
/// first. `smoke` keeps only the two smallest tiers per family (the CI
/// gate); the full ladder reaches 10⁶ edges on `gnm` and LFR.
#[must_use]
pub fn rung_specs(smoke: bool) -> Vec<RungSpec> {
    let tiers: &[usize] = if smoke { &TIERS[..2] } else { &TIERS };
    let mut specs = Vec::new();
    for &tier in tiers {
        for family in [Family::Gnm, Family::BarabasiAlbert, Family::LfrLike] {
            if family == Family::BarabasiAlbert && tier > BA_EDGE_CAP {
                continue;
            }
            specs.push(RungSpec { family, tier });
        }
    }
    specs
}

/// Builds the rung's graph. LFR rungs carry planted ground truth; the
/// other families return `None` for it.
#[must_use]
pub fn build_workload(spec: RungSpec) -> (WeightedGraph, Option<PlantedPartition>) {
    // Average degree 10 across all families keeps density comparable
    // between rungs of the same tier.
    let n = (spec.tier / 5).max(16);
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let seed = 0xC5A7 ^ spec.tier as u64;
    match spec.family {
        Family::Gnm => (gnm(n, spec.tier, w, seed), None),
        Family::BarabasiAlbert => (barabasi_albert(n, 5, w, seed), None),
        Family::LfrLike => {
            let planted = lfr_like(n, 10, 0.2, seed);
            (planted.graph.clone(), Some(planted))
        }
    }
}

/// Where one pipeline run spent its time, folded to the three
/// coarse phases of the paper's cost model (reusing the PR 5 telemetry
/// spans; measured on one dedicated `.stats(true)` run so the
/// instrumented run never contaminates the wall-clock samples).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseSplit {
    /// Initialization: passes 1–3 plus the parallel shard fold / map
    /// merge, whichever the run used.
    pub init_ms: f64,
    /// Sorting the similarity list.
    pub sort_ms: f64,
    /// The sweep (outer span — for the ufsweep engine this contains the
    /// local, stitch, and replay sub-phases).
    pub sweep_ms: f64,
}

impl PhaseSplit {
    /// Folds a telemetry report into the three coarse phases.
    #[must_use]
    pub fn from_report(report: &linkclust_core::telemetry::RunReport) -> PhaseSplit {
        let ms = |p: Phase| report.phase_nanos(p) as f64 / 1e6;
        PhaseSplit {
            init_ms: ms(Phase::InitPass1)
                + ms(Phase::InitPass2)
                + ms(Phase::InitShardFold)
                + ms(Phase::InitMapMerge)
                + ms(Phase::InitPass3),
            sort_ms: ms(Phase::Sort),
            sweep_ms: ms(Phase::Sweep),
        }
    }
}

/// Wall-clock sample for one thread count.
#[derive(Clone, Copy, Debug)]
pub struct ThreadSample {
    /// Worker threads used.
    pub threads: usize,
    /// Fastest of the timed runs.
    pub min: Duration,
    /// Mean of the timed runs.
    pub mean: Duration,
    /// Phase split of the dedicated instrumented run.
    pub phases: PhaseSplit,
}

/// Everything measured on one rung.
#[derive(Clone, Debug)]
pub struct RungReport {
    /// The rung measured.
    pub spec: RungSpec,
    /// Vertices actually generated.
    pub vertices: usize,
    /// Edges actually generated (generators land near the tier).
    pub edges: usize,
    /// Bytes of the CSR slabs ([`CsrGraph::memory_bytes`]).
    pub csr_memory_bytes: usize,
    /// Time to serialize the graph to the binary format.
    pub bin_write: Duration,
    /// Time to stream the binary bytes back into a [`CsrGraph`].
    pub bin_read: Duration,
    /// `true` if the binary round trip reproduced the CSR exactly.
    pub bin_roundtrip_ok: bool,
    /// `true` if CSR similarities matched the adjacency-list oracle to
    /// the bit.
    pub csr_matches_adjacency: bool,
    /// One wall-clock sample per thread count in [`THREADS`].
    pub thread_samples: Vec<ThreadSample>,
    /// NMI of recovered vs planted edge communities (LFR rungs only).
    pub nmi: Option<f64>,
    /// Pair-counting F1 of recovered vs planted edge communities (LFR
    /// rungs only).
    pub pair_f1: Option<f64>,
    /// Peak resident set of the rung process (`VmHWM`), 0 if unknown.
    pub peak_rss_bytes: u64,
}

/// Reads the process's peak resident set (`VmHWM`) from
/// `/proc/self/status`, in bytes; 0 where procfs is unavailable.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Measures one rung end to end: generate, convert to CSR, round-trip
/// the binary format, check bit-identity against the adjacency oracle,
/// time the full pipeline at each thread count, and (LFR) score the
/// recovered communities against the planted ground truth.
///
/// # Panics
///
/// Panics if a pipeline run rejects its configuration — impossible for
/// the thread counts in [`THREADS`].
#[must_use]
pub fn run_rung(spec: RungSpec, runs: usize) -> RungReport {
    let (g, planted) = build_workload(spec);
    let csr = CsrGraph::from_weighted(&g);

    // Binary-format round trip, timed on the same rung payload.
    let mut bytes = Vec::new();
    let ((), wstats) = time_runs(1, || {
        bytes.clear();
        GraphFile::write(&csr, &mut bytes).expect("vec write cannot fail");
    });
    let (back, rstats) = time_runs(1, || {
        GraphFile::read_streamed(bytes.as_slice()).expect("round trip of a valid graph")
    });
    let bin_roundtrip_ok = back == csr;

    // Bit-identity: parallel Phase I on the CSR backend against the
    // serial adjacency-list oracle.
    let oracle = compute_similarities(&g).into_sorted();
    let csr_sims = LinkClustering::new()
        .threads(*THREADS.last().expect("non-empty"))
        .similarities(&csr)
        .expect("validated thread count");
    let csr_matches_adjacency = oracle.len() == csr_sims.len()
        && oracle
            .entries()
            .iter()
            .zip(csr_sims.entries())
            .all(|(a, b)| a.pair == b.pair && a.score.to_bits() == b.score.to_bits());

    // Wall clock at every thread count, CSR backend, full pipeline.
    // The phase split comes from one extra instrumented run so the
    // telemetry overhead stays out of the timed samples.
    let thread_samples: Vec<ThreadSample> = THREADS
        .iter()
        .map(|&threads| {
            let facade = LinkClustering::new().threads(threads);
            let (_, stats) = time_runs(runs, || facade.run(&csr).expect("validated thread count"));
            let instrumented = LinkClustering::new()
                .threads(threads)
                .stats(true)
                .run(&csr)
                .expect("validated thread count");
            let phases = instrumented
                .report()
                .map(PhaseSplit::from_report)
                .expect("stats(true) attaches a report");
            ThreadSample { threads, min: stats.min, mean: stats.mean, phases }
        })
        .collect();

    // Ground-truth recovery on the LFR family: cut the dendrogram at
    // its best partition density and score the edge communities.
    let (nmi, pf1) = match &planted {
        Some(p) => {
            let result = LinkClustering::new().run(&csr).expect("serial run");
            let labels = match result.dendrogram().best_density_cut(&csr) {
                Some(cut) => result.output().edge_assignments_at_level(cut.level),
                None => result.edge_assignments(),
            };
            (
                Some(normalized_mutual_information(&p.edge_community, &labels)),
                Some(pair_f1(&p.edge_community, &labels)),
            )
        }
        None => (None, None),
    };

    RungReport {
        spec,
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        csr_memory_bytes: csr.memory_bytes(),
        bin_write: wstats.min,
        bin_read: rstats.min,
        bin_roundtrip_ok,
        csr_matches_adjacency,
        thread_samples,
        nmi,
        pair_f1: pf1,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn f64_or_null(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| format!("{x:.6}"))
}

impl RungReport {
    /// `true` when some multi-thread sample beat the rung's own
    /// single-thread minimum — the honest per-rung answer to "did
    /// parallelism help here at all".
    #[must_use]
    pub fn parallel_speedup_positive(&self) -> bool {
        let Some(t1) = self.thread_samples.iter().find(|s| s.threads == 1) else { return false };
        self.thread_samples.iter().any(|s| s.threads > 1 && s.min < t1.min)
    }

    /// The rung as one JSON object (the element of `"rungs"` in
    /// `BENCH_scale.json`). `speedup` is self-relative: the rung's own
    /// single-thread minimum over the minimum at that thread count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let t1 = self
            .thread_samples
            .iter()
            .find(|s| s.threads == 1)
            .map_or(f64::NAN, |s| s.min.as_secs_f64());
        let threads: Vec<String> = self
            .thread_samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"threads\":{},\"min_ms\":{:.3},\"mean_ms\":{:.3},\"speedup\":{:.4},\
                      \"phases\":{{\"init_ms\":{:.3},\"sort_ms\":{:.3},\"sweep_ms\":{:.3}}}}}",
                    s.threads,
                    millis(s.min),
                    millis(s.mean),
                    t1 / s.min.as_secs_f64().max(1e-12),
                    s.phases.init_ms,
                    s.phases.sort_ms,
                    s.phases.sweep_ms,
                )
            })
            .collect();
        format!(
            "{{\"family\":\"{}\",\"tier\":{},\"vertices\":{},\"edges\":{},\
              \"csr_memory_bytes\":{},\"peak_rss_bytes\":{},\
              \"bin_write_ms\":{:.3},\"bin_read_ms\":{:.3},\"bin_roundtrip_ok\":{},\
              \"csr_matches_adjacency\":{},\
              \"parallel_speedup_positive\":{},\
              \"threads\":[{}],\
              \"nmi\":{},\"pair_f1\":{}}}",
            self.spec.family.name(),
            self.spec.tier,
            self.vertices,
            self.edges,
            self.csr_memory_bytes,
            self.peak_rss_bytes,
            millis(self.bin_write),
            millis(self.bin_read),
            self.bin_roundtrip_ok,
            self.csr_matches_adjacency,
            self.parallel_speedup_positive(),
            threads.join(","),
            f64_or_null(self.nmi),
            f64_or_null(self.pair_f1),
        )
    }
}

/// Assembles the full `BENCH_scale.json` document from per-rung JSON
/// objects (already serialized, in rung order).
/// `speedup_at_largest_rung` is the document-level headline: every rung
/// at the ladder's largest tier saw positive parallel speedup (the
/// caller derives it from the rung reports, which it has in spec
/// order). On a runner whose `hardware.threads_exceed_cores` is true
/// the flag being false is the expected — and honest — outcome.
#[must_use]
pub fn document_json(
    smoke: bool,
    runs: usize,
    hardware: &Hardware,
    speedup_at_largest_rung: bool,
    rung_objects: &[String],
) -> String {
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"smoke\":{smoke},\"runs\":{runs},\
          \"hardware\":{},\
          \"parallel_speedup_positive_at_largest_rung\":{speedup_at_largest_rung},\
          \"ba_edge_cap\":{BA_EDGE_CAP},\
          \"rungs\":[{}]}}",
        hardware.to_json(),
        rung_objects.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_ids_round_trip() {
        for spec in rung_specs(false) {
            assert_eq!(RungSpec::parse(&spec.id()), Some(spec));
        }
        assert_eq!(RungSpec::parse("nope:100"), None);
        assert_eq!(RungSpec::parse("gnm:x"), None);
        assert_eq!(RungSpec::parse("gnm"), None);
    }

    #[test]
    fn smoke_grid_is_the_two_smallest_tiers() {
        let smoke = rung_specs(true);
        assert_eq!(smoke.len(), 6); // 3 families × 2 tiers
        assert!(smoke.iter().all(|s| s.tier <= TIERS[1]));
        let full = rung_specs(false);
        // The full ladder reaches 10⁶ edges on gnm and LFR; BA is capped.
        assert!(full.iter().any(|s| s.family == Family::Gnm && s.tier == 1_000_000));
        assert!(full.iter().any(|s| s.family == Family::LfrLike && s.tier == 1_000_000));
        assert!(full.iter().all(|s| s.family != Family::BarabasiAlbert || s.tier <= BA_EDGE_CAP));
    }

    #[test]
    fn workloads_land_near_their_tier() {
        for spec in rung_specs(true) {
            let (g, planted) = build_workload(spec);
            let m = g.edge_count();
            assert!(
                m >= spec.tier / 2 && m <= spec.tier + spec.tier / 2 + 64,
                "{}: {m} edges for tier {}",
                spec.id(),
                spec.tier
            );
            match spec.family {
                Family::LfrLike => {
                    let p = planted.expect("LFR carries ground truth");
                    assert_eq!(p.edge_community.len(), m);
                }
                _ => assert!(planted.is_none()),
            }
        }
    }

    #[test]
    fn smallest_rung_reports_are_complete_and_valid() {
        let report = run_rung(RungSpec { family: Family::LfrLike, tier: 1_000 }, 1);
        assert!(report.bin_roundtrip_ok);
        assert!(report.csr_matches_adjacency);
        assert_eq!(report.thread_samples.len(), THREADS.len());
        let nmi = report.nmi.expect("LFR rungs are scored");
        let f1 = report.pair_f1.expect("LFR rungs are scored");
        assert!((0.0..=1.0).contains(&nmi), "{nmi}");
        assert!((0.0..=1.0).contains(&f1), "{f1}");
        // Every sample carries a phase split, and the three phases are
        // real measurements (a pipeline run spends time in each).
        for s in &report.thread_samples {
            assert!(s.phases.init_ms > 0.0, "t={}: empty init split", s.threads);
            assert!(s.phases.sort_ms > 0.0, "t={}: empty sort split", s.threads);
            assert!(s.phases.sweep_ms > 0.0, "t={}: empty sweep split", s.threads);
        }
        // The JSON document is well-formed enough to contain the rung.
        let hw = detect_hardware();
        let doc =
            document_json(true, 1, &hw, report.parallel_speedup_positive(), &[report.to_json()]);
        assert!(doc.contains("\"schema\":\"linkclust-bench-scale/v2\""));
        assert!(doc.contains("\"family\":\"lfr_like\""));
        assert!(doc.contains("\"nmi\":"));
        assert!(doc.contains("\"parallel_speedup_positive_at_largest_rung\":"));
        assert!(doc.contains("\"cgroup_quota_cores\":"));
        assert!(doc.contains("\"threads_exceed_cores\":"));
        assert!(doc.contains("\"phases\":{\"init_ms\":"));
    }

    #[test]
    fn hardware_detection_is_sane() {
        let hw = detect_hardware();
        assert!(hw.cores >= 1);
        if let Some(q) = hw.cgroup_quota_cores {
            assert!(q > 0.0, "{q}");
        }
        assert!(hw.effective_cores() > 0.0);
        // This runner's visible parallelism decides the flag: the grid
        // tops out at max(THREADS).
        let max_threads = *THREADS.iter().max().unwrap() as f64;
        assert_eq!(hw.threads_exceed_cores, max_threads > hw.effective_cores());
        let json = hw.to_json();
        assert!(json.starts_with("{\"cores\":"));
        assert!(json.contains("\"threads_exceed_cores\":"));
    }

    #[test]
    fn speedup_flag_reflects_the_samples() {
        let mk = |mins: &[(usize, u64)]| RungReport {
            spec: RungSpec { family: Family::Gnm, tier: 1_000 },
            vertices: 10,
            edges: 20,
            csr_memory_bytes: 0,
            bin_write: Duration::ZERO,
            bin_read: Duration::ZERO,
            bin_roundtrip_ok: true,
            csr_matches_adjacency: true,
            thread_samples: mins
                .iter()
                .map(|&(threads, ms)| ThreadSample {
                    threads,
                    min: Duration::from_millis(ms),
                    mean: Duration::from_millis(ms),
                    phases: PhaseSplit::default(),
                })
                .collect(),
            nmi: None,
            pair_f1: None,
            peak_rss_bytes: 0,
        };
        assert!(mk(&[(1, 100), (2, 60), (4, 120)]).parallel_speedup_positive());
        assert!(!mk(&[(1, 100), (2, 130), (4, 170)]).parallel_speedup_positive());
        assert!(!mk(&[(2, 60)]).parallel_speedup_positive(), "no 1-thread baseline");
    }
}
