//! The scale benchmark ladder (§VI at scale).
//!
//! A fixed grid of rungs — three generator families (`gnm`,
//! Barabási–Albert, LFR-style planted communities) crossed with
//! edge-count tiers from ~10³ up to 10⁶ — each measured end to end on
//! the CSR backend at thread counts {1, 2, 4, 8}. Every rung records
//! wall-clock (min and mean over the configured runs), the rung
//! process's peak RSS (`VmHWM`), the CSR slab footprint, binary-format
//! round-trip latency, a bit-identity check against the adjacency-list
//! oracle, and — on the LFR family — ground-truth recovery scored with
//! NMI and pair-counting F1 from `linkclust_core::evaluate`.
//!
//! The `bench_ladder` binary drives the grid: the parent process
//! re-executes itself once per rung (`--one-rung <id>`) so each rung's
//! `VmHWM` is isolated, then assembles the per-rung reports into
//! `BENCH_scale.json`. The Barabási–Albert family is capped at 10⁵
//! edges (preferential attachment is quadratic in the generator), which
//! the emitted JSON records explicitly rather than silently.

use std::time::Duration;

use linkclust_core::evaluate::{normalized_mutual_information, pair_f1};
use linkclust_core::init::compute_similarities;
use linkclust_graph::generate::{barabasi_albert, gnm, lfr_like, PlantedPartition, WeightMode};
use linkclust_graph::{CsrGraph, GraphFile, WeightedGraph};
use linkclust_parallel::LinkClustering;

use crate::timing::time_runs;

/// Identifier of the emitted document layout; bump on breaking change.
pub const SCHEMA: &str = "linkclust-bench-scale/v1";

/// Thread counts every rung is timed at.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Target edge-count tiers of the full ladder.
pub const TIERS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Barabási–Albert rungs stop here: preferential attachment in the
/// generator is O(n·m) and the family exists to cover power-law degree
/// skew, which 10⁵ edges already exhibit.
pub const BA_EDGE_CAP: usize = 100_000;

/// The generator families the ladder spans.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Erdős–Rényi G(n, m) with uniform weights.
    Gnm,
    /// Barabási–Albert preferential attachment (power-law degrees).
    BarabasiAlbert,
    /// LFR-style planted communities with ground truth.
    LfrLike,
}

impl Family {
    /// The stable name used in rung ids and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Gnm => "gnm",
            Family::BarabasiAlbert => "barabasi_albert",
            Family::LfrLike => "lfr_like",
        }
    }
}

/// One rung: a generator family at a target edge tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RungSpec {
    /// Generator family.
    pub family: Family,
    /// Target edge count (generators land near, not exactly on, it).
    pub tier: usize,
}

impl RungSpec {
    /// The id used on the `--one-rung` command line, `family:tier`.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}:{}", self.family.name(), self.tier)
    }

    /// Parses a `family:tier` id back into a spec.
    #[must_use]
    pub fn parse(id: &str) -> Option<RungSpec> {
        let (family, tier) = id.split_once(':')?;
        let family = match family {
            "gnm" => Family::Gnm,
            "barabasi_albert" => Family::BarabasiAlbert,
            "lfr_like" => Family::LfrLike,
            _ => return None,
        };
        Some(RungSpec { family, tier: tier.parse().ok()? })
    }
}

/// The rung grid: every family at every tier it supports, smallest
/// first. `smoke` keeps only the two smallest tiers per family (the CI
/// gate); the full ladder reaches 10⁶ edges on `gnm` and LFR.
#[must_use]
pub fn rung_specs(smoke: bool) -> Vec<RungSpec> {
    let tiers: &[usize] = if smoke { &TIERS[..2] } else { &TIERS };
    let mut specs = Vec::new();
    for &tier in tiers {
        for family in [Family::Gnm, Family::BarabasiAlbert, Family::LfrLike] {
            if family == Family::BarabasiAlbert && tier > BA_EDGE_CAP {
                continue;
            }
            specs.push(RungSpec { family, tier });
        }
    }
    specs
}

/// Builds the rung's graph. LFR rungs carry planted ground truth; the
/// other families return `None` for it.
#[must_use]
pub fn build_workload(spec: RungSpec) -> (WeightedGraph, Option<PlantedPartition>) {
    // Average degree 10 across all families keeps density comparable
    // between rungs of the same tier.
    let n = (spec.tier / 5).max(16);
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let seed = 0xC5A7 ^ spec.tier as u64;
    match spec.family {
        Family::Gnm => (gnm(n, spec.tier, w, seed), None),
        Family::BarabasiAlbert => (barabasi_albert(n, 5, w, seed), None),
        Family::LfrLike => {
            let planted = lfr_like(n, 10, 0.2, seed);
            (planted.graph.clone(), Some(planted))
        }
    }
}

/// Wall-clock sample for one thread count.
#[derive(Clone, Copy, Debug)]
pub struct ThreadSample {
    /// Worker threads used.
    pub threads: usize,
    /// Fastest of the timed runs.
    pub min: Duration,
    /// Mean of the timed runs.
    pub mean: Duration,
}

/// Everything measured on one rung.
#[derive(Clone, Debug)]
pub struct RungReport {
    /// The rung measured.
    pub spec: RungSpec,
    /// Vertices actually generated.
    pub vertices: usize,
    /// Edges actually generated (generators land near the tier).
    pub edges: usize,
    /// Bytes of the CSR slabs ([`CsrGraph::memory_bytes`]).
    pub csr_memory_bytes: usize,
    /// Time to serialize the graph to the binary format.
    pub bin_write: Duration,
    /// Time to stream the binary bytes back into a [`CsrGraph`].
    pub bin_read: Duration,
    /// `true` if the binary round trip reproduced the CSR exactly.
    pub bin_roundtrip_ok: bool,
    /// `true` if CSR similarities matched the adjacency-list oracle to
    /// the bit.
    pub csr_matches_adjacency: bool,
    /// One wall-clock sample per thread count in [`THREADS`].
    pub thread_samples: Vec<ThreadSample>,
    /// NMI of recovered vs planted edge communities (LFR rungs only).
    pub nmi: Option<f64>,
    /// Pair-counting F1 of recovered vs planted edge communities (LFR
    /// rungs only).
    pub pair_f1: Option<f64>,
    /// Peak resident set of the rung process (`VmHWM`), 0 if unknown.
    pub peak_rss_bytes: u64,
}

/// Reads the process's peak resident set (`VmHWM`) from
/// `/proc/self/status`, in bytes; 0 where procfs is unavailable.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Measures one rung end to end: generate, convert to CSR, round-trip
/// the binary format, check bit-identity against the adjacency oracle,
/// time the full pipeline at each thread count, and (LFR) score the
/// recovered communities against the planted ground truth.
///
/// # Panics
///
/// Panics if a pipeline run rejects its configuration — impossible for
/// the thread counts in [`THREADS`].
#[must_use]
pub fn run_rung(spec: RungSpec, runs: usize) -> RungReport {
    let (g, planted) = build_workload(spec);
    let csr = CsrGraph::from_weighted(&g);

    // Binary-format round trip, timed on the same rung payload.
    let mut bytes = Vec::new();
    let ((), wstats) = time_runs(1, || {
        bytes.clear();
        GraphFile::write(&csr, &mut bytes).expect("vec write cannot fail");
    });
    let (back, rstats) = time_runs(1, || {
        GraphFile::read_streamed(bytes.as_slice()).expect("round trip of a valid graph")
    });
    let bin_roundtrip_ok = back == csr;

    // Bit-identity: parallel Phase I on the CSR backend against the
    // serial adjacency-list oracle.
    let oracle = compute_similarities(&g).into_sorted();
    let csr_sims = LinkClustering::new()
        .threads(*THREADS.last().expect("non-empty"))
        .similarities(&csr)
        .expect("validated thread count");
    let csr_matches_adjacency = oracle.len() == csr_sims.len()
        && oracle
            .entries()
            .iter()
            .zip(csr_sims.entries())
            .all(|(a, b)| a.pair == b.pair && a.score.to_bits() == b.score.to_bits());

    // Wall clock at every thread count, CSR backend, full pipeline.
    let thread_samples: Vec<ThreadSample> = THREADS
        .iter()
        .map(|&threads| {
            let facade = LinkClustering::new().threads(threads);
            let (_, stats) = time_runs(runs, || facade.run(&csr).expect("validated thread count"));
            ThreadSample { threads, min: stats.min, mean: stats.mean }
        })
        .collect();

    // Ground-truth recovery on the LFR family: cut the dendrogram at
    // its best partition density and score the edge communities.
    let (nmi, pf1) = match &planted {
        Some(p) => {
            let result = LinkClustering::new().run(&csr).expect("serial run");
            let labels = match result.dendrogram().best_density_cut(&csr) {
                Some(cut) => result.output().edge_assignments_at_level(cut.level),
                None => result.edge_assignments(),
            };
            (
                Some(normalized_mutual_information(&p.edge_community, &labels)),
                Some(pair_f1(&p.edge_community, &labels)),
            )
        }
        None => (None, None),
    };

    RungReport {
        spec,
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        csr_memory_bytes: csr.memory_bytes(),
        bin_write: wstats.min,
        bin_read: rstats.min,
        bin_roundtrip_ok,
        csr_matches_adjacency,
        thread_samples,
        nmi,
        pair_f1: pf1,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn f64_or_null(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| format!("{x:.6}"))
}

impl RungReport {
    /// The rung as one JSON object (the element of `"rungs"` in
    /// `BENCH_scale.json`). `speedup` is self-relative: the rung's own
    /// single-thread minimum over the minimum at that thread count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let t1 = self
            .thread_samples
            .iter()
            .find(|s| s.threads == 1)
            .map_or(f64::NAN, |s| s.min.as_secs_f64());
        let threads: Vec<String> = self
            .thread_samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"threads\":{},\"min_ms\":{:.3},\"mean_ms\":{:.3},\"speedup\":{:.4}}}",
                    s.threads,
                    millis(s.min),
                    millis(s.mean),
                    t1 / s.min.as_secs_f64().max(1e-12),
                )
            })
            .collect();
        format!(
            "{{\"family\":\"{}\",\"tier\":{},\"vertices\":{},\"edges\":{},\
              \"csr_memory_bytes\":{},\"peak_rss_bytes\":{},\
              \"bin_write_ms\":{:.3},\"bin_read_ms\":{:.3},\"bin_roundtrip_ok\":{},\
              \"csr_matches_adjacency\":{},\
              \"threads\":[{}],\
              \"nmi\":{},\"pair_f1\":{}}}",
            self.spec.family.name(),
            self.spec.tier,
            self.vertices,
            self.edges,
            self.csr_memory_bytes,
            self.peak_rss_bytes,
            millis(self.bin_write),
            millis(self.bin_read),
            self.bin_roundtrip_ok,
            self.csr_matches_adjacency,
            threads.join(","),
            f64_or_null(self.nmi),
            f64_or_null(self.pair_f1),
        )
    }
}

/// Assembles the full `BENCH_scale.json` document from per-rung JSON
/// objects (already serialized, in rung order).
#[must_use]
pub fn document_json(smoke: bool, runs: usize, rung_objects: &[String]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"smoke\":{smoke},\"runs\":{runs},\
          \"hardware\":{{\"cores\":{cores}}},\
          \"ba_edge_cap\":{BA_EDGE_CAP},\
          \"rungs\":[{}]}}",
        rung_objects.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_ids_round_trip() {
        for spec in rung_specs(false) {
            assert_eq!(RungSpec::parse(&spec.id()), Some(spec));
        }
        assert_eq!(RungSpec::parse("nope:100"), None);
        assert_eq!(RungSpec::parse("gnm:x"), None);
        assert_eq!(RungSpec::parse("gnm"), None);
    }

    #[test]
    fn smoke_grid_is_the_two_smallest_tiers() {
        let smoke = rung_specs(true);
        assert_eq!(smoke.len(), 6); // 3 families × 2 tiers
        assert!(smoke.iter().all(|s| s.tier <= TIERS[1]));
        let full = rung_specs(false);
        // The full ladder reaches 10⁶ edges on gnm and LFR; BA is capped.
        assert!(full.iter().any(|s| s.family == Family::Gnm && s.tier == 1_000_000));
        assert!(full.iter().any(|s| s.family == Family::LfrLike && s.tier == 1_000_000));
        assert!(full.iter().all(|s| s.family != Family::BarabasiAlbert || s.tier <= BA_EDGE_CAP));
    }

    #[test]
    fn workloads_land_near_their_tier() {
        for spec in rung_specs(true) {
            let (g, planted) = build_workload(spec);
            let m = g.edge_count();
            assert!(
                m >= spec.tier / 2 && m <= spec.tier + spec.tier / 2 + 64,
                "{}: {m} edges for tier {}",
                spec.id(),
                spec.tier
            );
            match spec.family {
                Family::LfrLike => {
                    let p = planted.expect("LFR carries ground truth");
                    assert_eq!(p.edge_community.len(), m);
                }
                _ => assert!(planted.is_none()),
            }
        }
    }

    #[test]
    fn smallest_rung_reports_are_complete_and_valid() {
        let report = run_rung(RungSpec { family: Family::LfrLike, tier: 1_000 }, 1);
        assert!(report.bin_roundtrip_ok);
        assert!(report.csr_matches_adjacency);
        assert_eq!(report.thread_samples.len(), THREADS.len());
        let nmi = report.nmi.expect("LFR rungs are scored");
        let f1 = report.pair_f1.expect("LFR rungs are scored");
        assert!((0.0..=1.0).contains(&nmi), "{nmi}");
        assert!((0.0..=1.0).contains(&f1), "{f1}");
        // The JSON document is well-formed enough to contain the rung.
        let doc = document_json(true, 1, &[report.to_json()]);
        assert!(doc.contains("\"schema\":\"linkclust-bench-scale/v1\""));
        assert!(doc.contains("\"family\":\"lfr_like\""));
        assert!(doc.contains("\"nmi\":"));
    }
}
