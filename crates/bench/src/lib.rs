//! Benchmark harness reproducing the evaluation of Yan (ICDCS 2017).
//!
//! * [`alloc`] — a counting global allocator for the memory figures
//!   (Fig. 4(3), Fig. 5(2)); the `repro` binary installs it.
//! * [`timing`] — wall-clock measurement helpers (the paper averages 10
//!   runs; the harness default is configurable).
//! * [`table`] — CSV + aligned-stdout emission of result tables.
//! * [`workloads`] — the α-sweep word-association graphs built from the
//!   synthetic tweet corpus, at three scale presets.
//! * [`figures`] — one runner per figure of the paper; the `repro`
//!   binary dispatches to them.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p linkclust-bench --bin repro -- all
//! ```

pub mod alloc;
pub mod ascii;
pub mod compare;
pub mod figures;
pub mod ladder;
pub mod mapmerge;
pub mod plots;
pub mod serve;
pub mod spawnchunk;
pub mod table;
pub mod telemetry;
pub mod timing;
pub mod workloads;
