//! The historical hierarchical-map-merge Phase I, preserved as the A/B
//! baseline for the owner-sharded accumulator that replaced it in
//! `linkclust-parallel`.
//!
//! This is the paper's literal §VI-A scheme: each thread accumulates its
//! own `HashMap`-backed
//! [`PairAccumulator`](linkclust_core::init::PairAccumulator) over a
//! disjoint vertex
//! range, then the `T` maps are merged pairwise in a hierarchical
//! reduction on the pool. The merge moves every pair entry (and its
//! common-neighbor `Vec`) up to O(log T) times, which is exactly the
//! allocation and memory traffic the sharded path eliminates — keeping
//! the old path alive here lets `bench_smoke` measure that difference
//! instead of asserting it.

use std::sync::Arc;

use linkclust_core::init::{
    accumulate_pairs, entries_into_similarities, finalize_entries, vertex_norms_range, VertexNorms,
};
use linkclust_core::PairSimilarities;
use linkclust_graph::{VertexId, WeightedGraph};
use linkclust_parallel::pool::partition_ranges;
use linkclust_parallel::WorkerPool;

/// Phase I with per-thread pair maps and a hierarchical pairwise merge —
/// the pre-sharding parallel implementation, preserved verbatim.
///
/// Produces the same pairs and common-neighbor lists as
/// [`compute_similarities_parallel`](linkclust_parallel::compute_similarities_parallel);
/// scores agree to within floating-point re-association (the merge adds
/// per-thread *partial sums* where the serial scan — which the sharded
/// path replays exactly — adds individual terms), so A/B runs compare
/// cost, not output.
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn compute_similarities_mapmerge(g: &WeightedGraph, threads: usize) -> PairSimilarities {
    assert!(threads > 0, "need at least one thread");
    let pool = WorkerPool::new(threads);
    let g = Arc::new(g.clone());
    let n = g.vertex_count();

    // Pass 1: per-range vertex norms, concatenated in range order.
    let ranges = partition_ranges(n, threads);
    let mut norms = VertexNorms { h1: Vec::with_capacity(n), h2: Vec::with_capacity(n) };
    {
        let g = Arc::clone(&g);
        let parts = pool.run_on_ranges(ranges.clone(), move |r| vertex_norms_range(&*g, r));
        for part in parts {
            norms.h1.extend(part.h1);
            norms.h2.extend(part.h2);
        }
    }

    // Pass 2: per-thread pair maps over disjoint vertex sets, then the
    // hierarchical pairwise merge this module exists to preserve.
    let maps = {
        let g = Arc::clone(&g);
        pool.run_on_ranges(ranges, move |r| accumulate_pairs(&*g, r.map(VertexId::new)))
    };
    let acc = pool
        .reduce(maps, |mut a, b| {
            a.merge(b);
            a
        })
        .unwrap_or_default();

    // Pass 3: finalize sequentially — pass 3 cost is shared by both
    // paths, and the A/B comparison targets pass 2.
    let index = linkclust_graph::EdgeIndex::for_graph(&*g);
    let mut entries = acc.into_sorted_entries();
    finalize_entries(&index, &norms, &mut entries);
    entries_into_similarities(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_parallel::compute_similarities_parallel;

    #[test]
    fn baseline_matches_serial_and_sharded() {
        let g = gnm(60, 240, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 11);
        let serial = compute_similarities(&g);
        for threads in [1, 2, 4] {
            let base = compute_similarities_mapmerge(&g, threads);
            let sharded = compute_similarities_parallel(&g, threads);
            assert_eq!(base.len(), serial.len());
            let mut se: Vec<_> = serial.entries().to_vec();
            let mut be: Vec<_> = base.entries().to_vec();
            let mut pe: Vec<_> = sharded.entries().to_vec();
            se.sort_by_key(|e| e.pair);
            be.sort_by_key(|e| e.pair);
            pe.sort_by_key(|e| e.pair);
            for ((a, b), c) in se.iter().zip(&be).zip(&pe) {
                assert_eq!(a.pair, b.pair);
                assert_eq!(a.common_neighbors, b.common_neighbors);
                // The baseline merges per-thread partial sums, so its
                // scores carry re-association error; the sharded path
                // replays the serial order exactly.
                assert!((a.score - b.score).abs() <= 1e-12, "baseline vs serial at {}", a.pair);
                assert_eq!(a.score.to_bits(), c.score.to_bits(), "sharded vs serial");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let g = gnm(5, 6, WeightMode::Unit, 0);
        let _ = compute_similarities_mapmerge(&g, 0);
    }
}
