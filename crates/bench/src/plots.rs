//! Gnuplot script emission: turns the harness CSVs into the paper's
//! plots.
//!
//! `repro all` drops one `.gp` script per figure next to the CSVs; with
//! gnuplot installed, `gnuplot results/*.gp` renders PNGs whose axes
//! match the paper's (log scales where the paper uses them).

use std::io;
use std::path::Path;

/// Description of one plot to generate.
struct PlotSpec {
    script: &'static str,
    csv: &'static str,
    title: &'static str,
    xlabel: &'static str,
    ylabel: &'static str,
    logx: bool,
    logy: bool,
    /// `(column_expression, legend)` pairs, 1-based gnuplot columns.
    series: &'static [(&'static str, &'static str)],
}

const PLOTS: &[PlotSpec] = &[
    PlotSpec {
        script: "fig2_1_changes.gp",
        csv: "fig2_1_changes.csv",
        title: "Fig. 2(1): changes on array C",
        xlabel: "Normalized level ID",
        ylabel: "Number of changes on array C",
        logx: false,
        logy: false,
        series: &[("2:3", "changes")],
    },
    PlotSpec {
        script: "fig4_1_stats.gp",
        csv: "fig4_1_stats.csv",
        title: "Fig. 4(1): statistics",
        xlabel: "Fraction",
        ylabel: "Count",
        logx: true,
        logy: true,
        series: &[
            ("1:3", "Nodes"),
            ("1:4", "Edges"),
            ("1:6", "Vertex pairs"),
            ("1:7", "Edge pairs"),
        ],
    },
    PlotSpec {
        script: "fig4_2_time.gp",
        csv: "fig4_2_time.csv",
        title: "Fig. 4(2): execution time",
        xlabel: "Fraction",
        ylabel: "Execution time (sec)",
        logx: true,
        logy: true,
        series: &[("1:3", "Initialization"), ("1:5", "Standard"), ("1:4", "Sweeping")],
    },
    PlotSpec {
        script: "fig4_3_memory.gp",
        csv: "fig4_3_memory.csv",
        title: "Fig. 4(3): peak heap",
        xlabel: "Fraction",
        ylabel: "Peak heap (bytes)",
        logx: true,
        logy: true,
        series: &[("1:3", "Sweeping"), ("1:5", "Standard")],
    },
    PlotSpec {
        script: "fig5_2_coarse.gp",
        csv: "fig5_2_coarse.csv",
        title: "Fig. 5(2): coarse vs fine",
        xlabel: "Fraction",
        ylabel: "Execution time (sec)",
        logx: true,
        logy: true,
        series: &[("1:2", "Coarse-grain, time"), ("1:3", "Sweeping, time")],
    },
    PlotSpec {
        script: "fig6_1_init_speedup.gp",
        csv: "fig6_1_init_speedup.csv",
        title: "Fig. 6(1): initialization speedup",
        xlabel: "Number of threads",
        ylabel: "Speedup",
        logx: false,
        logy: false,
        series: &[("2:4", "speedup")],
    },
    PlotSpec {
        script: "fig6_2_sweep_speedup.gp",
        csv: "fig6_2_sweep_speedup.csv",
        title: "Fig. 6(2): sweeping speedup",
        xlabel: "Number of threads",
        ylabel: "Speedup",
        logx: false,
        logy: false,
        series: &[("2:4", "speedup")],
    },
];

fn render(spec: &PlotSpec) -> String {
    let mut s = String::new();
    s.push_str("set datafile separator ','\n");
    s.push_str("set terminal pngcairo size 800,600\n");
    s.push_str(&format!("set output '{}.png'\n", spec.script.trim_end_matches(".gp")));
    s.push_str(&format!("set title '{}'\n", spec.title));
    s.push_str(&format!("set xlabel '{}'\n", spec.xlabel));
    s.push_str(&format!("set ylabel '{}'\n", spec.ylabel));
    s.push_str("set key outside\n");
    if spec.logx {
        s.push_str("set logscale x\n");
    }
    if spec.logy {
        s.push_str("set logscale y\n");
    }
    let series: Vec<String> = spec
        .series
        .iter()
        .map(|(cols, legend)| {
            format!("'{}' using {} with linespoints title '{}'", spec.csv, cols, legend)
        })
        .collect();
    s.push_str(&format!("plot {}\n", series.join(", \\\n     ")));
    s
}

/// Writes every plot script into `dir` (which must already contain the
/// CSVs, or will after the figure runners execute).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_plot_scripts(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for spec in PLOTS {
        std::fs::write(dir.join(spec.script), render(spec))?;
    }
    Ok(())
}

/// The number of plot scripts [`write_plot_scripts`] generates.
#[must_use]
pub fn plot_count() -> usize {
    PLOTS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_reference_their_csvs() {
        for spec in PLOTS {
            let s = render(spec);
            assert!(s.contains(spec.csv), "{} missing csv", spec.script);
            assert!(s.contains("plot "), "{} missing plot", spec.script);
            assert!(s.contains("pngcairo"));
            if spec.logy {
                assert!(s.contains("set logscale y"));
            }
        }
    }

    #[test]
    fn scripts_written_to_disk() {
        let dir = std::env::temp_dir().join("linkclust_plots_test");
        write_plot_scripts(&dir).unwrap();
        let count = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "gp"))
            .count();
        assert_eq!(count, plot_count());
        let _ = std::fs::remove_dir_all(dir);
    }
}
