//! Load generator for the `linkclustd` query server.
//!
//! Drives a mixed stream of queries through a real TCP socket against a
//! running daemon, measuring client-observed latency per query kind
//! (log-bucketed histograms, p50/p90/p99), the server's answer-cache
//! hit rate, and — the interesting part — whether light queries keep
//! flowing while a batch admission (full recluster) is in flight: at
//! the halfway mark the generator enqueues a recluster and counts the
//! queries answered by the *old* index generation before the swap
//! lands.
//!
//! The query mix is deterministic in the seed: roughly 35% cut, 20%
//! edge membership, 15% vertex membership, 15% top-k, 10% profile, 5%
//! best-cut, with thresholds drawn from a small palette (64 values) so
//! the answer cache sees realistic re-use.
//!
//! The `bench_serve` binary spawns the daemon, runs [`run_load`], and
//! emits `BENCH_serve.json` (schema [`SCHEMA`], validated by
//! `cargo xtask benchcheck`).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Instant;

use linkclust_core::telemetry::LogHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Identifier of the emitted document layout; bump on breaking change.
pub const SCHEMA: &str = "linkclust-bench-serve/v1";

/// The query kinds the load mix spans, with their stable JSON names.
pub const KINDS: [&str; 6] = ["cut", "edge", "vertex", "topk", "profile", "best"];

/// Cumulative per-mille thresholds of the mix (cut 35%, edge 20%,
/// vertex 15%, topk 15%, profile 10%, best 5%).
const MIX_CUMULATIVE: [u32; 6] = [350, 550, 700, 850, 950, 1000];

/// Distinct threshold values the generator draws from — small enough
/// that the answer cache sees re-use, large enough to exercise many cut
/// levels.
pub const THETA_PALETTE: usize = 64;

/// Client-observed summary for one query kind.
#[derive(Clone, Debug, Default)]
pub struct KindStats {
    /// Queries of this kind issued.
    pub count: u64,
    /// Log-bucketed latency histogram (nanoseconds).
    pub hist: LogHistogram,
}

/// Everything one load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Total queries issued (excluding the stats/recluster/shutdown
    /// control messages).
    pub queries: u64,
    /// Per-kind latency stats, indexed like [`KINDS`].
    pub per_kind: Vec<KindStats>,
    /// Server-side cache hits at the end of the run.
    pub cache_hits: u64,
    /// Server-side cache misses at the end of the run.
    pub cache_misses: u64,
    /// Index generation before the mid-run recluster.
    pub generation_before: u64,
    /// Index generation when the run finished.
    pub generation_after: u64,
    /// Queries answered *by the old generation* after the recluster was
    /// enqueued — direct evidence the admission did not stall serving.
    pub queries_during_admission: u64,
    /// `true` if the swap completed before the run ended.
    pub swap_completed: bool,
}

/// A line-delimited JSON client over one TCP connection.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    response: String,
}

impl ServeClient {
    /// Connects to a listening daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient { reader, writer: BufWriter::new(stream), response: String::new() })
    }

    /// Sends one request line and reads the one response line.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; an empty response (server closed the
    /// connection) is an error.
    pub fn ask(&mut self, line: &str) -> std::io::Result<&str> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.response.clear();
        if self.reader.read_line(&mut self.response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(self.response.trim_end())
    }
}

/// Pulls an integer field out of a flat JSON response without a full
/// parser: `"name":<digits>`.
#[must_use]
pub fn int_field(response: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let at = response.find(&needle)? + needle.len();
    let digits: String = response[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Picks the query kind index for one draw from the mix.
fn pick_kind(rng: &mut SmallRng) -> usize {
    let roll = rng.gen_range(0..1000u32);
    MIX_CUMULATIVE.iter().position(|&c| roll < c).unwrap_or(5)
}

/// Renders one request line for kind `kind`.
fn render_request(kind: usize, rng: &mut SmallRng, vertices: usize, edges: usize) -> String {
    let theta = f64::from(rng.gen_range(0..THETA_PALETTE as u32)) / THETA_PALETTE as f64;
    match kind {
        0 => format!("{{\"op\":\"cut\",\"theta\":{theta}}}"),
        1 => format!("{{\"op\":\"edge\",\"id\":{},\"theta\":{theta}}}", rng.gen_range(0..edges)),
        2 => {
            format!("{{\"op\":\"vertex\",\"id\":{},\"theta\":{theta}}}", rng.gen_range(0..vertices))
        }
        3 => format!("{{\"op\":\"topk\",\"theta\":{theta},\"k\":{}}}", rng.gen_range(1..16u32)),
        4 => "{\"op\":\"profile\"}".to_string(),
        _ => "{\"op\":\"best\"}".to_string(),
    }
}

/// Runs `queries` mixed queries against the daemon at `addr`, enqueuing
/// one recluster at the halfway mark.
///
/// # Errors
///
/// Propagates socket failures; a query answered with `"ok":false` is
/// reported as [`std::io::ErrorKind::InvalidData`] (the generator only
/// issues well-formed in-range requests).
///
/// # Panics
///
/// Panics if `vertices` or `edges` is zero — the request generator
/// cannot draw ids from an empty graph.
pub fn run_load(
    addr: &str,
    queries: u64,
    vertices: usize,
    edges: usize,
    seed: u64,
) -> std::io::Result<LoadReport> {
    assert!(vertices > 0 && edges > 0, "load needs a non-empty graph");
    let mut client = ServeClient::connect(addr)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut per_kind = vec![KindStats::default(); KINDS.len()];

    let generation_before = {
        let response = client.ask("{\"op\":\"best\"}")?;
        int_field(response, "generation").unwrap_or(0)
    };
    let mut queries_during_admission = 0u64;
    let mut generation_seen = generation_before;
    let halfway = queries / 2;

    for i in 0..queries {
        if i == halfway {
            let response = client.ask("{\"op\":\"recluster\"}")?;
            if !response.contains("\"enqueued\":true") {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("recluster rejected: {response}"),
                ));
            }
        }
        let kind = pick_kind(&mut rng);
        let request = render_request(kind, &mut rng, vertices, edges);
        let start = Instant::now();
        let response = client.ask(&request)?;
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if !response.contains("\"ok\":true") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("query failed: {request} -> {response}"),
            ));
        }
        let generation = int_field(response, "generation").unwrap_or(generation_seen);
        if i >= halfway && generation == generation_before {
            queries_during_admission += 1;
        }
        generation_seen = generation_seen.max(generation);
        per_kind[kind].count += 1;
        per_kind[kind].hist.record(nanos);
    }

    // Give a straggling admission a moment to land so the document can
    // report an observed swap even on short smoke runs.
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while generation_seen == generation_before && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
        let response = client.ask("{\"op\":\"best\"}")?;
        generation_seen =
            generation_seen.max(int_field(response, "generation").unwrap_or(generation_seen));
    }

    let stats = client.ask("{\"op\":\"stats\"}")?;
    let cache_hits = int_field(stats, "hits").unwrap_or(0);
    let cache_misses = int_field(stats, "misses").unwrap_or(0);

    Ok(LoadReport {
        queries,
        per_kind,
        cache_hits,
        cache_misses,
        generation_before,
        generation_after: generation_seen,
        queries_during_admission,
        swap_completed: generation_seen > generation_before,
    })
}

impl LoadReport {
    /// The full `BENCH_serve.json` document.
    #[must_use]
    pub fn to_json(&self, smoke: bool, vertices: usize, edges: usize) -> String {
        let kinds: Vec<String> = KINDS
            .iter()
            .zip(&self.per_kind)
            .map(|(name, stats)| {
                format!(
                    "{{\"kind\":\"{name}\",\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\
                      \"p99_ns\":{},\"mean_ns\":{:.1}}}",
                    stats.count,
                    stats.hist.quantile(0.50),
                    stats.hist.quantile(0.90),
                    stats.hist.quantile(0.99),
                    stats.hist.mean(),
                )
            })
            .collect();
        let total = self.cache_hits + self.cache_misses;
        let hit_rate = if total == 0 { 0.0 } else { self.cache_hits as f64 / total as f64 };
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"smoke\":{smoke},\"queries\":{},\
              \"graph\":{{\"vertices\":{vertices},\"edges\":{edges}}},\
              \"kinds\":[{}],\
              \"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{hit_rate:.6}}},\
              \"admission\":{{\"reclusters\":1,\"swap_completed\":{},\
              \"queries_during_admission\":{},\
              \"generation_before\":{},\"generation_after\":{}}}}}",
            self.queries,
            kinds.join(","),
            self.cache_hits,
            self.cache_misses,
            self.swap_completed,
            self.queries_during_admission,
            self.generation_before,
            self.generation_after,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_covers_every_kind_in_proportion() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u64; 6];
        for _ in 0..100_000 {
            counts[pick_kind(&mut rng)] += 1;
        }
        // cut is the plurality, best the rarest, nothing is starved.
        assert!(counts.iter().all(|&c| c > 1_000), "{counts:?}");
        assert!(counts[0] > counts[5], "{counts:?}");
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 100_000);
        assert!((counts[0] as f64 / total as f64 - 0.35).abs() < 0.02, "{counts:?}");
    }

    #[test]
    fn requests_are_well_formed_for_every_kind() {
        let mut rng = SmallRng::seed_from_u64(3);
        for (kind, name) in KINDS.iter().enumerate() {
            let line = render_request(kind, &mut rng, 50, 120);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(&format!("\"op\":\"{name}\"")), "{line}");
        }
    }

    #[test]
    fn int_field_extracts_flat_fields() {
        let r = r#"{"ok":true,"generation":7,"level":123,"clusters":4}"#;
        assert_eq!(int_field(r, "generation"), Some(7));
        assert_eq!(int_field(r, "clusters"), Some(4));
        assert_eq!(int_field(r, "absent"), None);
    }

    #[test]
    fn document_shape_is_stable() {
        let report = LoadReport {
            queries: 10,
            per_kind: vec![KindStats::default(); 6],
            cache_hits: 3,
            cache_misses: 7,
            generation_before: 1,
            generation_after: 2,
            queries_during_admission: 4,
            swap_completed: true,
        };
        let doc = report.to_json(true, 40, 120);
        assert!(doc.contains("\"schema\":\"linkclust-bench-serve/v1\""));
        assert!(doc.contains("\"kind\":\"cut\""));
        assert!(doc.contains("\"p99_ns\":"));
        assert!(doc.contains("\"hit_rate\":0.3"));
        assert!(doc.contains("\"swap_completed\":true"));
        assert!(doc.contains("\"queries_during_admission\":4"));
    }
}
