//! The spawn-per-chunk baseline the pool bench compares against.
//!
//! [`SpawnPerChunkProcessor`] preserves the pre-pool implementation of
//! the parallel chunk pipeline: every chunk spawns fresh scoped OS
//! threads (one per entry range, plus one per pairwise combination), and
//! every thread clones the full `ClusterArray` — `T + 1` O(|E|)
//! allocations per chunk. It produces exactly the same partitions as
//! [`ParallelChunkProcessor`](linkclust_parallel::ParallelChunkProcessor);
//! only the execution strategy differs, which is what the chunk
//! throughput comparison in `bench_smoke` and `pool_bench` isolates.

use std::sync::Arc;

use linkclust_core::cluster_array::{partition_diff, MergeOutcome};
use linkclust_core::coarse::{ChunkProcessor, SerialChunkProcessor};
use linkclust_core::{ClusterArray, SimilarityEntry};
use linkclust_graph::EdgeIndex;
use linkclust_parallel::merge::merge_cluster_arrays;
use linkclust_parallel::pool::{balanced_partition_by_weight, join_propagating};

/// A [`ChunkProcessor`] that spawns scoped threads and clones the
/// cluster array anew for every chunk (the historical implementation).
#[derive(Clone, Debug)]
pub struct SpawnPerChunkProcessor {
    threads: usize,
    min_entries_per_thread: usize,
}

impl SpawnPerChunkProcessor {
    /// Creates the baseline with `threads` scoped threads per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        SpawnPerChunkProcessor { threads, min_entries_per_thread: 8 }
    }

    /// Serial-fallback threshold, mirroring the pooled processor.
    #[must_use]
    pub fn min_entries_per_thread(mut self, n: usize) -> Self {
        self.min_entries_per_thread = n.max(1);
        self
    }
}

/// Hierarchical pairwise reduction with fresh scoped threads per round —
/// the shape the parallel crate used before the persistent pool.
fn scoped_reduce<T: Send>(mut items: Vec<T>, combine: impl Fn(T, T) -> T + Sync) -> Option<T> {
    while items.len() > 3 {
        let carry = if items.len() % 2 == 1 { items.pop() } else { None };
        let mut pairs = Vec::with_capacity(items.len() / 2);
        let mut it = items.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            pairs.push((a, b));
        }
        let mut merged: Vec<T> = std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| {
                    let combine = &combine;
                    s.spawn(move || combine(a, b))
                })
                .collect();
            handles.into_iter().map(|h| join_propagating(h.join())).collect()
        });
        merged.extend(carry);
        items = merged;
    }
    let mut it = items.into_iter();
    let first = it.next()?;
    Some(it.fold(first, combine))
}

impl ChunkProcessor for SpawnPerChunkProcessor {
    fn process_entries(
        &mut self,
        index: &Arc<EdgeIndex>,
        slot_of_edge: &[u32],
        entries: &[SimilarityEntry],
        c: &mut ClusterArray,
    ) -> Vec<MergeOutcome> {
        if self.threads == 1 || entries.len() < self.threads * self.min_entries_per_thread {
            return SerialChunkProcessor.process_entries(index, slot_of_edge, entries, c);
        }
        let base = c.clone();
        let weights: Vec<u64> = entries.iter().map(|e| e.pair_count() as u64).collect();
        let ranges = balanced_partition_by_weight(&weights, self.threads);

        // Step 1: one fresh scoped thread and one full array clone per
        // entry range.
        let copies: Vec<ClusterArray> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    let base = &base;
                    s.spawn(move || {
                        let mut local = base.clone();
                        SerialChunkProcessor.process_entries(
                            index,
                            slot_of_edge,
                            &entries[r],
                            &mut local,
                        );
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| join_propagating(h.join())).collect()
        });

        // Step 2: hierarchical combination, again with fresh threads.
        let merged = scoped_reduce(copies, |mut a, b| {
            merge_cluster_arrays(&mut a, &b);
            a
        })
        .unwrap_or_else(|| base.clone());

        let outcomes = partition_diff(&base, &merged);
        *c = merged;
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::coarse::{coarse_sweep, coarse_sweep_with, CoarseConfig};
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};

    #[test]
    fn baseline_matches_serial_coarse_trajectory() {
        let g = gnm(45, 190, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let serial = coarse_sweep(&g, &sims, cfg);
        for threads in [2usize, 4] {
            let mut proc = SpawnPerChunkProcessor::new(threads).min_entries_per_thread(1);
            let par = coarse_sweep_with(&g, &sims, cfg, &mut proc);
            assert_eq!(serial.levels(), par.levels(), "threads {threads}");
        }
    }
}
