//! Result tables: aligned stdout rendering plus CSV files.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple result table with a title, column headers, and string rows.
///
/// # Examples
///
/// ```
/// use linkclust_bench::table::Table;
///
/// let mut t = Table::new("demo", &["alpha", "edges"]);
/// t.row(vec!["0.001".into(), "1628578".into()]);
/// let text = t.render();
/// assert!(text.contains("alpha"));
/// assert!(text.contains("1628578"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in table {}", self.title);
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ =
            writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serializes the table as CSV (headers + rows; cells containing
    /// commas or quotes are quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let _ = writeln!(out, "{}", self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Prints the aligned form to stdout and writes the CSV next to it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the CSV write.
    pub fn emit(&self, csv_path: &Path) -> io::Result<()> {
        print!("{}", self.render());
        self.write_csv(csv_path)?;
        println!("-> wrote {}\n", csv_path.display());
        Ok(())
    }
}

/// Formats a float with `digits` significant decimals, trimming noise.
#[must_use]
pub fn fmt_f64(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        t.row(vec!["22".into(), "q\"z".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== t =="));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("linkclust_table_test");
        let path = dir.join("out.csv");
        sample().write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, sample().to_csv());
        let _ = std::fs::remove_dir_all(dir);
    }
}
