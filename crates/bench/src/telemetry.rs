//! Bench-side telemetry sink: a [`Recorder`] that logs every event in
//! arrival order (and can dump them as CSV), demonstrating how a harness
//! plugs its own sink into the clustering facade instead of the built-in
//! [`RunReport`](linkclust_core::telemetry::RunReport) aggregation.

use std::sync::Mutex;

use linkclust_core::telemetry::{Counter, Gauge, Phase, Recorder};

/// One telemetry event, in arrival order. This is the core crate's
/// [`TelemetryEvent`](linkclust_core::telemetry::TelemetryEvent) — the
/// bench harness used to carry its own duplicate enum; the two are now
/// unified so a logged event can be replayed into any core aggregate.
pub use linkclust_core::telemetry::TelemetryEvent as Event;

/// A [`Recorder`] that appends every event to an in-memory log. Used by
/// the harness to trace phase-by-phase behavior of a single run; the
/// log can be rendered as CSV for offline analysis.
#[derive(Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events recorded so far.
    ///
    /// The log recovers from a poisoned mutex (a panicking worker must
    /// not take the measurement log down with it), so this never panics.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Total nanoseconds recorded for `phase`.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::Phase(p, nanos) if *p == phase => Some(*nanos),
                _ => None,
            })
            .sum()
    }

    /// Renders the log as `kind,name,value` CSV lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for e in self.events() {
            let line = match e {
                Event::Phase(p, nanos) => format!("phase,{p:?},{nanos}\n"),
                Event::Counter(c, v) => format!("counter,{c:?},{v}\n"),
                Event::Gauge(g, v) => format!("gauge,{g:?},{v}\n"),
                Event::ThreadItems(t, v) => format!("thread_items,{t},{v}\n"),
            };
            out.push_str(&line);
        }
        out
    }

    fn push(&self, event: Event) {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(event);
    }
}

impl Recorder for EventLog {
    fn record_phase(&self, phase: Phase, nanos: u64) {
        self.push(Event::Phase(phase, nanos));
    }

    fn add(&self, counter: Counter, value: u64) {
        self.push(Event::Counter(counter, value));
    }

    fn observe(&self, gauge: Gauge, value: f64) {
        self.push(Event::Gauge(gauge, value));
    }

    fn thread_items(&self, thread: usize, items: u64) {
        self.push(Event::ThreadItems(thread, items));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_parallel::LinkClustering;

    #[test]
    fn event_log_receives_facade_events() {
        let g = gnm(40, 160, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
        let log = Arc::new(EventLog::new());
        let r = LinkClustering::new().recorder(log.clone()).run(&g).unwrap();
        assert!(r.report().is_none(), "custom sink replaces the built-in report");
        let events = log.events();
        assert!(events.iter().any(|e| matches!(e, Event::Phase(Phase::Sweep, _))));
        let merges: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter(Counter::MergesApplied, v) => Some(*v),
                _ => None,
            })
            .sum();
        assert_eq!(merges, r.dendrogram().merge_count());
        let csv = log.to_csv();
        assert!(csv.starts_with("kind,name,value\n"));
        assert!(csv.contains("counter,MergesApplied,"));
    }
}
