//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Times one invocation of `f`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Statistics over repeated timed runs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimingStats {
    /// Number of runs.
    pub runs: usize,
    /// Mean duration.
    pub mean: Duration,
    /// Smallest observed duration.
    pub min: Duration,
    /// Largest observed duration.
    pub max: Duration,
}

impl TimingStats {
    /// Mean duration in (fractional) seconds.
    #[must_use]
    pub fn mean_secs(&self) -> f64 {
        self.mean.as_secs_f64()
    }
}

/// Runs `f` `runs` times (the paper averages 10 runs per setting) and
/// summarizes the wall-clock times. The result of the last run is
/// returned alongside the statistics.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn time_runs<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, TimingStats) {
    assert!(runs > 0, "need at least one run");
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        let (out, d) = time(&mut f);
        total += d;
        min = min.min(d);
        max = max.max(d);
        last = Some(out);
    }
    (last.expect("runs > 0"), TimingStats { runs, mean: total / runs as u32, min, max })
}

/// Formats a duration with adaptive precision (µs/ms/s).
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn time_runs_aggregates() {
        let mut count = 0;
        let (v, stats) = time_runs(5, || {
            count += 1;
            count
        });
        assert_eq!(v, 5);
        assert_eq!(stats.runs, 5);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_micros(50)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with('s'));
    }
}
