//! The α-sweep word-association workloads of §VII.
//!
//! The paper constructs word association networks from a month of tweets,
//! controlling graph size with the fraction α of most-frequent candidate
//! words, α ∈ {0.0001, 0.0005, 0.001, 0.005, 0.01}. Its candidate pool
//! has millions of words, so α translates to hundreds-to-tens-of-thousands
//! of vertices (3,132 at α = 0.001), with density *decreasing* in α
//! (1.0 → 0.136): frequent words co-occur pervasively, rare words only
//! within topics.
//!
//! Here the same sweep is realized against the synthetic corpus
//! ([`linkclust_corpus::synth`]): each α keeps the top `α × POOL` words,
//! where `POOL` is the scale preset's notional candidate-pool size. The
//! shape-relevant properties (near-complete graphs at small α, density
//! decay, K₂ ≫ |E|) carry over; absolute sizes are laptop-scale.

use linkclust_corpus::assoc::AssocNetworkBuilder;
use linkclust_corpus::synth::{SynthCorpus, SynthCorpusConfig};
use linkclust_graph::WeightedGraph;

/// The α values of the paper's sweep.
pub const ALPHAS: [f64; 5] = [0.0001, 0.0005, 0.001, 0.005, 0.01];

/// The paper's initial coarse chunk sizes δ₀ per α (§VII-B); the harness
/// scales them by the K₂ ratio of the scaled workload.
pub const PAPER_DELTA0: [u64; 5] = [100, 500, 1000, 5000, 10000];

/// Workload scale presets.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scale {
    /// Quick smoke-test scale (seconds).
    Small,
    /// Default scale (a few minutes for the full figure set).
    #[default]
    Medium,
    /// The largest laptop-scale preset.
    Full,
}

impl Scale {
    /// Parses `small` / `medium` / `full`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The corpus generator configuration for this scale.
    #[must_use]
    pub fn corpus_config(self) -> SynthCorpusConfig {
        match self {
            Scale::Small => SynthCorpusConfig {
                documents: 6_000,
                vocabulary: 1_500,
                topics: 12,
                seed: 2017,
                ..Default::default()
            },
            Scale::Medium => SynthCorpusConfig {
                documents: 25_000,
                vocabulary: 4_000,
                topics: 20,
                seed: 2017,
                ..Default::default()
            },
            Scale::Full => SynthCorpusConfig {
                documents: 70_000,
                vocabulary: 9_000,
                topics: 30,
                seed: 2017,
                ..Default::default()
            },
        }
    }

    /// The notional candidate-pool size: α × pool = words kept.
    #[must_use]
    pub fn candidate_pool(self) -> f64 {
        match self {
            Scale::Small => 40_000.0,
            Scale::Medium => 120_000.0,
            Scale::Full => 300_000.0,
        }
    }

    /// Number of words kept for a given α at this scale.
    #[must_use]
    pub fn words_for_alpha(self, alpha: f64) -> usize {
        ((alpha * self.candidate_pool()).round() as usize).max(3)
    }

    /// Maximum edge count for which the O(|E|²) standard baseline is
    /// attempted (the similarity matrix is `8·|E|²` bytes; the paper hit
    /// the same wall at α > 0.001 on a 64 GB machine).
    #[must_use]
    pub fn nbm_edge_cap(self) -> usize {
        match self {
            Scale::Small => 4_000,
            Scale::Medium => 9_000,
            Scale::Full => 15_000,
        }
    }

    /// Number of timed repetitions per measurement (the paper uses 10).
    #[must_use]
    pub fn timing_runs(self) -> usize {
        match self {
            Scale::Small => 2,
            Scale::Medium => 3,
            Scale::Full => 5,
        }
    }
}

/// A generated workload: the corpus plus per-α graphs, built lazily.
pub struct Workload {
    scale: Scale,
    corpus: SynthCorpus,
}

impl Workload {
    /// Generates the corpus for `scale` (deterministic).
    #[must_use]
    pub fn generate(scale: Scale) -> Self {
        Workload { scale, corpus: SynthCorpus::generate(&scale.corpus_config()) }
    }

    /// The scale preset.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The underlying synthetic corpus.
    #[must_use]
    pub fn corpus(&self) -> &SynthCorpus {
        &self.corpus
    }

    /// Builds the word-association graph for `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if the corpus unexpectedly yields no candidate words.
    #[must_use]
    pub fn graph_for_alpha(&self, alpha: f64) -> WeightedGraph {
        let n = self.scale.words_for_alpha(alpha);
        AssocNetworkBuilder::new()
            .top_words(n)
            .min_document_count(2)
            .build(self.corpus.documents())
            .expect("synthetic corpus always yields candidate words")
            .into_graph()
    }

    /// Builds graphs for every α of the paper's sweep.
    #[must_use]
    pub fn alpha_graphs(&self) -> Vec<(f64, WeightedGraph)> {
        ALPHAS.iter().map(|&a| (a, self.graph_for_alpha(a))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_graph::stats::GraphStats;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn words_scale_with_alpha() {
        let s = Scale::Medium;
        let counts: Vec<usize> = ALPHAS.iter().map(|&a| s.words_for_alpha(a)).collect();
        for w in counts.windows(2) {
            assert!(w[0] < w[1], "word counts must increase with alpha: {counts:?}");
        }
    }

    #[test]
    fn density_decreases_with_alpha() {
        // The property the paper's Fig. 4(1) hinges on: small-α graphs
        // are near-complete, larger ones sparser.
        let w = Workload::generate(Scale::Small);
        let mut densities = Vec::new();
        for &alpha in &[0.0001, 0.001, 0.01] {
            let g = w.graph_for_alpha(alpha);
            assert!(g.edge_count() > 0, "alpha {alpha} produced an edgeless graph");
            densities.push(g.density());
        }
        assert!(densities[0] > 0.8, "tiny-alpha graph should be near-complete: {densities:?}");
        assert!(densities[2] < densities[0], "density must fall as alpha grows: {densities:?}");
    }

    #[test]
    fn k2_dominates_edges() {
        // Fig. 4(1): K2 exceeds |E| by orders of magnitude on the larger
        // graphs.
        let w = Workload::generate(Scale::Small);
        let g = w.graph_for_alpha(0.01);
        let s = GraphStats::compute(&g);
        assert!(
            s.incident_edge_pairs > 5 * s.edges as u64,
            "K2 ({}) should dominate |E| ({})",
            s.incident_edge_pairs,
            s.edges
        );
        assert!(s.invariant_holds());
    }

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::generate(Scale::Small).graph_for_alpha(0.001);
        let b = Workload::generate(Scale::Small).graph_for_alpha(0.001);
        assert_eq!(a, b);
    }
}
