//! Baseline single-linkage clusterers the paper compares against.
//!
//! * [`nbm`] — the "standard algorithm" of §VII-A: generic single-linkage
//!   hierarchical clustering over the edge set using a next-best-merge
//!   array (Manning, Raghavan & Schütze, *IIR* Fig. 17.10; equivalent in
//!   complexity to SLINK). O(|E|²) time **and space** — the quadratic
//!   similarity matrix is exactly the memory blow-up of Fig. 4(3).
//! * [`mst`] — single-linkage via maximum spanning tree (Gower & Ross,
//!   1969; paper reference 9): expand all K₂ incident edge pairs, sort, and
//!   run Kruskal. O(K₂ log K₂) time, O(K₂) space — an intermediate
//!   point between the standard algorithm and the paper's sweep.

pub mod mst;
pub mod nbm;

pub use mst::MstClustering;
pub use nbm::NbmClustering;
