//! Single-linkage link clustering via maximum spanning tree (Gower &
//! Ross, 1969 — the paper's reference 9).
//!
//! Single-linkage hierarchical clustering is equivalent to processing the
//! pairwise similarities in non-increasing order and union-ing — i.e.
//! Kruskal's algorithm on the similarity graph. For link clustering the
//! similarity graph has one node per edge of `G` and one arc per incident
//! edge pair, so this costs O(K₂ log K₂) time and O(K₂) space: cheaper
//! than the O(|E|²) matrix baseline, but it must *expand* all K₂ pairs,
//! unlike the sweep which sorts only the K₁ vertex-pair entries.

use linkclust_graph::{EdgeIndex, GraphView};

use crate::dendrogram::{Dendrogram, MergeRecord};
use crate::similarity::PairSimilarities;
use crate::unionfind::UnionFind;

/// Configuration for the MST-based single-linkage baseline.
///
/// # Examples
///
/// ```
/// use linkclust_graph::GraphBuilder;
/// use linkclust_core::init::compute_similarities;
/// use linkclust_core::baseline::MstClustering;
///
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?.build();
/// let sims = compute_similarities(&g);
/// let d = MstClustering::new().run(&g, &sims);
/// assert_eq!(d.final_cluster_count(), 1);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MstClustering {
    min_similarity: Option<f64>,
}

impl MstClustering {
    /// Creates the baseline (no threshold: all incident pairs processed).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stops once pair similarities drop below `theta`.
    #[must_use]
    pub fn min_similarity(mut self, theta: f64) -> Self {
        self.min_similarity = Some(theta);
        self
    }

    /// Runs Kruskal over the expanded incident-pair list.
    ///
    /// # Panics
    ///
    /// Panics if `sims` lists a common neighbor that has no edge to both
    /// endpoints in `g`, i.e. if the similarities were computed over a
    /// different graph.
    #[must_use]
    pub fn run<G: GraphView + ?Sized>(&self, g: &G, sims: &PairSimilarities) -> Dendrogram {
        let n = g.edge_count();
        let index = EdgeIndex::for_graph(g);
        // Expand every (vertex pair, common neighbor) into an edge pair.
        let mut arcs: Vec<(f64, u32, u32)> =
            Vec::with_capacity(sims.incident_pair_count() as usize);
        for entry in sims.entries() {
            let (vi, vj) = (entry.pair.first(), entry.pair.second());
            for &vk in &entry.common_neighbors {
                let e1 = index.edge_between(vi, vk).expect("common neighbor implies edge");
                let e2 = index.edge_between(vj, vk).expect("common neighbor implies edge");
                arcs.push((entry.score, e1.index() as u32, e2.index() as u32));
            }
        }
        arcs.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));

        let mut uf = UnionFind::new(n);
        let mut merges = Vec::new();
        let mut level = 0u32;
        for (s, e1, e2) in arcs {
            if let Some(theta) = self.min_similarity {
                if s < theta {
                    break;
                }
            }
            let (c1, c2) = (uf.min_of(e1 as usize), uf.min_of(e2 as usize));
            if c1 != c2 {
                level += 1;
                merges.push(MergeRecord { level, left: c1, right: c2, into: c1.min(c2) });
                uf.union(e1 as usize, e2 as usize);
            }
        }
        Dendrogram::from_merges(n, merges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::NbmClustering;
    use crate::init::compute_similarities;
    use crate::reference::{canonical_labels, single_linkage_at_threshold};
    use crate::sweep::{sweep, SweepConfig};
    use linkclust_graph::generate::{gnm, WeightMode};

    fn canon(labels: &[u32]) -> Vec<usize> {
        canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
    }

    #[test]
    fn matches_sweep_final_partition() {
        for seed in 0..5 {
            let g = gnm(15, 35, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = compute_similarities(&g);
            let mst = MstClustering::new().run(&g, &sims);
            let sw = sweep(&g, &sims.clone().into_sorted(), SweepConfig::default());
            assert_eq!(canon(&mst.final_assignments()), canon(&sw.edge_assignments()));
        }
    }

    #[test]
    fn matches_nbm_threshold_partitions() {
        for seed in 0..3 {
            let g = gnm(12, 24, WeightMode::Uniform { lo: 0.3, hi: 1.5 }, seed);
            let sims = compute_similarities(&g);
            for theta in [0.3, 0.6] {
                let mst = MstClustering::new().min_similarity(theta).run(&g, &sims);
                let nbm = NbmClustering::new().min_similarity(theta).run(&g, &sims);
                assert_eq!(
                    canon(&mst.final_assignments()),
                    canon(&nbm.final_assignments()),
                    "seed {seed} theta {theta}"
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_thresholds() {
        let g = gnm(10, 22, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 8);
        let sims = compute_similarities(&g);
        for theta in [0.2, 0.5, 0.8] {
            let d = MstClustering::new().min_similarity(theta).run(&g, &sims);
            let expected = canonical_labels(&single_linkage_at_threshold(&g, theta));
            assert_eq!(canon(&d.final_assignments()), expected, "theta {theta}");
        }
    }

    #[test]
    fn merge_levels_are_sequential() {
        let g = gnm(14, 30, WeightMode::Unit, 4);
        let sims = compute_similarities(&g);
        let d = MstClustering::new().run(&g, &sims);
        for (i, m) in d.merges().iter().enumerate() {
            assert_eq!(m.level as usize, i + 1);
        }
    }
}
