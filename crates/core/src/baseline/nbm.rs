//! The standard O(n²) single-linkage clusterer (next-best-merge array).
//!
//! This is the comparison baseline of §VII-A: edges are generic data
//! points, the full n×n similarity matrix is materialized (n = |E|), and
//! clustering proceeds by n−1 best-merge steps, each maintained in O(n)
//! through the next-best-merge (NBM) array. Optimally efficient for the
//! *generic* single-linkage problem (Sibson's SLINK bound), but both time
//! and space are quadratic in the number of edges — the paper could not
//! run it past α = 0.001 on a 64 GB machine.

use linkclust_graph::{EdgeIndex, GraphView};

use crate::dendrogram::{Dendrogram, MergeRecord};
use crate::similarity::PairSimilarities;
use crate::unionfind::UnionFind;

/// Configuration for the standard single-linkage baseline.
///
/// # Examples
///
/// ```
/// use linkclust_graph::GraphBuilder;
/// use linkclust_core::init::compute_similarities;
/// use linkclust_core::baseline::NbmClustering;
///
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?.build();
/// let sims = compute_similarities(&g);
/// let d = NbmClustering::new().run(&g, &sims);
/// assert_eq!(d.merge_count(), 1);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NbmClustering {
    min_similarity: f64,
}

impl Default for NbmClustering {
    fn default() -> Self {
        // Merging at similarity 0 would join non-incident edges, which
        // the sweep never does; stop strictly above zero by default.
        NbmClustering { min_similarity: f64::MIN_POSITIVE }
    }
}

impl NbmClustering {
    /// Creates the baseline with the default stop threshold (merges only
    /// strictly positive similarities, matching the sweep's final
    /// partition).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stops merging when the best available similarity drops below
    /// `theta`.
    #[must_use]
    pub fn min_similarity(mut self, theta: f64) -> Self {
        self.min_similarity = theta;
        self
    }

    /// Runs the O(|E|²) clustering. `sims` may be sorted or not (the
    /// matrix is filled either way).
    ///
    /// # Panics
    ///
    /// Panics if `sims` references vertices without a connecting edge in
    /// `g`.
    #[must_use]
    pub fn run<G: GraphView + ?Sized>(&self, g: &G, sims: &PairSimilarities) -> Dendrogram {
        let n = g.edge_count();
        if n == 0 {
            return Dendrogram::from_merges(0, Vec::new());
        }
        let index = EdgeIndex::for_graph(g);
        // The quadratic similarity matrix — deliberately materialized in
        // full; its footprint is the subject of Fig. 4(3).
        let mut sim = vec![0.0f64; n * n];
        for entry in sims.entries() {
            let (vi, vj) = (entry.pair.first(), entry.pair.second());
            for &vk in &entry.common_neighbors {
                let e1 = index.edge_between(vi, vk).expect("common neighbor implies edge").index();
                let e2 = index.edge_between(vj, vk).expect("common neighbor implies edge").index();
                sim[e1 * n + e2] = entry.score;
                sim[e2 * n + e1] = entry.score;
            }
        }

        let mut active = vec![true; n];
        // nbm[i] = (best similarity from i to any other active cluster,
        //           that cluster's index)
        let mut nbm: Vec<(f64, usize)> = (0..n).map(|i| best_of_row(&sim, n, i, &active)).collect();
        let mut uf = UnionFind::new(n);
        let mut merges = Vec::new();

        for level in 1..n as u32 {
            // Find the globally best merge via the NBM array.
            let mut best = (f64::NEG_INFINITY, usize::MAX);
            for i in 0..n {
                if active[i] && nbm[i].0 > best.0 {
                    best = (nbm[i].0, i);
                }
            }
            let (s, i1) = best;
            if s < self.min_similarity || i1 == usize::MAX {
                break;
            }
            let i2 = nbm[i1].1;
            debug_assert!(active[i2]);

            let (c1, c2) = (uf.min_of(i1), uf.min_of(i2));
            merges.push(MergeRecord { level, left: c1, right: c2, into: c1.min(c2) });
            uf.union(i1, i2);

            // Single-link combination: row/column i1 absorbs the max.
            active[i2] = false;
            for j in 0..n {
                if active[j] && j != i1 {
                    let merged = sim[i1 * n + j].max(sim[i2 * n + j]);
                    sim[i1 * n + j] = merged;
                    sim[j * n + i1] = merged;
                }
            }
            nbm[i1] = best_of_row(&sim, n, i1, &active);
            // Single-link NBM maintenance: rows that pointed at i2 now
            // point at i1 with the same similarity; rows that pointed at
            // i1 keep pointing there (their similarity can only grow).
            for j in 0..n {
                if !active[j] || j == i1 {
                    continue;
                }
                if nbm[j].1 == i2 {
                    nbm[j].1 = i1;
                    debug_assert!((sim[j * n + i1] - nbm[j].0).abs() < 1e-12);
                } else if nbm[j].1 == i1 {
                    nbm[j].0 = sim[j * n + i1];
                }
            }
        }
        Dendrogram::from_merges(n, merges)
    }
}

fn best_of_row(sim: &[f64], n: usize, i: usize, active: &[bool]) -> (f64, usize) {
    let mut best = (f64::NEG_INFINITY, usize::MAX);
    for j in 0..n {
        if j != i && active[j] && sim[i * n + j] > best.0 {
            best = (sim[i * n + j], j);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::compute_similarities;
    use crate::reference::{canonical_labels, single_linkage_at_threshold};
    use crate::sweep::{sweep, SweepConfig};
    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_graph::GraphBuilder;

    #[test]
    fn path_graph_single_merge() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap().build();
        let sims = compute_similarities(&g);
        let d = NbmClustering::new().run(&g, &sims);
        assert_eq!(d.merge_count(), 1);
        assert_eq!(d.final_cluster_count(), 1);
    }

    #[test]
    fn final_partition_matches_sweep() {
        for seed in 0..5 {
            let g = gnm(15, 35, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = compute_similarities(&g);
            let nbm_labels = NbmClustering::new().run(&g, &sims).final_assignments();
            let sweep_labels =
                sweep(&g, &sims.clone().into_sorted(), SweepConfig::default()).edge_assignments();
            let a: Vec<usize> = nbm_labels.iter().map(|&x| x as usize).collect();
            let b: Vec<usize> = sweep_labels.iter().map(|&x| x as usize).collect();
            assert_eq!(canonical_labels(&a), canonical_labels(&b), "seed {seed}");
        }
    }

    #[test]
    fn threshold_partitions_match_brute_force() {
        for seed in 0..4 {
            let g = gnm(12, 26, WeightMode::Uniform { lo: 0.3, hi: 1.8 }, seed);
            let sims = compute_similarities(&g);
            for theta in [0.25, 0.5, 0.75] {
                let d = NbmClustering::new().min_similarity(theta).run(&g, &sims);
                let got: Vec<usize> = d.final_assignments().iter().map(|&x| x as usize).collect();
                let expected = canonical_labels(&single_linkage_at_threshold(&g, theta));
                assert_eq!(canonical_labels(&got), expected, "seed {seed} theta {theta}");
            }
        }
    }

    #[test]
    fn merge_similarities_are_non_increasing() {
        // Single-linkage dendrograms merge in non-increasing similarity
        // order; verify by replaying against the brute-force similarity.
        use crate::reference::edge_similarity;
        use linkclust_graph::EdgeId;
        let g = gnm(10, 20, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 11);
        let sims = compute_similarities(&g);
        let d = NbmClustering::new().run(&g, &sims);
        // Reconstruct each merge's similarity as the max edge-pair
        // similarity across the two clusters at merge time.
        let mut clusters: Vec<Vec<usize>> = (0..g.edge_count()).map(|i| vec![i]).collect();
        let mut where_is: Vec<usize> = (0..g.edge_count()).collect();
        let mut last = f64::INFINITY;
        for m in d.merges() {
            let (a, b) = (where_is[m.left as usize], where_is[m.right as usize]);
            let mut best: f64 = 0.0;
            for &x in &clusters[a] {
                for &y in &clusters[b] {
                    best = best.max(edge_similarity(&g, EdgeId::new(x), EdgeId::new(y)));
                }
            }
            assert!(best <= last + 1e-9, "merge similarity increased: {best} after {last}");
            last = best;
            let moved = std::mem::take(&mut clusters[b]);
            for &x in &moved {
                where_is[x] = a;
            }
            clusters[a].extend(moved);
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let sims = compute_similarities(&g);
        let d = NbmClustering::new().run(&g, &sims);
        assert_eq!(d.merge_count(), 0);
    }
}
