//! The cluster array `C` of Algorithm 2.
//!
//! `C` maps every edge index to another edge index with `C[i] ≤ i`; the
//! chain `F(i) = {i} ∪ F(C[i])` (Eq. 4) descends to a self-pointing root,
//! and `min F(i)` — the root — is the cluster id of edge `i` (Theorem 1).
//!
//! The `MERGE` procedure rewrites every element of both chains to the
//! smaller root; the paper's complexity argument (Theorem 2's
//! `√K₂·|E|` term) bounds exactly these chain rewrites.

/// The array `C` over `n` edge indices, plus bookkeeping (live cluster
/// count and a write counter that backs Fig. 2(1)).
///
/// # Examples
///
/// ```
/// use linkclust_core::ClusterArray;
///
/// let mut c = ClusterArray::new(4);
/// assert_eq!(c.cluster_count(), 4);
/// let m = c.merge(1, 3).expect("distinct clusters merge");
/// assert_eq!((m.left, m.right, m.into), (1, 3, 1));
/// assert_eq!(c.cluster_count(), 3);
/// assert_eq!(c.root_of(3), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClusterArray {
    c: Vec<u32>,
    clusters: usize,
    changes: u64,
}

/// The outcome of a successful [`ClusterArray::merge`]: two distinct
/// clusters `left` and `right` became `into = min(left, right)` — the
/// dendrogram event of Eq. 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MergeOutcome {
    /// Root of the first cluster before the merge.
    pub left: u32,
    /// Root of the second cluster before the merge.
    pub right: u32,
    /// The surviving root, `min(left, right)`.
    pub into: u32,
}

impl ClusterArray {
    /// Creates `C` with every edge in its own cluster (`C[i] = i`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        ClusterArray { c: (0..n as u32).collect(), clusters: n, changes: 0 }
    }

    /// Reconstructs a `ClusterArray` from a raw parent vector.
    ///
    /// Used by the parallel sweep when combining per-thread copies.
    ///
    /// # Panics
    ///
    /// Panics if any `c[i] > i` (chains must descend).
    #[must_use]
    pub fn from_parents(c: Vec<u32>) -> Self {
        for (i, &p) in c.iter().enumerate() {
            assert!(p as usize <= i, "C[{i}] = {p} violates the descending-chain invariant");
        }
        let clusters = c.iter().enumerate().filter(|&(i, &p)| p as usize == i).count();
        ClusterArray { c, clusters, changes: 0 }
    }

    /// Number of edges (the array length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// Returns `true` if the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// The raw parent of edge `i` (`C[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn parent(&self, i: usize) -> u32 {
        self.c[i]
    }

    /// Overwrites `C[i]`; exposed for the parallel array-merge scheme.
    /// The live cluster count tracks root creation/destruction exactly.
    ///
    /// # Panics
    ///
    /// Panics if `value > i` (the chain must descend) or `i` is out of
    /// bounds.
    #[inline]
    pub fn set_parent(&mut self, i: usize, value: u32) {
        assert!(
            value as usize <= i,
            "C[{i}] = {value} would violate the descending-chain invariant"
        );
        if self.c[i] != value {
            let was_root = self.c[i] as usize == i;
            let is_root = value as usize == i;
            self.c[i] = value;
            self.changes += 1;
            match (was_root, is_root) {
                (true, false) => self.clusters -= 1,
                (false, true) => self.clusters += 1,
                _ => {}
            }
        }
    }

    /// The chain `F(i)` of Eq. 4: `i, C[i], C[C[i]], …` down to the
    /// self-pointing root (inclusive).
    #[must_use]
    pub fn chain(&self, i: usize) -> Vec<u32> {
        let mut out = vec![i as u32];
        let mut cur = i;
        while self.c[cur] as usize != cur {
            cur = self.c[cur] as usize;
            out.push(cur as u32);
        }
        out
    }

    /// The cluster id of edge `i`: `min F(i)`, i.e. the chain's root
    /// (Theorem 1).
    #[must_use]
    pub fn root_of(&self, i: usize) -> u32 {
        let mut cur = i;
        while self.c[cur] as usize != cur {
            cur = self.c[cur] as usize;
        }
        cur as u32
    }

    /// The paper's `MERGE(i₁, i₂)`: rewrites both chains to the smaller
    /// root. Returns `Some(outcome)` if the edges were in distinct
    /// clusters (a dendrogram-level event), `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn merge(&mut self, i1: usize, i2: usize) -> Option<MergeOutcome> {
        let f1 = self.chain(i1);
        let f2 = self.chain(i2);
        let c1 = *f1.last().expect("chains are non-empty");
        let c2 = *f2.last().expect("chains are non-empty");
        let cmin = c1.min(c2);
        for &j in f1.iter().chain(&f2) {
            if self.c[j as usize] != cmin {
                self.c[j as usize] = cmin;
                self.changes += 1;
            }
        }
        if c1 != c2 {
            self.clusters -= 1;
            Some(MergeOutcome { left: c1, right: c2, into: cmin })
        } else {
            None
        }
    }

    /// Makes `self` an exact copy of `other` — same parents, cluster
    /// count, and write counter — **without allocating** when `self`
    /// already has sufficient capacity.
    ///
    /// This is the resync primitive of the parallel chunk pipeline: each
    /// worker keeps a persistent scratch array that is resynced from the
    /// committed array before every chunk, replacing the per-chunk
    /// `clone()` (and its O(|E|) heap allocation) with a plain
    /// `copy_from_slice`.
    pub fn sync_from(&mut self, other: &ClusterArray) {
        if self.c.len() == other.c.len() {
            self.c.copy_from_slice(&other.c);
        } else {
            self.c.clear();
            self.c.extend_from_slice(&other.c);
        }
        self.clusters = other.clusters;
        self.changes = other.changes;
    }

    /// The current number of clusters (maintained incrementally by
    /// [`merge`](Self::merge)).
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters
    }

    /// Recounts clusters by scanning for self-pointing roots — the
    /// paper's "use array C to calculate the current number of clusters".
    #[must_use]
    pub fn count_roots(&self) -> usize {
        self.c.iter().enumerate().filter(|&(i, &p)| p as usize == i).count()
    }

    /// Resolves every edge to its cluster root.
    #[must_use]
    pub fn assignments(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.root_of(i)).collect()
    }

    /// Total number of element writes to `C` so far (backs Fig. 2(1)).
    #[must_use]
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// Resets the write counter and returns its previous value.
    pub fn take_changes(&mut self) -> u64 {
        std::mem::take(&mut self.changes)
    }

    /// The raw parent vector.
    #[must_use]
    pub fn parents(&self) -> &[u32] {
        &self.c
    }
}

/// Derives the merge events that turn the partition of `finer` into the
/// partition of `coarser`: for every cluster of `coarser` containing the
/// finer roots `r₁ < r₂ < … < r_k`, emits the k−1 events
/// `(r₁, r₂ → r₁), (r₁, r₃ → r₁), …`.
///
/// Used when a chunk's merges are performed out-of-order (parallel sweep)
/// or replayed from a saved rollback state: the dendrogram needs *some*
/// valid merge sequence with the right cluster counts, and the diff is the
/// canonical one.
///
/// # Panics
///
/// Panics if the arrays have different lengths or `coarser` is not a
/// coarsening of `finer` (two edges sharing a cluster in `finer` must
/// share one in `coarser`).
#[must_use]
pub fn partition_diff(finer: &ClusterArray, coarser: &ClusterArray) -> Vec<MergeOutcome> {
    assert_eq!(finer.len(), coarser.len(), "partitions must cover the same edges");
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    let mut seen: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for i in 0..finer.len() {
        let fr = finer.root_of(i);
        let cr = coarser.root_of(i);
        match seen.entry(fr) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(cr);
                groups.entry(cr).or_default().push(fr);
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                assert_eq!(
                    *o.get(),
                    cr,
                    "coarser partition splits finer cluster {fr}: not a coarsening"
                );
            }
        }
    }
    let mut out = Vec::new();
    let mut roots: Vec<(u32, Vec<u32>)> = groups.into_iter().collect();
    roots.sort_unstable_by_key(|&(cr, _)| cr);
    for (_, mut members) in roots {
        members.sort_unstable();
        let target = members[0];
        for &r in &members[1..] {
            out.push(MergeOutcome { left: target, right: r, into: target });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_array_is_identity() {
        let c = ClusterArray::new(5);
        assert_eq!(c.parents(), &[0, 1, 2, 3, 4]);
        assert_eq!(c.cluster_count(), 5);
        assert_eq!(c.count_roots(), 5);
        assert_eq!(c.chain(3), vec![3]);
    }

    #[test]
    fn merge_points_to_smaller_root() {
        let mut c = ClusterArray::new(4);
        let m = c.merge(2, 3).unwrap();
        assert_eq!(m.into, 2);
        let m = c.merge(3, 0).unwrap();
        assert_eq!(m, MergeOutcome { left: 2, right: 0, into: 0 });
        assert_eq!(c.root_of(2), 0);
        assert_eq!(c.root_of(3), 0);
        assert_eq!(c.cluster_count(), 2);
    }

    #[test]
    fn merge_same_cluster_returns_none() {
        let mut c = ClusterArray::new(3);
        c.merge(0, 1).unwrap();
        assert!(c.merge(1, 0).is_none());
        assert_eq!(c.cluster_count(), 2);
    }

    #[test]
    fn merge_flattens_both_chains() {
        let mut c = ClusterArray::new(6);
        c.merge(4, 5);
        c.merge(2, 3);
        c.merge(5, 3); // chains {4,5}->4? actually roots 4 and 2
                       // After merging, every member of both chains points directly at 2.
        for i in [2, 3, 4, 5] {
            assert_eq!(c.parent(i), 2, "C[{i}]");
        }
    }

    #[test]
    fn changes_counts_only_real_writes() {
        let mut c = ClusterArray::new(4);
        c.merge(0, 1); // writes C[1] = 0
        assert_eq!(c.changes(), 1);
        c.merge(0, 1); // same cluster: C[0]=0, C[1]=0 already
        assert_eq!(c.changes(), 1);
        assert_eq!(c.take_changes(), 1);
        assert_eq!(c.changes(), 0);
    }

    #[test]
    fn assignments_resolve_roots() {
        let mut c = ClusterArray::new(5);
        c.merge(1, 3);
        c.merge(3, 4);
        assert_eq!(c.assignments(), vec![0, 1, 2, 1, 1]);
    }

    #[test]
    fn from_parents_validates_and_counts() {
        let c = ClusterArray::from_parents(vec![0, 0, 2, 2]);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.root_of(3), 2);
    }

    #[test]
    #[should_panic(expected = "descending-chain")]
    fn from_parents_rejects_ascending() {
        let _ = ClusterArray::from_parents(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "descending-chain")]
    fn set_parent_rejects_ascending() {
        let mut c = ClusterArray::new(3);
        c.set_parent(0, 2);
    }

    #[test]
    fn long_chain_resolution() {
        // Build a chain 4 -> 3 -> 2 -> 1 -> 0 manually through merges that
        // never flatten the whole structure at once.
        let mut c = ClusterArray::new(5);
        c.merge(0, 1);
        c.merge(2, 3);
        c.merge(3, 4); // same cluster as 2 now
        c.merge(4, 1);
        assert_eq!(c.root_of(4), 0);
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.count_roots(), 1);
    }

    #[test]
    fn partition_diff_emits_group_merges() {
        let mut fine = ClusterArray::new(6);
        fine.merge(0, 1); // {0,1} {2} {3} {4} {5}
        let mut coarse = fine.clone();
        coarse.merge(1, 2); // {0,1,2}
        coarse.merge(4, 5); // {4,5}
        let diff = partition_diff(&fine, &coarse);
        assert_eq!(
            diff,
            vec![
                MergeOutcome { left: 0, right: 2, into: 0 },
                MergeOutcome { left: 4, right: 5, into: 4 },
            ]
        );
    }

    #[test]
    fn partition_diff_of_identical_is_empty() {
        let mut c = ClusterArray::new(4);
        c.merge(0, 3);
        assert!(partition_diff(&c, &c.clone()).is_empty());
    }

    #[test]
    #[should_panic(expected = "coarsening")]
    fn partition_diff_rejects_non_coarsening() {
        let mut a = ClusterArray::new(3);
        a.merge(0, 1);
        let mut b = ClusterArray::new(3);
        b.merge(1, 2);
        let _ = partition_diff(&a, &b);
    }

    #[test]
    fn partition_diff_reduces_cluster_count_correctly() {
        let mut fine = ClusterArray::new(10);
        for i in (1..10).step_by(2) {
            fine.merge(i - 1, i);
        }
        let mut coarse = fine.clone();
        coarse.merge(0, 9);
        coarse.merge(2, 5);
        let diff = partition_diff(&fine, &coarse);
        assert_eq!(fine.cluster_count() - diff.len(), coarse.cluster_count());
    }

    #[test]
    fn sync_from_is_clone_without_allocation() {
        let mut src = ClusterArray::new(6);
        src.merge(0, 3);
        src.merge(2, 5);
        let mut dst = ClusterArray::new(6);
        dst.merge(1, 4); // diverge first: resync must overwrite
        dst.sync_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.changes(), src.changes());
        // Length-changing resync still works (falls back to extend).
        let mut short = ClusterArray::new(2);
        short.sync_from(&src);
        assert_eq!(short, src);
    }

    #[test]
    fn empty_array() {
        let c = ClusterArray::new(0);
        assert!(c.is_empty());
        assert_eq!(c.cluster_count(), 0);
        assert!(c.assignments().is_empty());
    }
}
