//! Epoch states and the rollback list (§V-A).
//!
//! When an epoch overshoots the merge-rate bound the algorithm rolls back
//! to the previous safe state — but the overshot state is not discarded:
//! it is saved on the list `L_rollback` so a later level can *reuse* it
//! (jump directly to it) instead of recomputing the same merges, and so
//! the tail mode can use it as an extrapolation reference (Eq. 6).

/// A saved (overshot) epoch state: the tuple `Q = (β, Δ, p, C)` of §V-A.
///
/// When the state is reused (Case-I jump), the dendrogram records for the
/// jump are derived by diffing the current partition against
/// [`parents`](Self::parents) — see
/// [`partition_diff`](crate::cluster_array::partition_diff).
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct SavedEpoch {
    /// Snapshot of array `C` at the overshot point.
    pub parents: Vec<u32>,
    /// Incident edge pairs processed at the overshot point (ξ).
    pub pairs: u64,
    /// Index of the next unprocessed entry of list `L` (the pointer `p`).
    pub entry_index: usize,
    /// Cluster count at the overshot point (β̃).
    pub clusters: usize,
}

/// The rollback list `L_rollback`: saved epoch states, capped in length
/// (each holds a full copy of `C`).
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct RollbackList {
    states: Vec<SavedEpoch>,
    capacity: usize,
}

impl RollbackList {
    pub(super) fn new(capacity: usize) -> Self {
        RollbackList { states: Vec::new(), capacity: capacity.max(1) }
    }

    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.states.len()
    }

    /// Saves an overshot state, evicting the oldest if at capacity.
    pub(super) fn push(&mut self, state: SavedEpoch) {
        if self.states.len() == self.capacity {
            self.states.remove(0);
        }
        self.states.push(state);
    }

    /// Case-I reuse search: among states strictly ahead of the current
    /// level (β̃ < β) whose jump respects the soundness bound
    /// (β/β̃ ≤ γ), returns the one with the **fewest** clusters (the
    /// furthest admissible jump). The state is removed from the list.
    pub(super) fn take_reusable(&mut self, beta: usize, gamma: f64) -> Option<SavedEpoch> {
        let idx = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.clusters < beta && beta as f64 / s.clusters as f64 <= gamma)
            .min_by_key(|(_, s)| s.clusters)
            .map(|(i, _)| i)?;
        Some(self.states.remove(idx))
    }

    /// Eq.-6 tail reference: the state *closest ahead* of the current
    /// level — β̃(s) < β and β̃(s) maximal among those. Not removed.
    pub(super) fn tail_reference(&self, beta: usize) -> Option<&SavedEpoch> {
        self.states.iter().filter(|s| s.clusters < beta).max_by_key(|s| s.clusters)
    }

    /// Drops states that are no longer ahead of the current level
    /// (β̃ ≥ β): they can never be reused or referenced again.
    pub(super) fn prune(&mut self, beta: usize) {
        self.states.retain(|s| s.clusters < beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(clusters: usize) -> SavedEpoch {
        SavedEpoch { parents: vec![0], pairs: 10, entry_index: 1, clusters }
    }

    #[test]
    fn take_reusable_picks_furthest_admissible() {
        let mut list = RollbackList::new(8);
        for c in [900, 600, 300, 100] {
            list.push(state(c));
        }
        // β = 1000, γ = 2: admissible are β̃ ∈ {900, 600, 500..}; 300 gives
        // rate 3.33 > 2, 100 gives 10. Furthest admissible is 600.
        let s = list.take_reusable(1000, 2.0).unwrap();
        assert_eq!(s.clusters, 600);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn take_reusable_requires_progress() {
        let mut list = RollbackList::new(8);
        list.push(state(1000));
        assert!(list.take_reusable(1000, 2.0).is_none());
        assert!(list.take_reusable(500, 10.0).is_none());
    }

    #[test]
    fn tail_reference_is_closest_ahead() {
        let mut list = RollbackList::new(8);
        for c in [900, 600, 300] {
            list.push(state(c));
        }
        assert_eq!(list.tail_reference(700).unwrap().clusters, 600);
        assert_eq!(list.tail_reference(250), None);
    }

    #[test]
    fn prune_drops_past_states() {
        let mut list = RollbackList::new(8);
        for c in [900, 600, 300] {
            list.push(state(c));
        }
        list.prune(600);
        assert_eq!(list.len(), 1);
        assert_eq!(list.tail_reference(usize::MAX).unwrap().clusters, 300);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut list = RollbackList::new(2);
        for c in [900, 600, 300] {
            list.push(state(c));
        }
        assert_eq!(list.len(), 2);
        assert!(list.tail_reference(1000).map(|s| s.clusters) == Some(600));
    }
}
