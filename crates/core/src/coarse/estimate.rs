//! Chunk-size estimation (§V-B, Fig. 3).
//!
//! At each new epoch the algorithm must predict how many incident edge
//! pairs to process so that the cluster count shrinks by roughly the
//! target rate γ̃ = (1+γ)/2 — fast enough to make progress, but within the
//! soundness bound γ. Prediction is linear extrapolation on the
//! (pairs-processed, cluster-count) plane:
//!
//! * the **reference point** is a rolled-back (overshot) epoch state — a
//!   point *ahead* of the current level;
//! * the **previous two levels** give the local slope behind the current
//!   level.
//!
//! Whichever slope is steeper (most negative) yields the smaller — hence
//! safer — chunk estimate; this handles both the concave and the convex
//! scenario of Fig. 3 with one rule.

/// A point on the (pairs processed ξ, cluster count β) curve.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CurvePoint {
    /// Incident edge pairs processed so far.
    pub pairs: u64,
    /// Number of clusters at that point.
    pub clusters: usize,
}

/// Estimates the next chunk size by slope extrapolation.
///
/// `history` holds the committed levels in order (at least the current
/// level; ideally the previous one too); `reference` is an optional
/// overshot point ahead of the current level (from a rollback state).
/// Returns `None` when no usable (negative) slope exists — e.g. the curve
/// has been flat — in which case the caller keeps its previous estimate.
///
/// # Panics
///
/// Panics if `history` is empty or `gamma_tilde < 1`.
#[must_use]
pub fn estimate_chunk(
    reference: Option<CurvePoint>,
    history: &[CurvePoint],
    gamma_tilde: f64,
) -> Option<u64> {
    assert!(!history.is_empty(), "need the current level in history");
    assert!(gamma_tilde >= 1.0, "target merge rate must be at least 1");
    let current = *history.last().expect("history is non-empty");
    let target = current.clusters as f64 / gamma_tilde;

    let mut slope: Option<f64> = None;
    if let Some(r) = reference {
        if r.pairs > current.pairs && r.clusters < current.clusters {
            let s = (r.clusters as f64 - current.clusters as f64)
                / (r.pairs as f64 - current.pairs as f64);
            slope = Some(steeper(slope, s));
        }
    }
    if history.len() >= 2 {
        let prev = history[history.len() - 2];
        if current.pairs > prev.pairs && current.clusters < prev.clusters {
            let s = (current.clusters as f64 - prev.clusters as f64)
                / (current.pairs as f64 - prev.pairs as f64);
            slope = Some(steeper(slope, s));
        }
    }
    let s = slope?;
    debug_assert!(s < 0.0);
    let delta = (target - current.clusters as f64) / s;
    Some((delta.ceil() as u64).max(1))
}

/// The steeper (more negative) of an optional current slope and a new
/// candidate.
fn steeper(current: Option<f64>, candidate: f64) -> f64 {
    match current {
        Some(c) if c <= candidate => c,
        _ => candidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(pairs: u64, clusters: usize) -> CurvePoint {
        CurvePoint { pairs, clusters }
    }

    #[test]
    fn uses_previous_levels_when_no_reference() {
        // From (100, 1000) to (200, 800): slope -2 per pair.
        // Target at γ̃ = 1.5: 800/1.5 ≈ 533.3; Δβ ≈ -266.7 -> δ ≈ 134.
        let hist = [pt(100, 1000), pt(200, 800)];
        let d = estimate_chunk(None, &hist, 1.5).unwrap();
        assert_eq!(d, 134);
    }

    #[test]
    fn picks_the_steeper_slope() {
        // Previous-levels slope: -2/pair. Reference slope: (400-800)/(300-200)
        // = -4/pair (steeper) -> smaller chunk.
        let hist = [pt(100, 1000), pt(200, 800)];
        let reference = Some(pt(300, 400));
        let with_ref = estimate_chunk(reference, &hist, 1.5).unwrap();
        let without = estimate_chunk(None, &hist, 1.5).unwrap();
        assert!(with_ref < without, "{with_ref} vs {without}");
        assert_eq!(with_ref, 67); // ceil(266.67 / 4)
    }

    #[test]
    fn shallow_reference_is_ignored_if_older() {
        // Reference behind the current level is not usable.
        let hist = [pt(100, 1000), pt(200, 800)];
        let reference = Some(pt(150, 900));
        assert_eq!(estimate_chunk(reference, &hist, 1.5), estimate_chunk(None, &hist, 1.5));
    }

    #[test]
    fn flat_curve_gives_none() {
        let hist = [pt(100, 500), pt(200, 500)];
        assert_eq!(estimate_chunk(None, &hist, 1.5), None);
        // Single point, no reference: nothing to extrapolate from.
        assert_eq!(estimate_chunk(None, &[pt(0, 100)], 2.0), None);
    }

    #[test]
    fn estimate_is_at_least_one() {
        // Very steep slope -> tiny chunk, clamped to 1.
        let hist = [pt(0, 1_000_000), pt(1, 2)];
        let d = estimate_chunk(None, &hist, 1000.0).unwrap();
        assert!(d >= 1);
    }

    #[test]
    fn reference_only_works_without_second_level() {
        let hist = [pt(0, 1000)];
        let d = estimate_chunk(Some(pt(100, 500)), &hist, 2.0).unwrap();
        // slope -5/pair, target 500, Δβ = -500 -> δ = 100
        assert_eq!(d, 100);
    }
}
