//! The mode-transition machine of Fig. 2(3), as pure functions.
//!
//! At every epoch boundary the algorithm evaluates three predicates on
//! the cluster counts (β = previous level, β′ = after the chunk):
//!
//! * **C1**: `β′ ≤ |E|/2` — the head/tail watershed;
//! * **C2**: `β/β′ ≤ γ` — the soundness bound;
//! * **C3**: `β′ ≤ φ` — the termination condition.
//!
//! The machine's decision — commit into head or tail, roll back, or
//! terminate — is pure in those predicates, so it is factored out here
//! and unit-tested as a transition table, independent of the driver's
//! state plumbing.

/// The two persistent operating modes (rollback is an *event*, not a
/// persistent mode: the machine rolls back and retries in its current
/// mode).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mode {
    /// More than `|E|/2` clusters remain; chunk sizes grow
    /// exponentially.
    #[default]
    Head,
    /// At most `|E|/2` clusters remain; chunk sizes are predicted by
    /// slope extrapolation. Terminal: the machine never returns to
    /// head (cluster counts only decrease).
    Tail,
}

/// The machine's decision at an epoch boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// Commit the epoch and continue in `next` mode.
    Commit {
        /// The mode for the next epoch.
        next: Mode,
    },
    /// Commit the epoch and stop: C3 reached.
    Terminate,
    /// Undo the epoch (C2 violated) and retry with a smaller chunk.
    Rollback,
}

/// The predicate inputs at an epoch boundary.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EpochOutcome {
    /// Cluster count at the previous committed level (β).
    pub clusters_before: usize,
    /// Cluster count after the attempted chunk (β′).
    pub clusters_after: usize,
    /// Total number of edges, |E|.
    pub edges: usize,
    /// `true` if the chunk was a single indivisible entry that exceeded
    /// the budget — such chunks commit regardless of C2.
    pub forced: bool,
}

impl EpochOutcome {
    /// Predicate C1: `β′ ≤ |E|/2` (the epoch lands in tail territory).
    #[must_use]
    pub fn c1(&self) -> bool {
        self.clusters_after <= self.edges / 2
    }

    /// Predicate C2 with bound `gamma`: `β/β′ ≤ γ` (merge rate is
    /// sound).
    #[must_use]
    pub fn c2(&self, gamma: f64) -> bool {
        self.clusters_before as f64 / self.clusters_after.max(1) as f64 <= gamma
    }

    /// Predicate C3 with floor `phi`: `β′ ≤ φ` (few enough clusters to
    /// stop).
    #[must_use]
    pub fn c3(&self, phi: usize) -> bool {
        self.clusters_after <= phi
    }
}

/// Evaluates the transition for an epoch outcome — the decision diamond
/// of Fig. 2(3).
#[must_use]
pub fn transition(outcome: EpochOutcome, gamma: f64, phi: usize) -> Transition {
    if !outcome.c2(gamma) && !outcome.forced {
        return Transition::Rollback;
    }
    if outcome.c3(phi) {
        return Transition::Terminate;
    }
    Transition::Commit { next: if outcome.c1() { Mode::Tail } else { Mode::Head } }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(before: usize, after: usize, edges: usize) -> EpochOutcome {
        EpochOutcome { clusters_before: before, clusters_after: after, edges, forced: false }
    }

    #[test]
    fn transition_table() {
        let gamma = 2.0;
        let phi = 10;
        // C2 violated -> rollback, regardless of C1/C3 potential.
        assert_eq!(transition(outcome(1000, 400, 1000), gamma, phi), Transition::Rollback);
        assert_eq!(transition(outcome(1000, 5, 1000), gamma, phi), Transition::Rollback);
        // C2 ok, C3 reached -> terminate.
        assert_eq!(transition(outcome(12, 8, 1000), gamma, phi), Transition::Terminate);
        // C2 ok, C3 not reached, still above |E|/2 -> head.
        assert_eq!(
            transition(outcome(1000, 900, 1000), gamma, phi),
            Transition::Commit { next: Mode::Head }
        );
        // C2 ok, below |E|/2 -> tail.
        assert_eq!(
            transition(outcome(600, 400, 1000), gamma, phi),
            Transition::Commit { next: Mode::Tail }
        );
    }

    #[test]
    fn forced_epochs_bypass_c2() {
        let forced =
            EpochOutcome { clusters_before: 1000, clusters_after: 10, edges: 1000, forced: true };
        // Rate 100 > gamma = 2, but forced -> commits (into tail here).
        assert_eq!(transition(forced, 2.0, 5), Transition::Commit { next: Mode::Tail });
        // Forced + C3 -> terminate.
        assert_eq!(
            transition(EpochOutcome { clusters_after: 4, ..forced }, 2.0, 5),
            Transition::Terminate
        );
    }

    #[test]
    fn predicates_match_their_definitions() {
        let o = outcome(100, 50, 100);
        assert!(o.c1()); // 50 <= 50
        assert!(o.c2(2.0)); // 100/50 = 2 <= 2
        assert!(!o.c2(1.9));
        assert!(!o.c3(10));
        assert!(o.c3(50));
    }

    #[test]
    fn c2_is_safe_for_zero_clusters() {
        let o = outcome(5, 0, 10);
        // max(1) guard: rate is 5, not a division by zero.
        assert!(!o.c2(2.0));
        assert!(o.c2(5.0));
    }

    #[test]
    fn boundary_exactly_half_is_tail() {
        let o = outcome(500, 50, 100);
        assert!(o.c1());
        let o = outcome(500, 51, 100);
        assert!(!o.c1());
    }
}
