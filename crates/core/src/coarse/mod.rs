//! Coarse-grained hierarchical link clustering (§V of the paper).
//!
//! Instead of one dendrogram level per merge, the sorted pair list is
//! processed in *chunks*: all merges of a chunk share a level. The chunk
//! sizes are chosen adaptively so the resulting dendrogram is **sound** —
//! the cluster count shrinks by at most a factor γ between consecutive
//! levels — and the algorithm stops once fewer than φ clusters remain
//! (the remaining tail of incident pairs is never processed, which is
//! where the speed-up of Fig. 5(2) comes from).
//!
//! The driver is a mode machine (Fig. 2(3)):
//!
//! * **head** — more than `|E|/2` clusters remain; chunk sizes grow
//!   exponentially (`δ ← δ·η`).
//! * **tail** — fewer than `|E|/2` clusters; chunk sizes are predicted by
//!   slope extrapolation ([`estimate`]), using overshot states saved on
//!   the rollback list as reference points (Eq. 6).
//! * **rollback** — an epoch that violated the merge-rate bound (predicate
//!   C2: β/β′ ≤ γ) is undone: its end state is saved for later reuse, the
//!   algorithm restores the previous safe state and retries with a
//!   smaller chunk. When a later level can legally jump to a saved state
//!   (Case I reuse), the saved merges are committed wholesale without
//!   recomputation.

pub mod estimate;
pub mod machine;

mod epoch;

use std::sync::Arc;

use linkclust_graph::{EdgeIndex, GraphView};

use crate::cluster_array::{partition_diff, ClusterArray, MergeOutcome};
use crate::dendrogram::{Dendrogram, MergeRecord};
use crate::error::ConfigError;
use crate::similarity::PairSimilarities;
use crate::sweep::{EdgeOrder, SweepOutput};
use crate::telemetry::{Counter, Gauge, Phase, RunReport, Telemetry};

use self::epoch::{RollbackList, SavedEpoch};
use self::estimate::{estimate_chunk, CurvePoint};
use self::machine::{transition, EpochOutcome, Mode, Transition};

/// Parameters `(γ, φ, δ₀)` plus the head growth factor η₀ (§V-A / §VII-B).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoarseConfig {
    /// Soundness bound γ ≥ 1: the cluster count may shrink by at most
    /// this factor between consecutive levels.
    pub gamma: f64,
    /// Terminal cluster count φ: clustering stops once β ≤ φ.
    pub phi: usize,
    /// Initial chunk size δ₀ (in incident edge pairs).
    pub initial_chunk: u64,
    /// Initial head-mode growth factor η₀ > 1; halves toward 1 on every
    /// head-mode rollback.
    pub eta0: f64,
    /// Edge-to-slot assignment (shared with the fine-grained sweep).
    pub edge_order: EdgeOrder,
    /// Maximum number of saved rollback states (each holds a full copy
    /// of array `C`).
    pub max_rollback_states: usize,
}

impl Default for CoarseConfig {
    /// The paper's experimental setting: γ = 2, φ = 100, δ₀ = 1000,
    /// η₀ = 8.
    fn default() -> Self {
        CoarseConfig {
            gamma: 2.0,
            phi: 100,
            initial_chunk: 1000,
            eta0: 8.0,
            edge_order: EdgeOrder::Insertion,
            max_rollback_states: 64,
        }
    }
}

impl CoarseConfig {
    /// A configuration auto-scaled to a workload, mirroring how the
    /// paper picks δ₀ ∈ {100…10000} to track its graph sizes (§VII-B):
    /// γ = 2 and η₀ = 8 as in the paper, δ₀ ≈ K₂/1500 and φ = 100
    /// clamped down for small graphs.
    ///
    /// # Examples
    ///
    /// ```
    /// use linkclust_graph::generate::{gnm, WeightMode};
    /// use linkclust_core::{coarse::CoarseConfig, init::compute_similarities};
    ///
    /// let g = gnm(40, 150, WeightMode::Unit, 1);
    /// let sims = compute_similarities(&g).into_sorted();
    /// let cfg = CoarseConfig::auto_tuned(&g, &sims);
    /// assert!(cfg.phi <= 100 && cfg.initial_chunk >= 8);
    /// ```
    #[must_use]
    pub fn auto_tuned<G: GraphView + ?Sized>(g: &G, sims: &PairSimilarities) -> Self {
        CoarseConfig {
            phi: 100.min((g.edge_count() / 4).max(1)),
            initial_chunk: (sims.incident_pair_count() / 1500).max(8),
            ..Default::default()
        }
    }

    /// A validating builder — the panic-free way to construct a
    /// non-default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use linkclust_core::coarse::CoarseConfig;
    /// use linkclust_core::ConfigError;
    ///
    /// let cfg = CoarseConfig::builder().gamma(1.5).phi(50).build()?;
    /// assert_eq!(cfg.phi, 50);
    /// assert_eq!(
    ///     CoarseConfig::builder().gamma(0.5).build(),
    ///     Err(ConfigError::InvalidGamma(0.5))
    /// );
    /// # Ok::<(), ConfigError>(())
    /// ```
    #[must_use]
    pub fn builder() -> CoarseConfigBuilder {
        CoarseConfigBuilder { cfg: CoarseConfig::default() }
    }

    /// Checks every parameter, returning the first violation: γ must be
    /// finite and ≥ 1, φ ≥ 1, δ₀ ≥ 1, η₀ finite and > 1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.gamma.is_finite() || self.gamma < 1.0 {
            return Err(ConfigError::InvalidGamma(self.gamma));
        }
        if self.phi == 0 {
            return Err(ConfigError::ZeroPhi);
        }
        if self.initial_chunk == 0 {
            return Err(ConfigError::ZeroChunk);
        }
        if !self.eta0.is_finite() || self.eta0 <= 1.0 {
            return Err(ConfigError::InvalidEta(self.eta0));
        }
        Ok(())
    }
}

/// Builder for [`CoarseConfig`] returned by [`CoarseConfig::builder`];
/// [`build`](CoarseConfigBuilder::build) validates every parameter.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoarseConfigBuilder {
    cfg: CoarseConfig,
}

impl CoarseConfigBuilder {
    /// Sets the soundness bound γ.
    #[must_use]
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.cfg.gamma = gamma;
        self
    }

    /// Sets the terminal cluster count φ.
    #[must_use]
    pub fn phi(mut self, phi: usize) -> Self {
        self.cfg.phi = phi;
        self
    }

    /// Sets the initial chunk size δ₀.
    #[must_use]
    pub fn initial_chunk(mut self, initial_chunk: u64) -> Self {
        self.cfg.initial_chunk = initial_chunk;
        self
    }

    /// Sets the initial head-mode growth factor η₀.
    #[must_use]
    pub fn eta0(mut self, eta0: f64) -> Self {
        self.cfg.eta0 = eta0;
        self
    }

    /// Sets the edge-to-slot assignment.
    #[must_use]
    pub fn edge_order(mut self, edge_order: EdgeOrder) -> Self {
        self.cfg.edge_order = edge_order;
        self
    }

    /// Sets the cap on saved rollback states.
    #[must_use]
    pub fn max_rollback_states(mut self, n: usize) -> Self {
        self.cfg.max_rollback_states = n;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<CoarseConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The mode an epoch ran in, plus whether it was fresh or reused — the
/// categories of Fig. 5(1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochKind {
    /// A committed epoch in head mode.
    HeadFresh,
    /// A committed epoch in tail mode.
    TailFresh,
    /// An epoch that violated the merge-rate bound and was rolled back.
    Rollback,
    /// A saved rollback state committed wholesale (Case-I reuse).
    Reused,
}

/// Telemetry for one epoch of the coarse sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EpochRecord {
    /// Sequence number (0-based, includes rolled-back epochs).
    pub index: u32,
    /// Outcome category.
    pub kind: EpochKind,
    /// The chunk size δ the epoch ran with (0 for reused states).
    pub chunk_size: u64,
    /// Incident edge pairs processed from the start of the sweep to the
    /// end of this epoch (ξ).
    pub pairs_end: u64,
    /// Cluster count at the end of this epoch (β′).
    pub clusters: usize,
    /// The dendrogram level the epoch committed to (`None` for
    /// rollbacks).
    pub level: Option<u32>,
    /// `true` if the epoch consisted of a single entry that exceeded the
    /// chunk budget on its own — such epochs are committed even if they
    /// violate the merge-rate bound, since an entry is indivisible.
    pub forced: bool,
}

/// A committed dendrogram level of the coarse sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LevelPoint {
    /// The level id (1-based).
    pub level: u32,
    /// Incident edge pairs processed up to and including this level (ξ).
    pub pairs: u64,
    /// Cluster count after this level (β).
    pub clusters: usize,
}

/// Counts per epoch category (the bars of Fig. 5(1)).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EpochBreakdown {
    /// Committed head-mode epochs.
    pub head_fresh: usize,
    /// Committed tail-mode epochs.
    pub tail_fresh: usize,
    /// Rolled-back epochs.
    pub rollback: usize,
    /// Reused saved states.
    pub reused: usize,
}

/// The result of a coarse-grained sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct CoarseResult {
    output: SweepOutput,
    epochs: Vec<EpochRecord>,
    levels: Vec<LevelPoint>,
    pairs_total: u64,
    pairs_processed: u64,
    report: Option<RunReport>,
}

impl CoarseResult {
    /// The dendrogram plus edge-to-slot permutation.
    #[must_use]
    pub fn output(&self) -> &SweepOutput {
        &self.output
    }

    /// The telemetry report, when the run collected stats (facades with
    /// `.stats(true)`); `None` otherwise.
    #[must_use]
    pub fn report(&self) -> Option<&RunReport> {
        self.report.as_ref()
    }

    /// Attaches a telemetry report (used by the facades after a
    /// stats-collecting run).
    #[must_use]
    pub fn with_report(mut self, report: RunReport) -> Self {
        self.report = Some(report);
        self
    }

    /// The coarse dendrogram (merges share levels chunk-wise).
    #[must_use]
    pub fn dendrogram(&self) -> &Dendrogram {
        self.output.dendrogram()
    }

    /// Telemetry for every epoch, in execution order.
    #[must_use]
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }

    /// The committed levels, in order.
    #[must_use]
    pub fn levels(&self) -> &[LevelPoint] {
        &self.levels
    }

    /// Counts epochs per category (Fig. 5(1)).
    #[must_use]
    pub fn epoch_breakdown(&self) -> EpochBreakdown {
        let mut b = EpochBreakdown::default();
        for e in &self.epochs {
            match e.kind {
                EpochKind::HeadFresh => b.head_fresh += 1,
                EpochKind::TailFresh => b.tail_fresh += 1,
                EpochKind::Rollback => b.rollback += 1,
                EpochKind::Reused => b.reused += 1,
            }
        }
        b
    }

    /// Fraction of the K₂ incident edge pairs that were actually
    /// processed before the φ-termination (e.g. 55.1% for α = 0.005 in
    /// §VII-B).
    #[must_use]
    pub fn processed_fraction(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        self.pairs_processed as f64 / self.pairs_total as f64
    }

    /// The largest cluster-count ratio between consecutive committed
    /// levels. For a sound run this is ≤ γ except across
    /// [`forced`](EpochRecord::forced) epochs.
    #[must_use]
    pub fn max_merge_rate(&self) -> f64 {
        let mut prev = self.output.dendrogram().edge_count() as f64;
        let mut worst: f64 = 1.0;
        for l in &self.levels {
            let rate = prev / l.clusters.max(1) as f64;
            worst = worst.max(rate);
            prev = l.clusters as f64;
        }
        worst
    }

    /// Like [`max_merge_rate`](Self::max_merge_rate) but skipping levels
    /// committed by forced (indivisible single-entry) epochs.
    #[must_use]
    pub fn max_unforced_merge_rate(&self) -> f64 {
        let forced: std::collections::HashSet<u32> =
            self.epochs.iter().filter(|e| e.forced).filter_map(|e| e.level).collect();
        let mut prev = self.output.dendrogram().edge_count() as f64;
        let mut worst: f64 = 1.0;
        for l in &self.levels {
            if !forced.contains(&l.level) {
                worst = worst.max(prev / l.clusters.max(1) as f64);
            }
            prev = l.clusters as f64;
        }
        worst
    }
}

/// Applies the merges of one chunk of similarity entries to the cluster
/// array. The serial implementation is [`SerialChunkProcessor`]; the
/// multi-threaded one (per-thread copies of `C` merged hierarchically,
/// §VI-B) lives in the `linkclust-parallel` crate.
///
/// Edge lookups go through a precomputed [`EdgeIndex`] rather than the
/// graph itself — the only graph access the merge loop needs is
/// `(vertex, vertex) → edge id`, and the index answers it in O(1) for
/// any [`GraphView`] backend. The index is
/// passed as an [`Arc`] so multi-threaded processors can clone the
/// handle into worker tasks without copying the table.
///
/// Implementations must bring `c` to the partition obtained by merging,
/// for every entry and every common neighbor `vₖ`, the clusters of edges
/// `(vᵢ, vₖ)` and `(vⱼ, vₖ)`. The returned outcomes must be a valid merge
/// sequence producing that partition (one event per cluster-count
/// decrement); their order is unspecified.
pub trait ChunkProcessor {
    /// Processes `entries` against `c`, returning the merge events.
    fn process_entries(
        &mut self,
        index: &Arc<EdgeIndex>,
        slot_of_edge: &[u32],
        entries: &[crate::similarity::SimilarityEntry],
        c: &mut ClusterArray,
    ) -> Vec<MergeOutcome>;
}

/// The serial chunk processor: applies `MERGE` per incident edge pair, in
/// list order, exactly as Algorithm 2 does.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialChunkProcessor;

impl ChunkProcessor for SerialChunkProcessor {
    /// # Panics
    ///
    /// Panics if an entry lists a common neighbor with no edge to both
    /// endpoints in the indexed graph — the entries must have been
    /// computed over the same graph the index was built from.
    fn process_entries(
        &mut self,
        index: &Arc<EdgeIndex>,
        slot_of_edge: &[u32],
        entries: &[crate::similarity::SimilarityEntry],
        c: &mut ClusterArray,
    ) -> Vec<MergeOutcome> {
        let mut out = Vec::new();
        for entry in entries {
            let (vi, vj) = (entry.pair.first(), entry.pair.second());
            for &vk in &entry.common_neighbors {
                let e1 = index.edge_between(vi, vk).expect("common neighbor implies edge (vi, vk)");
                let e2 = index.edge_between(vj, vk).expect("common neighbor implies edge (vj, vk)");
                let s1 = slot_of_edge[e1.index()] as usize;
                let s2 = slot_of_edge[e2.index()] as usize;
                if let Some(o) = c.merge(s1, s2) {
                    out.push(o);
                }
            }
        }
        out
    }
}

/// Runs the coarse-grained sweeping algorithm over the sorted pair list.
///
/// # Panics
///
/// Panics if `sorted` is unsorted, or `config` is degenerate (γ < 1,
/// φ = 0, δ₀ = 0, or η₀ ≤ 1). Use [`CoarseConfig::builder`] or
/// [`CoarseConfig::validate`] (or the facades, which return
/// [`ConfigError`]) to reject bad configurations without panicking.
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_core::init::compute_similarities;
/// use linkclust_core::coarse::{coarse_sweep, CoarseConfig};
///
/// let g = gnm(40, 150, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 7);
/// let sims = compute_similarities(&g).into_sorted();
/// let result = coarse_sweep(&g, &sims, CoarseConfig {
///     phi: 10,
///     initial_chunk: 8,
///     ..Default::default()
/// });
/// assert!(result.dendrogram().levels() > 0);
/// ```
pub fn coarse_sweep<G: GraphView + ?Sized>(
    g: &G,
    sorted: &PairSimilarities,
    config: CoarseConfig,
) -> CoarseResult {
    coarse_sweep_with(g, sorted, config, &mut SerialChunkProcessor)
}

/// Like [`coarse_sweep`], but chunks are applied through a caller-supplied
/// [`ChunkProcessor`] — the hook the multi-threaded sweep plugs into.
///
/// # Panics
///
/// Same conditions as [`coarse_sweep`].
pub fn coarse_sweep_with<G: GraphView + ?Sized, P: ChunkProcessor>(
    g: &G,
    sorted: &PairSimilarities,
    config: CoarseConfig,
    processor: &mut P,
) -> CoarseResult {
    coarse_sweep_instrumented(g, sorted, config, processor, &Telemetry::disabled())
}

/// [`coarse_sweep_with`] plus phase-level telemetry: every epoch runs
/// under a [`Phase::CoarseEpoch`] span, chunk sizes are observed on the
/// [`Gauge::ChunkSize`] gauge, and the epoch/rollback/merge counters are
/// recorded.
///
/// # Panics
///
/// Same conditions as [`coarse_sweep`].
pub fn coarse_sweep_instrumented<G: GraphView + ?Sized, P: ChunkProcessor>(
    g: &G,
    sorted: &PairSimilarities,
    config: CoarseConfig,
    processor: &mut P,
    telemetry: &Telemetry,
) -> CoarseResult {
    assert!(sorted.is_sorted(), "coarse sweep requires a sorted pair list; call into_sorted()");
    config.validate().unwrap_or_else(|e| panic!("invalid coarse config: {e}"));

    let m = g.edge_count();
    // One index serves every epoch (including rollback retries); shared
    // by Arc so parallel processors can hand it to worker tasks.
    let index = Arc::new(EdgeIndex::for_graph(g));
    let slot_of_edge = config.edge_order.permutation(m);
    let entries = sorted.entries();
    let pairs_total = sorted.incident_pair_count();
    let gamma_tilde = (1.0 + config.gamma) / 2.0;

    let mut c = ClusterArray::new(m);
    let mut merges: Vec<MergeRecord> = Vec::new();
    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut levels: Vec<LevelPoint> = Vec::new();
    let mut rollbacks = RollbackList::new(config.max_rollback_states);
    let mut history: Vec<CurvePoint> = vec![CurvePoint { pairs: 0, clusters: m }];

    let mut mode = Mode::Head;
    let mut level: u32 = 0;
    let mut beta = m;
    let mut delta = config.initial_chunk;
    let mut big_delta: u64 = 0;
    let mut xi: u64 = 0;
    let mut p: usize = 0;
    let mut eta = config.eta0;
    let mut epoch_index: u32 = 0;
    let mut consecutive_rollbacks = 0u32;

    // Progress invariant: every commit consumes ≥ 1 entry, and between
    // commits at most ~log₂(K₂) rollbacks can occur before δ collapses
    // to 1 and the next epoch is forced. The guard turns any violation
    // (a bug) into a panic instead of a livelock.
    let epoch_guard = 1024 + 64 * entries.len() as u64;

    'outer: while p < entries.len() && beta > config.phi {
        assert!(
            (epochs.len() as u64) < epoch_guard,
            "coarse sweep stopped making progress after {} epochs (p = {p}, δ = {delta}); \
             this is a bug in the mode machine",
            epochs.len()
        );
        // One span per attempted epoch (committed, rolled back, or
        // followed by reuse jumps); chunk size sampled up front.
        let epoch_span = telemetry.span(Phase::CoarseEpoch);
        telemetry.observe(Gauge::ChunkSize, delta as f64);

        // Snapshot the safe state Q* before attempting the epoch.
        let safe_parents = c.parents().to_vec();

        // Select the chunk: entries while ξ + |l| < Δ + δ. The first
        // entry is always admitted (entries are indivisible).
        let mut q = p;
        let mut xi_new = xi;
        while q < entries.len() {
            let pc = entries[q].pair_count() as u64;
            if q > p && xi_new + pc >= big_delta + delta {
                break;
            }
            xi_new += pc;
            q += 1;
            if xi_new >= big_delta + delta {
                break;
            }
        }
        let pending = processor.process_entries(&index, &slot_of_edge, &entries[p..q], &mut c);
        let beta_prime = c.cluster_count();
        let forced = q == p + 1 && xi_new >= big_delta + delta;
        let decision = transition(
            EpochOutcome { clusters_before: beta, clusters_after: beta_prime, edges: m, forced },
            config.gamma,
            config.phi,
        );

        if decision == Transition::Rollback {
            // --- Rollback (Case II) ---
            telemetry.add(Counter::Rollbacks, 1);
            epochs.push(EpochRecord {
                index: epoch_index,
                kind: EpochKind::Rollback,
                chunk_size: delta,
                pairs_end: xi_new,
                clusters: beta_prime,
                level: None,
                forced: false,
            });
            epoch_index += 1;
            rollbacks.push(SavedEpoch {
                parents: c.parents().to_vec(),
                pairs: xi_new,
                entry_index: q,
                clusters: beta_prime,
            });
            c = ClusterArray::from_parents(safe_parents);
            if mode == Mode::Head {
                // head -> rollback transition: η decays toward 1.
                eta = 1.0 + (eta - 1.0) / 2.0;
            }
            consecutive_rollbacks += 1;
            if consecutive_rollbacks > 1 {
                // Consecutive rollbacks: halve toward the safe level.
                delta = (delta / 2).max(1);
            } else {
                let reference = CurvePoint { pairs: xi_new, clusters: beta_prime };
                delta = estimate_chunk(Some(reference), &history, gamma_tilde)
                    .unwrap_or_else(|| (delta / 2).max(1));
            }
            continue;
        }

        // --- Commit (Case I) ---
        level += 1;
        for out in &pending {
            merges.push(MergeRecord { level, left: out.left, right: out.right, into: out.into });
        }
        xi = xi_new;
        p = q;
        // The paper advances the budget base by Δ ← Δ + δ; anchoring it
        // to the pairs actually consumed (Δ = ξ) is equivalent when a
        // chunk consumes exactly its budget and prevents unbounded drift
        // when entry granularity makes it stop early or run long —
        // otherwise a few capped head-mode chunks can push Δ so far past
        // ξ that the budget never binds again and rollbacks cannot
        // shrink the chunk (a livelock).
        big_delta = xi;
        beta = beta_prime;
        history.push(CurvePoint { pairs: xi, clusters: beta });
        epochs.push(EpochRecord {
            index: epoch_index,
            kind: match mode {
                Mode::Tail => EpochKind::TailFresh,
                Mode::Head => EpochKind::HeadFresh,
            },
            chunk_size: delta,
            pairs_end: xi,
            clusters: beta,
            level: Some(level),
            forced,
        });
        epoch_index += 1;
        levels.push(LevelPoint { level, pairs: xi, clusters: beta });
        consecutive_rollbacks = 0;
        epoch_span.finish();
        telemetry.add(Counter::EpochsCommitted, 1);
        if forced {
            telemetry.add(Counter::ForcedEpochs, 1);
        }
        match decision {
            Transition::Terminate => break,
            Transition::Commit { next } => mode = next,
            Transition::Rollback => unreachable!("rollback handled above"),
        }

        // Case-I reuse: jump to saved states while one is admissible.
        while let Some(s) = rollbacks.take_reusable(beta, config.gamma) {
            level += 1;
            let saved = ClusterArray::from_parents(s.parents);
            for out in partition_diff(&c, &saved) {
                merges.push(MergeRecord {
                    level,
                    left: out.left,
                    right: out.right,
                    into: out.into,
                });
            }
            c = saved;
            xi = s.pairs;
            p = s.entry_index;
            big_delta = xi;
            beta = s.clusters;
            history.push(CurvePoint { pairs: xi, clusters: beta });
            telemetry.add(Counter::EpochsReused, 1);
            epochs.push(EpochRecord {
                index: epoch_index,
                kind: EpochKind::Reused,
                chunk_size: 0,
                pairs_end: xi,
                clusters: beta,
                level: Some(level),
                forced: false,
            });
            epoch_index += 1;
            levels.push(LevelPoint { level, pairs: xi, clusters: beta });
            if beta <= config.phi {
                break 'outer;
            }
            if beta <= m / 2 {
                mode = Mode::Tail;
            }
        }
        rollbacks.prune(beta);

        // Estimate the next chunk size by mode.
        match mode {
            Mode::Tail => {
                let reference = rollbacks
                    .tail_reference(beta)
                    .map(|s| CurvePoint { pairs: s.pairs, clusters: s.clusters });
                if let Some(d) = estimate_chunk(reference, &history, gamma_tilde) {
                    delta = d;
                }
            }
            Mode::Head => {
                let grown = (delta as f64 * eta).ceil();
                delta = if grown >= pairs_total as f64 { pairs_total.max(1) } else { grown as u64 };
            }
        }
    }

    telemetry.add(Counter::MergesApplied, merges.len() as u64);
    telemetry.add(Counter::LevelsCommitted, levels.len() as u64);
    telemetry.add(Counter::PairsProcessed, xi);
    crate::invariants::debug_check_cluster_array(&c);
    crate::invariants::debug_check_level_points(&levels);
    let dendrogram = Dendrogram::from_merges(m, merges);
    crate::invariants::debug_check_dendrogram(&dendrogram);
    CoarseResult {
        output: SweepOutput::new(dendrogram, slot_of_edge),
        epochs,
        levels,
        pairs_total,
        pairs_processed: xi,
        report: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::compute_similarities;
    use crate::reference::canonical_labels;
    use crate::sweep::{sweep, SweepConfig};
    use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};
    use linkclust_graph::WeightedGraph;

    fn sims_for(g: &WeightedGraph) -> PairSimilarities {
        compute_similarities(g).into_sorted()
    }

    fn default_small() -> CoarseConfig {
        CoarseConfig { phi: 5, initial_chunk: 4, ..Default::default() }
    }

    #[test]
    fn runs_to_phi_or_exhaustion() {
        let g = gnm(50, 250, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let sims = sims_for(&g);
        let cfg = default_small();
        let r = coarse_sweep(&g, &sims, cfg);
        let final_clusters = r.dendrogram().final_cluster_count();
        assert!(
            final_clusters <= cfg.phi || r.processed_fraction() >= 1.0 - 1e-9,
            "stopped early with {final_clusters} clusters at {}",
            r.processed_fraction()
        );
    }

    #[test]
    fn soundness_outside_forced_epochs() {
        for seed in 0..4 {
            let g = gnm(60, 300, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = sims_for(&g);
            let cfg = default_small();
            let r = coarse_sweep(&g, &sims, cfg);
            let rate = r.max_unforced_merge_rate();
            assert!(rate <= cfg.gamma + 1e-9, "rate {rate} exceeds gamma (seed {seed})");
        }
    }

    #[test]
    fn partition_at_full_processing_matches_fine_sweep() {
        // With phi = 1 the coarse sweep must process everything, so its
        // final partition equals the fine-grained sweep's.
        for seed in 0..3 {
            let g = gnm(30, 120, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = sims_for(&g);
            let cfg = CoarseConfig { phi: 1, initial_chunk: 6, ..Default::default() };
            let r = coarse_sweep(&g, &sims, cfg);
            let fine = sweep(&g, &sims, SweepConfig::default());
            let a: Vec<usize> = r.output().edge_assignments().iter().map(|&x| x as usize).collect();
            let b: Vec<usize> = fine.edge_assignments().iter().map(|&x| x as usize).collect();
            assert_eq!(canonical_labels(&a), canonical_labels(&b), "seed {seed}");
        }
    }

    #[test]
    fn phi_termination_skips_tail_pairs() {
        let g = barabasi_albert(120, 6, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 5);
        let sims = sims_for(&g);
        let cfg = CoarseConfig { phi: 40, initial_chunk: 16, ..Default::default() };
        let r = coarse_sweep(&g, &sims, cfg);
        if r.dendrogram().final_cluster_count() <= cfg.phi {
            assert!(
                r.processed_fraction() < 1.0,
                "expected early termination to skip pairs; processed {}",
                r.processed_fraction()
            );
        }
    }

    #[test]
    fn epoch_telemetry_is_consistent() {
        let g = gnm(60, 280, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 9);
        let sims = sims_for(&g);
        let r = coarse_sweep(&g, &sims, default_small());
        let b = r.epoch_breakdown();
        let committed = b.head_fresh + b.tail_fresh + b.reused;
        assert_eq!(committed, r.levels().len());
        assert_eq!(b.head_fresh + b.tail_fresh + b.reused + b.rollback, r.epochs().len());
        // Epoch indices are sequential; levels strictly increase.
        for (i, e) in r.epochs().iter().enumerate() {
            assert_eq!(e.index as usize, i);
        }
        let mut prev = 0;
        for l in r.levels() {
            assert_eq!(l.level, prev + 1);
            prev = l.level;
        }
        // Cluster counts are non-increasing along levels.
        for w in r.levels().windows(2) {
            assert!(w[0].clusters >= w[1].clusters);
        }
    }

    #[test]
    fn small_initial_chunk_triggers_head_growth() {
        // A tiny δ0 forces many head epochs with exponential growth; the
        // run must still terminate and produce non-decreasing ξ.
        let g = gnm(40, 200, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
        let sims = sims_for(&g);
        let cfg = CoarseConfig { phi: 2, initial_chunk: 1, eta0: 8.0, ..Default::default() };
        let r = coarse_sweep(&g, &sims, cfg);
        let mut prev = 0;
        for l in r.levels() {
            assert!(l.pairs >= prev);
            prev = l.pairs;
        }
        assert!(r.dendrogram().merge_count() > 0);
    }

    #[test]
    fn dense_graph_exercises_rollback() {
        // A dense graph has huge similarity ties; big initial chunks
        // overshoot γ and must roll back.
        let g = gnm(30, 200, WeightMode::Uniform { lo: 0.9, hi: 1.1 }, 4);
        let sims = sims_for(&g);
        let cfg =
            CoarseConfig { gamma: 1.2, phi: 3, initial_chunk: 64, eta0: 8.0, ..Default::default() };
        let r = coarse_sweep(&g, &sims, cfg);
        let b = r.epoch_breakdown();
        assert!(b.rollback > 0, "expected rollbacks on a dense graph: {b:?}");
    }

    #[test]
    fn reused_states_commit_correct_partitions() {
        // Whatever path the mode machine takes, cutting the coarse
        // dendrogram at its last level must equal the fine-grained
        // partition cut at the same number of clusters.
        for seed in 0..3 {
            let g = gnm(40, 180, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, seed);
            let sims = sims_for(&g);
            let cfg = CoarseConfig { gamma: 1.5, phi: 8, initial_chunk: 8, ..Default::default() };
            let r = coarse_sweep(&g, &sims, cfg);
            // Replay fine-grained merges until the same cluster count and
            // compare partitions.
            let target = r.dendrogram().final_cluster_count();
            let fine = sweep(&g, &sims, SweepConfig::default());
            let total = fine.dendrogram().edge_count();
            let merges_needed = total - target;
            let coarse_labels: Vec<usize> =
                r.output().edge_assignments().iter().map(|&x| x as usize).collect();
            let fine_labels: Vec<usize> = fine
                .edge_assignments_at_level(merges_needed as u32)
                .iter()
                .map(|&x| x as usize)
                .collect();
            assert_eq!(
                canonical_labels(&coarse_labels),
                canonical_labels(&fine_labels),
                "seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_gamma_below_one() {
        let g = gnm(10, 20, WeightMode::Unit, 0);
        let sims = sims_for(&g);
        coarse_sweep(&g, &sims, CoarseConfig { gamma: 0.5, ..Default::default() });
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = linkclust_graph::GraphBuilder::new().build();
        let sims = sims_for(&g);
        let r = coarse_sweep(&g, &sims, CoarseConfig::default());
        assert_eq!(r.dendrogram().merge_count(), 0);
        assert_eq!(r.processed_fraction(), 0.0);
    }
}
