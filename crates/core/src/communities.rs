//! Link communities: interpreting an edge partition as overlapping
//! vertex communities.
//!
//! The point of clustering *links* instead of vertices (Ahn et al.;
//! §I of the paper) is that a vertex belongs to every community that one
//! of its edges belongs to — community overlap falls out naturally.
//! This module turns the flat edge labelling produced by a sweep cut
//! into that overlapping structure.

use std::collections::HashMap;

use linkclust_graph::{EdgeId, VertexId, WeightedGraph};

/// A set of link communities over a graph: for each community, its edges
/// and its (possibly shared) vertices.
///
/// # Examples
///
/// ```
/// use linkclust_graph::GraphBuilder;
/// use linkclust_core::{communities::LinkCommunities, LinkClustering};
///
/// // Two triangles sharing vertex 2.
/// let g = GraphBuilder::from_edges(5, &[
///     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
///     (2, 3, 1.0), (3, 4, 1.0), (2, 4, 1.0),
/// ])?.build();
/// let result = LinkClustering::new().run(&g);
/// let cut = result.dendrogram().best_density_cut(&g).unwrap();
/// let labels = result.output().edge_assignments_at_level(cut.level);
/// let comms = LinkCommunities::from_edge_labels(&g, &labels);
///
/// assert_eq!(comms.len(), 2);
/// // Vertex 2 overlaps both communities.
/// assert_eq!(comms.communities_of(linkclust_graph::VertexId::new(2)).len(), 2);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct LinkCommunities {
    communities: Vec<Community>,
    membership: Vec<Vec<u32>>, // vertex index -> community indices
    community_of_edge: Vec<u32>,
}

/// One link community: its edges and induced vertices.
#[derive(Clone, PartialEq, Debug)]
pub struct Community {
    /// The original cluster label this community was built from.
    pub label: u32,
    /// Member edges, in id order.
    pub edges: Vec<EdgeId>,
    /// Induced vertices, in id order.
    pub vertices: Vec<VertexId>,
}

impl Community {
    /// Number of member edges (`m_c`).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of induced vertices (`n_c`).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The community's link density `(m_c − (n_c−1)) / ((n_c−2)(n_c−1)/2)`
    /// (the `D_c` of partition density), or 0 for trivial communities.
    #[must_use]
    pub fn link_density(&self) -> f64 {
        let (m, n) = (self.edge_count() as f64, self.vertex_count() as f64);
        if self.vertex_count() <= 2 {
            0.0
        } else {
            (m - (n - 1.0)) / ((n - 2.0) * (n - 1.0) / 2.0)
        }
    }
}

impl LinkCommunities {
    /// Groups the edges of `g` by `labels` (one label per edge, as
    /// produced by
    /// [`SweepOutput::edge_assignments_at_level`](crate::sweep::SweepOutput::edge_assignments_at_level)).
    ///
    /// Communities are ordered by decreasing edge count (ties by label).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != g.edge_count()`.
    #[must_use]
    pub fn from_edge_labels(g: &WeightedGraph, labels: &[u32]) -> Self {
        assert_eq!(labels.len(), g.edge_count(), "one label per edge required");
        let mut by_label: HashMap<u32, Vec<EdgeId>> = HashMap::new();
        for (id, _) in g.edges() {
            by_label.entry(labels[id.index()]).or_default().push(id);
        }
        let mut communities: Vec<Community> = by_label
            .into_iter()
            .map(|(label, edges)| {
                let mut vertices: Vec<VertexId> = edges
                    .iter()
                    .flat_map(|&e| {
                        let edge = g.edge(e);
                        [edge.source, edge.target]
                    })
                    .collect();
                vertices.sort_unstable();
                vertices.dedup();
                Community { label, edges, vertices }
            })
            .collect();
        communities
            .sort_by(|a, b| b.edges.len().cmp(&a.edges.len()).then_with(|| a.label.cmp(&b.label)));

        let mut membership = vec![Vec::new(); g.vertex_count()];
        let mut community_of_edge = vec![0u32; g.edge_count()];
        for (ci, c) in communities.iter().enumerate() {
            for &v in &c.vertices {
                membership[v.index()].push(ci as u32);
            }
            for &e in &c.edges {
                community_of_edge[e.index()] = ci as u32;
            }
        }
        LinkCommunities { communities, membership, community_of_edge }
    }

    /// Number of communities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// Returns `true` if there are no communities (edgeless graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// The communities, largest (by edge count) first.
    #[must_use]
    pub fn communities(&self) -> &[Community] {
        &self.communities
    }

    /// The communities (by index into [`communities`](Self::communities))
    /// that `v` belongs to — more than one for overlap vertices.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn communities_of(&self, v: VertexId) -> &[u32] {
        &self.membership[v.index()]
    }

    /// The community index of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[must_use]
    pub fn community_of_edge(&self, e: EdgeId) -> u32 {
        self.community_of_edge[e.index()]
    }

    /// Vertices belonging to more than one community, in id order.
    #[must_use]
    pub fn overlap_vertices(&self) -> Vec<VertexId> {
        self.membership
            .iter()
            .enumerate()
            .filter(|(_, cs)| cs.len() > 1)
            .map(|(i, _)| VertexId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkClustering;
    use linkclust_graph::GraphBuilder;

    fn two_triangles() -> WeightedGraph {
        GraphBuilder::from_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 1.0)],
        )
        .unwrap()
        .build()
    }

    #[test]
    fn overlap_vertex_is_in_both_communities() {
        let g = two_triangles();
        let result = LinkClustering::new().run(&g);
        let cut = result.dendrogram().best_density_cut(&g).unwrap();
        let labels = result.output().edge_assignments_at_level(cut.level);
        let comms = LinkCommunities::from_edge_labels(&g, &labels);
        assert_eq!(comms.len(), 2);
        assert_eq!(comms.overlap_vertices(), vec![VertexId::new(2)]);
        for v in [0usize, 1, 3, 4] {
            assert_eq!(comms.communities_of(VertexId::new(v)).len(), 1, "v{v}");
        }
    }

    #[test]
    fn community_metrics() {
        let g = two_triangles();
        let labels = vec![0, 0, 0, 3, 3, 3];
        let comms = LinkCommunities::from_edge_labels(&g, &labels);
        for c in comms.communities() {
            assert_eq!(c.edge_count(), 3);
            assert_eq!(c.vertex_count(), 3);
            assert!((c.link_density() - 1.0).abs() < 1e-12, "triangles are maximal-density");
        }
    }

    #[test]
    fn ordering_is_largest_first() {
        let g = GraphBuilder::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)],
        )
        .unwrap()
        .build();
        let labels = vec![7, 7, 7, 9, 9];
        let comms = LinkCommunities::from_edge_labels(&g, &labels);
        assert_eq!(comms.communities()[0].label, 7);
        assert_eq!(comms.communities()[0].edge_count(), 3);
        assert_eq!(comms.community_of_edge(EdgeId::new(4)), 1);
    }

    #[test]
    fn singleton_labels_make_singleton_communities() {
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap().build();
        let comms = LinkCommunities::from_edge_labels(&g, &[0, 1]);
        assert_eq!(comms.len(), 2);
        assert!(comms.overlap_vertices().is_empty());
        assert_eq!(comms.communities()[0].link_density(), 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let comms = LinkCommunities::from_edge_labels(&g, &[]);
        assert!(comms.is_empty());
    }
}
