//! Dendrograms over edge clusters.
//!
//! The sweeping phase emits merge events `r: c₁, c₂ → c_min` (Eq. 5).
//! A [`Dendrogram`] records the full sequence; levels are strictly
//! increasing for fine-grained clustering and shared by many merges for
//! coarse-grained clustering (§V). Cutting the dendrogram at a level
//! yields a flat partition of the edges — a set of *link communities* —
//! whose quality can be measured with the partition density of Ahn et al.

use linkclust_graph::{EdgeId, GraphView};

use crate::unionfind::UnionFind;

/// One merge event of Eq. 5: at `level`, clusters `left` and `right`
/// became `into = min(left, right)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MergeRecord {
    /// The dendrogram level `r` of the merge. Fine-grained sweeps
    /// increment the level for every merge; coarse-grained sweeps assign
    /// all merges of a chunk the same level.
    pub level: u32,
    /// Root of the first merged cluster.
    pub left: u32,
    /// Root of the second merged cluster.
    pub right: u32,
    /// The surviving cluster id, `min(left, right)`.
    pub into: u32,
}

/// The dendrogram produced by a sweep: the number of edges being
/// clustered plus the ordered merge sequence.
///
/// # Examples
///
/// ```
/// use linkclust_graph::GraphBuilder;
/// use linkclust_core::LinkClustering;
///
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])?.build();
/// let d = LinkClustering::new().run(&g).into_dendrogram();
/// // A unit triangle collapses into a single link community.
/// assert_eq!(d.final_cluster_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Dendrogram {
    edge_count: usize,
    merges: Vec<MergeRecord>,
}

impl Dendrogram {
    /// Creates a dendrogram from a merge sequence.
    ///
    /// # Panics
    ///
    /// Panics if levels are not non-decreasing or a merge references an
    /// out-of-range edge index.
    #[must_use]
    pub fn from_merges(edge_count: usize, merges: Vec<MergeRecord>) -> Self {
        let mut prev = 0;
        for m in &merges {
            assert!(m.level >= prev, "merge levels must be non-decreasing");
            assert!(
                (m.left as usize) < edge_count && (m.right as usize) < edge_count,
                "merge references edge beyond {edge_count}"
            );
            assert_eq!(m.into, m.left.min(m.right), "surviving id must be the smaller root");
            prev = m.level;
        }
        Dendrogram { edge_count, merges }
    }

    /// Number of edges being clustered.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of merge events.
    #[must_use]
    pub fn merge_count(&self) -> u64 {
        self.merges.len() as u64
    }

    /// The merge events, in order.
    #[must_use]
    pub fn merges(&self) -> &[MergeRecord] {
        &self.merges
    }

    /// The highest level (0 if no merges happened).
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.merges.last().map_or(0, |m| m.level)
    }

    /// Cluster count after all merges: `|E| −` number of merges.
    #[must_use]
    pub fn final_cluster_count(&self) -> usize {
        self.edge_count - self.merges.len()
    }

    /// Edge-cluster assignments after replaying merges up to and
    /// including `level`. Labels follow the paper's convention: a
    /// cluster is named after its smallest edge index.
    #[must_use]
    pub fn assignments_at_level(&self, level: u32) -> Vec<u32> {
        let mut uf = UnionFind::new(self.edge_count);
        for m in &self.merges {
            if m.level > level {
                break;
            }
            uf.union(m.left as usize, m.right as usize);
        }
        uf.assignments()
    }

    /// Edge-cluster assignments after all merges.
    #[must_use]
    pub fn final_assignments(&self) -> Vec<u32> {
        self.assignments_at_level(u32::MAX)
    }

    /// Cluster count after replaying merges up to and including `level`.
    #[must_use]
    pub fn cluster_count_at_level(&self, level: u32) -> usize {
        let merged = self.merges.iter().take_while(|m| m.level <= level).count();
        self.edge_count - merged
    }

    /// For every distinct level, the cluster count after completing that
    /// level — the curve of Fig. 2(2).
    #[must_use]
    pub fn cluster_counts_per_level(&self) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        let mut remaining = self.edge_count;
        let mut i = 0;
        while i < self.merges.len() {
            let level = self.merges[i].level;
            while i < self.merges.len() && self.merges[i].level == level {
                remaining -= 1;
                i += 1;
            }
            out.push((level, remaining));
        }
        out
    }

    /// The partition-density profile: one point per distinct level, with
    /// the cluster count and partition density after completing that
    /// level, replaying the merge sequence once with incremental
    /// bookkeeping. The implicit starting point (level 0, every edge a
    /// singleton, density 0) is not included.
    ///
    /// [`best_density_cut`](Self::best_density_cut) is a fold over this
    /// profile, so the two are bit-identical by construction — the
    /// contract the serialized `DendrogramIndex` in `linkclust-serve`
    /// relies on.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have exactly `edge_count` edges.
    #[must_use]
    pub fn density_profile<G: GraphView + ?Sized>(&self, g: &G) -> Vec<DensityCut> {
        assert_eq!(g.edge_count(), self.edge_count, "dendrogram does not match graph");
        let m_total = self.edge_count as f64;
        // Per-cluster state, keyed by current root.
        let mut edge_counts: Vec<u64> = vec![1; self.edge_count];
        let mut vertex_sets: Vec<std::collections::HashSet<u32>> = (0..self.edge_count)
            .map(|e| {
                let (s, t) = g.edge_endpoints(EdgeId::new(e));
                [u32::from(s), u32::from(t)].into_iter().collect()
            })
            .collect();
        let mut uf = UnionFind::new(self.edge_count);
        // Σ m_c · D_c over clusters; singletons contribute 0.
        let mut sum = 0.0;
        let mut profile = Vec::new();
        let mut i = 0;
        while i < self.merges.len() {
            let level = self.merges[i].level;
            while i < self.merges.len() && self.merges[i].level == level {
                let m = self.merges[i];
                i += 1;
                let ra = uf.find(m.left as usize) as usize;
                let rb = uf.find(m.right as usize) as usize;
                debug_assert_ne!(ra, rb, "dendrogram merges distinct clusters");
                sum -= density_term(edge_counts[ra], vertex_sets[ra].len());
                sum -= density_term(edge_counts[rb], vertex_sets[rb].len());
                uf.union(ra, rb);
                let root = uf.find(ra) as usize;
                let other = if root == ra { rb } else { ra };
                edge_counts[root] = edge_counts[ra] + edge_counts[rb];
                // Merge the smaller vertex set into the larger, then move
                // the result to the surviving root.
                let (mut big, small) = if vertex_sets[ra].len() >= vertex_sets[rb].len() {
                    (std::mem::take(&mut vertex_sets[ra]), std::mem::take(&mut vertex_sets[rb]))
                } else {
                    (std::mem::take(&mut vertex_sets[rb]), std::mem::take(&mut vertex_sets[ra]))
                };
                big.extend(small);
                sum += density_term(edge_counts[root], big.len());
                vertex_sets[root] = big;
                edge_counts[other] = 0;
            }
            let density = 2.0 / m_total * sum;
            profile.push(DensityCut { level, density, cluster_count: self.edge_count - i });
        }
        profile
    }

    /// Finds the cut (level) maximizing partition density: a fold over
    /// [`density_profile`](Self::density_profile) preferring the
    /// *earliest* level on exact ties, starting from the implicit
    /// level-0 cut (all singletons, density 0).
    ///
    /// Returns `None` for an edgeless graph.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have exactly `edge_count` edges.
    #[must_use]
    pub fn best_density_cut<G: GraphView + ?Sized>(&self, g: &G) -> Option<DensityCut> {
        if self.edge_count == 0 {
            assert_eq!(g.edge_count(), 0, "dendrogram does not match graph");
            return None;
        }
        let mut best = DensityCut { level: 0, density: 0.0, cluster_count: self.edge_count };
        for point in self.density_profile(g) {
            if point.density > best.density {
                best = point;
            }
        }
        Some(best)
    }
}

/// A dendrogram cut selected by partition density.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DensityCut {
    /// The level to cut at.
    pub level: u32,
    /// The partition density at that level.
    pub density: f64,
    /// The number of link communities at that level.
    pub cluster_count: usize,
}

/// One cluster's contribution `m_c · D_c` to the partition-density sum,
/// where `D_c = (m_c − (n_c−1)) / ((n_c−2)(n_c−1)/2) / 2` following Ahn
/// et al.; clusters spanning ≤ 2 vertices contribute 0.
fn density_term(m_c: u64, n_c: usize) -> f64 {
    if n_c <= 2 {
        return 0.0;
    }
    let m = m_c as f64;
    let n = n_c as f64;
    m * (m - (n - 1.0)) / ((n - 2.0) * (n - 1.0))
}

/// Computes the partition density of an arbitrary edge labelling over
/// `g`: `D = (2/M) Σ_c m_c (m_c − n_c + 1) / ((n_c − 2)(n_c − 1))`.
///
/// # Panics
///
/// Panics if `labels.len() != g.edge_count()`.
#[must_use]
pub fn partition_density<G: GraphView + ?Sized>(g: &G, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), g.edge_count(), "one label per edge required");
    if labels.is_empty() {
        return 0.0;
    }
    use std::collections::{HashMap, HashSet};
    let mut edges_of: HashMap<u32, u64> = HashMap::new();
    let mut verts_of: HashMap<u32, HashSet<u32>> = HashMap::new();
    for (e, &l) in labels.iter().enumerate().map(|(e, l)| (EdgeId::new(e), l)) {
        let (source, target) = g.edge_endpoints(e);
        *edges_of.entry(l).or_default() += 1;
        let set = verts_of.entry(l).or_default();
        set.insert(source.into());
        set.insert(target.into());
    }
    let sum: f64 = edges_of.iter().map(|(l, &m_c)| density_term(m_c, verts_of[l].len())).sum();
    2.0 / g.edge_count() as f64 * sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_graph::GraphBuilder;

    fn rec(level: u32, left: u32, right: u32) -> MergeRecord {
        MergeRecord { level, left, right, into: left.min(right) }
    }

    #[test]
    fn counts_and_levels() {
        let d = Dendrogram::from_merges(5, vec![rec(1, 0, 1), rec(2, 2, 3), rec(3, 0, 2)]);
        assert_eq!(d.edge_count(), 5);
        assert_eq!(d.merge_count(), 3);
        assert_eq!(d.levels(), 3);
        assert_eq!(d.final_cluster_count(), 2);
    }

    #[test]
    fn assignments_replay_partially() {
        let d = Dendrogram::from_merges(4, vec![rec(1, 0, 1), rec(2, 2, 3), rec(3, 0, 2)]);
        assert_eq!(d.assignments_at_level(0), vec![0, 1, 2, 3]);
        assert_eq!(d.assignments_at_level(1), vec![0, 0, 2, 3]);
        assert_eq!(d.assignments_at_level(2), vec![0, 0, 2, 2]);
        assert_eq!(d.final_assignments(), vec![0, 0, 0, 0]);
        assert_eq!(d.cluster_count_at_level(2), 2);
    }

    #[test]
    fn coarse_levels_share_counts() {
        let d = Dendrogram::from_merges(5, vec![rec(1, 0, 1), rec(1, 2, 3), rec(2, 0, 2)]);
        assert_eq!(d.cluster_counts_per_level(), vec![(1, 3), (2, 2)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_levels() {
        let _ = Dendrogram::from_merges(3, vec![rec(2, 0, 1), rec(1, 1, 2)]);
    }

    #[test]
    fn partition_density_of_clique_partition() {
        // Two disjoint unit triangles, each its own cluster: every
        // cluster has m_c = 3, n_c = 3 -> D_c term = 3*(3-2)/((1)(2)) = 1.5
        // D = 2/6 * (1.5 + 1.5) = 1.0 (maximal density: cliques).
        let g = GraphBuilder::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0)],
        )
        .unwrap()
        .build();
        let labels = vec![0, 0, 0, 3, 3, 3];
        assert!((partition_density(&g, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_density_of_singletons_is_zero() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap().build();
        assert_eq!(partition_density(&g, &[0, 1]), 0.0);
    }

    #[test]
    fn tree_cluster_has_zero_density() {
        // A path of 3 edges as one cluster: m_c = 3, n_c = 4 ->
        // m_c - (n_c - 1) = 0.
        let g =
            GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap().build();
        assert_eq!(partition_density(&g, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn best_cut_prefers_triangles_over_everything_merged() {
        // Two triangles plus a bridge. Cutting before the bridge merge
        // gives density 1; merging everything dilutes it.
        let g = GraphBuilder::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0)],
        )
        .unwrap()
        .build();
        let d = Dendrogram::from_merges(
            6,
            vec![rec(1, 0, 1), rec(2, 0, 2), rec(3, 3, 4), rec(4, 3, 5), rec(5, 0, 3)],
        );
        let cut = d.best_density_cut(&g).unwrap();
        assert_eq!(cut.level, 4);
        assert!((cut.density - 1.0).abs() < 1e-12);
        assert_eq!(cut.cluster_count, 2);
    }

    #[test]
    fn best_cut_density_matches_direct_computation() {
        use linkclust_graph::generate::{gnm, WeightMode};
        let g = gnm(12, 24, WeightMode::Unit, 3);
        // Arbitrary valid merge sequence: chain some edges together.
        let mut merges = Vec::new();
        let mut uf = UnionFind::new(24);
        let mut level = 0;
        for i in (1..20).step_by(2) {
            let (a, b) = (uf.min_of(i - 1), uf.min_of(i));
            if a != b {
                level += 1;
                merges.push(MergeRecord { level, left: a, right: b, into: a.min(b) });
                uf.union(a as usize, b as usize);
            }
        }
        let d = Dendrogram::from_merges(24, merges);
        let cut = d.best_density_cut(&g).unwrap();
        let direct = partition_density(&g, &d.assignments_at_level(cut.level));
        assert!((cut.density - direct).abs() < 1e-9);
    }

    #[test]
    fn empty_dendrogram() {
        let d = Dendrogram::from_merges(0, vec![]);
        assert_eq!(d.final_cluster_count(), 0);
        assert_eq!(d.levels(), 0);
        let g = GraphBuilder::new().build();
        assert!(d.best_density_cut(&g).is_none());
    }
}
