//! Configuration validation errors.
//!
//! Every facade and builder constructor validates its inputs and returns
//! a [`ConfigError`] instead of panicking, so misconfiguration is
//! recoverable at the API boundary. The low-level free functions
//! ([`coarse_sweep`](crate::coarse::coarse_sweep) and friends) still
//! panic on invalid input — they sit below the validation layer and
//! document that contract.

use std::fmt;

/// A rejected clustering configuration, or a failure to deliver a
/// requested run artifact (e.g. the trace file).
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The thread count was zero.
    ZeroThreads,
    /// The terminal cluster count φ was zero.
    ZeroPhi,
    /// The initial chunk size δ₀ was zero.
    ZeroChunk,
    /// The soundness bound γ was below 1 (or not finite).
    InvalidGamma(
        /// The rejected value.
        f64,
    ),
    /// The head growth factor η₀ was not above 1 (or not finite).
    InvalidEta(
        /// The rejected value.
        f64,
    ),
    /// The facade and the [`CoarseConfig`](crate::coarse::CoarseConfig)
    /// specify different explicit edge orders.
    EdgeOrderConflict,
    /// Writing the requested Chrome trace file failed. The clustering
    /// itself completed; only the artifact is missing.
    TraceWrite {
        /// Path the trace was meant to be written to.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "need at least one thread"),
            ConfigError::ZeroPhi => write!(f, "phi (terminal cluster count) must be positive"),
            ConfigError::ZeroChunk => write!(f, "initial chunk size must be positive"),
            ConfigError::InvalidGamma(g) => {
                write!(f, "gamma must be a finite value of at least 1 (got {g})")
            }
            ConfigError::InvalidEta(e) => {
                write!(f, "eta0 must be a finite value exceeding 1 (got {e})")
            }
            ConfigError::EdgeOrderConflict => write!(
                f,
                "conflicting edge orders: the facade and the CoarseConfig both set an \
                 explicit edge_order, and they differ"
            ),
            ConfigError::TraceWrite { path, message } => {
                write!(f, "failed to write trace file {path}: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_parameter() {
        assert!(ConfigError::ZeroThreads.to_string().contains("thread"));
        assert!(ConfigError::ZeroPhi.to_string().contains("phi"));
        assert!(ConfigError::ZeroChunk.to_string().contains("chunk"));
        assert!(ConfigError::InvalidGamma(0.5).to_string().contains("gamma"));
        assert!(ConfigError::InvalidEta(1.0).to_string().contains("eta0"));
        assert!(ConfigError::EdgeOrderConflict.to_string().contains("edge_order"));
        let e = ConfigError::TraceWrite {
            path: "/no/such/dir/t.json".to_string(),
            message: "permission denied".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("/no/such/dir/t.json") && msg.contains("permission denied"));
    }

    #[test]
    fn error_is_send_sync_and_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<ConfigError>();
    }
}
