//! Partition-comparison metrics.
//!
//! Link clustering is usually judged by how well the recovered edge
//! partition matches a known (planted) community structure. This module
//! implements the standard external metrics — Rand index, adjusted Rand
//! index, and normalized mutual information — over flat labellings such
//! as those produced by
//! [`SweepOutput::edge_assignments_at_level`](crate::sweep::SweepOutput::edge_assignments_at_level).
//!
//! All metrics are label-invariant (renaming clusters does not change
//! the score).

use std::collections::HashMap;

/// The contingency table between two labellings of the same items.
#[derive(Clone, PartialEq, Debug)]
pub struct Contingency {
    /// Joint counts `n_{ij}`: items with label `i` in A and `j` in B.
    cells: HashMap<(u32, u32), u64>,
    /// Row sums `a_i` (cluster sizes of A).
    rows: HashMap<u32, u64>,
    /// Column sums `b_j` (cluster sizes of B).
    cols: HashMap<u32, u64>,
    /// Total item count.
    n: u64,
}

impl Contingency {
    /// Builds the table from two labellings.
    ///
    /// # Panics
    ///
    /// Panics if the labellings have different lengths.
    #[must_use]
    pub fn new(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "labellings must cover the same items");
        let mut cells: HashMap<(u32, u32), u64> = HashMap::new();
        let mut rows: HashMap<u32, u64> = HashMap::new();
        let mut cols: HashMap<u32, u64> = HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            *cells.entry((x, y)).or_default() += 1;
            *rows.entry(x).or_default() += 1;
            *cols.entry(y).or_default() += 1;
        }
        Contingency { cells, rows, cols, n: a.len() as u64 }
    }

    /// Number of items.
    #[must_use]
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// Number of clusters in the first labelling.
    #[must_use]
    pub fn cluster_count_a(&self) -> usize {
        self.rows.len()
    }

    /// Number of clusters in the second labelling.
    #[must_use]
    pub fn cluster_count_b(&self) -> usize {
        self.cols.len()
    }
}

fn choose2(x: u64) -> f64 {
    (x as f64) * (x.saturating_sub(1) as f64) / 2.0
}

/// The Rand index: the fraction of item pairs on which the two
/// labellings agree (same-cluster in both, or split in both). 1.0 means
/// identical partitions.
///
/// # Examples
///
/// ```
/// use linkclust_core::evaluate::rand_index;
///
/// assert_eq!(rand_index(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
/// assert!(rand_index(&[0, 0, 1, 1], &[0, 1, 0, 1]) < 0.5);
/// ```
#[must_use]
pub fn rand_index(a: &[u32], b: &[u32]) -> f64 {
    let t = Contingency::new(a, b);
    if t.n < 2 {
        return 1.0;
    }
    let total = choose2(t.n);
    let sum_cells: f64 = t.cells.values().map(|&c| choose2(c)).sum();
    let sum_rows: f64 = t.rows.values().map(|&c| choose2(c)).sum();
    let sum_cols: f64 = t.cols.values().map(|&c| choose2(c)).sum();
    // agreements = pairs together in both + pairs apart in both
    let together_both = sum_cells;
    let apart_both = total - sum_rows - sum_cols + sum_cells;
    (together_both + apart_both) / total
}

/// The adjusted Rand index (Hubert & Arabie): Rand index corrected for
/// chance; 1.0 for identical partitions, ~0 for independent ones.
#[must_use]
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    let t = Contingency::new(a, b);
    if t.n < 2 {
        return 1.0;
    }
    let total = choose2(t.n);
    let sum_cells: f64 = t.cells.values().map(|&c| choose2(c)).sum();
    let sum_rows: f64 = t.rows.values().map(|&c| choose2(c)).sum();
    let sum_cols: f64 = t.cols.values().map(|&c| choose2(c)).sum();
    let expected = sum_rows * sum_cols / total;
    let max = 0.5 * (sum_rows + sum_cols);
    if (max - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_cells - expected) / (max - expected)
}

/// Normalized mutual information with arithmetic-mean normalization:
/// `NMI = 2·I(A;B) / (H(A) + H(B))`; 1.0 for identical partitions, 0 for
/// independent ones. Returns 1.0 when both partitions are trivial (a
/// single cluster each).
#[must_use]
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    let t = Contingency::new(a, b);
    if t.n == 0 {
        return 1.0;
    }
    let n = t.n as f64;
    let mut h_a = 0.0;
    for &c in t.rows.values() {
        let p = c as f64 / n;
        h_a -= p * p.ln();
    }
    let mut h_b = 0.0;
    for &c in t.cols.values() {
        let p = c as f64 / n;
        h_b -= p * p.ln();
    }
    if h_a + h_b < 1e-12 {
        return 1.0; // both trivial
    }
    let mut mi = 0.0;
    for (&(i, j), &c) in &t.cells {
        let p_ij = c as f64 / n;
        let p_i = t.rows[&i] as f64 / n;
        let p_j = t.cols[&j] as f64 / n;
        mi += p_ij * (p_ij / (p_i * p_j)).ln();
    }
    2.0 * mi / (h_a + h_b)
}

/// The pair-counting F1 score: precision and recall over item pairs
/// placed together, with `a` as the ground truth — `precision` is the
/// fraction of `b`'s together-pairs that are truly together, `recall`
/// the fraction of true together-pairs that `b` recovers, and F1 their
/// harmonic mean. 1.0 for identical partitions. Returns 1.0 when
/// neither labelling groups any pair, and 0.0 when exactly one does.
///
/// The scale ladder reports this alongside NMI when scoring recovered
/// link communities against planted ground truth.
///
/// # Examples
///
/// ```
/// use linkclust_core::evaluate::pair_f1;
///
/// assert_eq!(pair_f1(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
/// assert!(pair_f1(&[0, 0, 1, 1], &[0, 1, 0, 1]) < 0.5);
/// ```
#[must_use]
pub fn pair_f1(a: &[u32], b: &[u32]) -> f64 {
    let t = Contingency::new(a, b);
    let together_both: f64 = t.cells.values().map(|&c| choose2(c)).sum();
    let together_a: f64 = t.rows.values().map(|&c| choose2(c)).sum();
    let together_b: f64 = t.cols.values().map(|&c| choose2(c)).sum();
    if together_a == 0.0 && together_b == 0.0 {
        return 1.0;
    }
    if together_a == 0.0 || together_b == 0.0 {
        return 0.0;
    }
    let precision = together_both / together_b;
    let recall = together_both / together_a;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Normalized mutual information for **overlapping covers**
/// (Lancichinetti, Fortunato & Kertész, 2009): each community is a set
/// of vertex indices, and a vertex may belong to any number of
/// communities. Returns 1.0 for identical covers and ~0 for unrelated
/// ones.
///
/// `n` is the total number of vertices the covers are defined over.
///
/// # Panics
///
/// Panics if a community references a vertex `≥ n`, or if either cover
/// is empty while the other is not... (both empty ⇒ 1.0).
#[must_use]
pub fn overlapping_nmi(x: &[Vec<u32>], y: &[Vec<u32>], n: usize) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    assert!(!x.is_empty() && !y.is_empty(), "covers must be non-empty to compare");
    let xs: Vec<FixedBitSet> = x.iter().map(|c| FixedBitSet::from_indices(c, n)).collect();
    let ys: Vec<FixedBitSet> = y.iter().map(|c| FixedBitSet::from_indices(c, n)).collect();
    let nx = normalized_conditional(&xs, &ys, n);
    let ny = normalized_conditional(&ys, &xs, n);
    1.0 - 0.5 * (nx + ny)
}

/// `N(X|Y)`: the mean over communities `Xᵢ` of
/// `min_j H(Xᵢ|Yⱼ) / H(Xᵢ)` (LFK Eq. B.10-B.14).
fn normalized_conditional(xs: &[FixedBitSet], ys: &[FixedBitSet], n: usize) -> f64 {
    let nf = n as f64;
    let h = |count: usize| -> f64 {
        if count == 0 {
            0.0
        } else {
            let p = count as f64 / nf;
            -p * p.log2()
        }
    };
    let mut total = 0.0;
    for xi in xs {
        let cx = xi.count();
        let h_x = h(cx) + h(n - cx);
        if h_x == 0.0 {
            // Degenerate community (everything or nothing): perfectly
            // predictable, contributes 0 uncertainty.
            continue;
        }
        let mut best = f64::INFINITY;
        for yj in ys {
            let cy = yj.count();
            let d = xi.intersection_count(yj); // x ∧ y
            let c = cx - d; // x ∧ ¬y
            let b = cy - d; // ¬x ∧ y
            let a = n + d - cx - cy; // ¬x ∧ ¬y (n+d ≥ cx+cy by inclusion–exclusion)
                                     // LFK admissibility: the joint must explain more than it
                                     // confuses, otherwise Yj carries no information about Xi.
            if h(d) + h(a) < h(b) + h(c) {
                continue;
            }
            let h_joint = h(a) + h(b) + h(c) + h(d);
            let h_y = h(cy) + h(n - cy);
            best = best.min(h_joint - h_y);
        }
        let conditional = if best.is_finite() { best } else { h_x };
        total += conditional / h_x;
    }
    total / xs.len() as f64
}

/// A minimal fixed-size bit set (no external dependency).
#[derive(Clone, Debug)]
struct FixedBitSet {
    words: Vec<u64>,
    ones: usize,
}

impl FixedBitSet {
    fn from_indices(indices: &[u32], n: usize) -> Self {
        let mut words = vec![0u64; n.div_ceil(64)];
        let mut ones = 0;
        for &i in indices {
            let i = i as usize;
            assert!(i < n, "vertex {i} out of cover range {n}");
            let (w, b) = (i / 64, i % 64);
            if words[w] & (1 << b) == 0 {
                words[w] |= 1 << b;
                ones += 1;
            }
        }
        FixedBitSet { words, ones }
    }

    fn count(&self) -> usize {
        self.ones
    }

    fn intersection_count(&self, other: &FixedBitSet) -> usize {
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = [0u32, 0, 1, 1, 2, 2];
        let b = [7u32, 7, 3, 3, 9, 9]; // same structure, renamed
        assert_eq!(rand_index(&a, &b), 1.0);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(pair_f1(&a, &b), 1.0);
    }

    #[test]
    fn pair_f1_edge_cases_and_symmetry() {
        // All-singleton vs all-singleton: vacuous agreement.
        assert_eq!(pair_f1(&[0, 1, 2], &[5, 6, 7]), 1.0);
        // One side groups pairs, the other none: zero recall or precision.
        assert_eq!(pair_f1(&[0, 0, 0], &[0, 1, 2]), 0.0);
        assert_eq!(pair_f1(&[0, 1, 2], &[0, 0, 0]), 0.0);
        // Orthogonal partitions of 4 items share no together-pair.
        assert_eq!(pair_f1(&[0, 0, 1, 1], &[0, 1, 0, 1]), 0.0);
        // Refinement: fine has 2 of coarse's 6+6 together-pairs per block.
        let coarse = [0u32, 0, 0, 0, 1, 1, 1, 1];
        let fine = [0u32, 0, 1, 1, 2, 2, 3, 3];
        let f = pair_f1(&coarse, &fine);
        // TP = 4, truth pairs = 12, predicted pairs = 4 → F1 = 8/16.
        assert!((f - 0.5).abs() < 1e-12, "{f}");
        let a = [0u32, 0, 1, 2, 2, 1, 0];
        let b = [1u32, 0, 1, 1, 2, 2, 0];
        assert!((pair_f1(&a, &b) - pair_f1(&b, &a)).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&pair_f1(&a, &b)));
    }

    #[test]
    fn orthogonal_partitions_score_low() {
        // a splits {0..3} as {01}{23}; b as {02}{13}: no pair agreement
        // on "together".
        let a = [0u32, 0, 1, 1];
        let b = [0u32, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b) <= 0.0 + 1e-12);
        assert!(normalized_mutual_information(&a, &b) < 0.3);
    }

    #[test]
    fn singletons_vs_one_cluster() {
        let a = [0u32, 1, 2, 3];
        let b = [0u32, 0, 0, 0];
        // No pairs agree as "together in both", none agree "apart in both".
        assert_eq!(rand_index(&a, &b), 0.0);
        assert!(normalized_mutual_information(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn ari_is_zero_mean_under_permutation() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let a: Vec<u32> = (0..200).map(|i| i % 4).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut total = 0.0;
        const TRIALS: usize = 50;
        for _ in 0..TRIALS {
            let mut b = a.clone();
            b.shuffle(&mut rng);
            total += adjusted_rand_index(&a, &b);
        }
        let mean = total / TRIALS as f64;
        assert!(mean.abs() < 0.05, "ARI should be ~0 under random relabelling, got {mean}");
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = [0u32, 0, 1, 2, 2, 1, 0];
        let b = [1u32, 0, 1, 1, 2, 2, 0];
        assert!((rand_index(&a, &b) - rand_index(&b, &a)).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
        assert!(
            (normalized_mutual_information(&a, &b) - normalized_mutual_information(&b, &a)).abs()
                < 1e-12
        );
    }

    #[test]
    fn refinement_scores_between_zero_and_one() {
        let coarse = [0u32, 0, 0, 0, 1, 1, 1, 1];
        let fine = [0u32, 0, 1, 1, 2, 2, 3, 3];
        for metric in [rand_index, adjusted_rand_index, normalized_mutual_information] {
            let v = metric(&coarse, &fine);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn contingency_counts() {
        let t = Contingency::new(&[0, 0, 1], &[0, 1, 1]);
        assert_eq!(t.item_count(), 3);
        assert_eq!(t.cluster_count_a(), 2);
        assert_eq!(t.cluster_count_b(), 2);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn rejects_length_mismatch() {
        let _ = Contingency::new(&[0], &[0, 1]);
    }

    #[test]
    fn overlapping_nmi_identical_covers() {
        let x = vec![vec![0, 1, 2], vec![2, 3, 4]];
        let v = overlapping_nmi(&x, &x, 5);
        assert!((v - 1.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn overlapping_nmi_renamed_covers() {
        let x = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let y = vec![vec![5, 4, 3], vec![2, 0, 1]]; // same sets, reordered
        let v = overlapping_nmi(&x, &y, 6);
        assert!((v - 1.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn overlapping_nmi_unrelated_covers_is_low() {
        // X splits 0..12 into thirds; Y splits orthogonally by residue.
        let x = vec![(0..4).collect(), (4..8).collect(), (8..12).collect::<Vec<u32>>()];
        let y = vec![
            (0..12).filter(|i| i % 3 == 0).collect::<Vec<u32>>(),
            (0..12).filter(|i| i % 3 == 1).collect(),
            (0..12).filter(|i| i % 3 == 2).collect(),
        ];
        let v = overlapping_nmi(&x, &y, 12);
        assert!(v < 0.2, "{v}");
    }

    #[test]
    fn overlapping_nmi_detects_partial_agreement() {
        let truth = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let close = vec![vec![0, 1, 2], vec![3, 4, 5, 6, 7]];
        let far = vec![vec![0, 7, 3, 5], vec![1, 2, 4, 6]];
        let v_close = overlapping_nmi(&truth, &close, 8);
        let v_far = overlapping_nmi(&truth, &far, 8);
        assert!(v_close > v_far, "close {v_close} vs far {v_far}");
    }

    #[test]
    fn overlapping_nmi_is_symmetric() {
        let x = vec![vec![0, 1, 2], vec![2, 3], vec![4, 5]];
        let y = vec![vec![0, 1], vec![2, 3, 4], vec![5]];
        let a = overlapping_nmi(&x, &y, 6);
        let b = overlapping_nmi(&y, &x, 6);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn overlapping_nmi_handles_overlap_vertices() {
        // Vertex 2 in both communities, in truth and in the estimate.
        let truth = vec![vec![0, 1, 2], vec![2, 3, 4]];
        let est = vec![vec![0, 1, 2], vec![2, 3, 4], vec![0, 4]];
        let v = overlapping_nmi(&truth, &est, 5);
        assert!(v > 0.5, "{v}");
    }

    #[test]
    fn overlapping_nmi_empty_covers() {
        assert_eq!(overlapping_nmi(&[], &[], 10), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of cover range")]
    fn overlapping_nmi_rejects_out_of_range() {
        let _ = overlapping_nmi(&[vec![10]], &[vec![0]], 5);
    }

    #[test]
    fn empty_labellings() {
        assert_eq!(rand_index(&[], &[]), 1.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
    }
}
