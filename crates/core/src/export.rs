//! Dendrogram export formats.
//!
//! Research users want to *look* at dendrograms: this module renders a
//! [`Dendrogram`] as Newick (readable by standard tree viewers) and as a
//! flat merge-list CSV.
//!
//! The tree renderers return a typed [`ExportError`] on structurally
//! invalid merge lists (a cluster merged while dead) instead of
//! panicking: dendrograms can now arrive from untrusted serialized
//! indexes (`linkclust-serve`), so malformed input must be a recoverable
//! error, never an abort.

use std::fmt::Write as _;

use crate::dendrogram::Dendrogram;

/// A structural defect found while walking a merge list for export.
///
/// [`Dendrogram::from_merges`] validates levels, ranges, and the
/// `into = min(left, right)` convention, but not *liveness*: a merge
/// list may reference a cluster id that an earlier merge already
/// consumed. Such a list cannot be rendered as a tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportError {
    /// Merge `merge_index` references `cluster`, but `cluster` was
    /// already consumed by an earlier merge and never re-created.
    DeadCluster {
        /// Position of the offending record in the merge list.
        merge_index: usize,
        /// The cluster id that was no longer live.
        cluster: u32,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ExportError::DeadCluster { merge_index, cluster } => write!(
                f,
                "merge {merge_index} references cluster {cluster}, which an earlier merge \
                 already consumed"
            ),
        }
    }
}

impl std::error::Error for ExportError {}

/// Renders the dendrogram in Newick format.
///
/// Leaves are the edge indices (`e0, e1, …`); each internal node's branch
/// length encodes the merge level. Clusters that never merge appear as
/// children of an artificial root with branch length 0.
///
/// # Examples
///
/// ```
/// use linkclust_core::{Dendrogram, MergeRecord, export::to_newick};
///
/// let d = Dendrogram::from_merges(3, vec![
///     MergeRecord { level: 1, left: 0, right: 1, into: 0 },
/// ]);
/// let newick = to_newick(&d)?;
/// assert!(newick.starts_with('(') && newick.ends_with(';'));
/// assert!(newick.contains("e2"));
/// # Ok::<(), linkclust_core::export::ExportError>(())
/// ```
///
/// # Errors
///
/// Returns [`ExportError::DeadCluster`] if `d` merges a cluster that is
/// no longer live (merged twice without an intervening merge re-creating
/// it); dendrograms produced by this crate's sweeps never do, but
/// deserialized merge lists are untrusted.
pub fn to_newick(d: &Dendrogram) -> Result<String, ExportError> {
    let n = d.edge_count();
    if n == 0 {
        return Ok(";".to_owned());
    }
    // Build the subtree expression for each live cluster incrementally.
    let mut expr: Vec<Option<String>> = (0..n).map(|i| Some(format!("e{i}"))).collect();
    for (idx, m) in d.merges().iter().enumerate() {
        let left = expr[m.left as usize]
            .take()
            .ok_or(ExportError::DeadCluster { merge_index: idx, cluster: m.left })?;
        let right = expr[m.right as usize]
            .take()
            .ok_or(ExportError::DeadCluster { merge_index: idx, cluster: m.right })?;
        expr[m.into as usize] = Some(format!("({left},{right}):{}", m.level));
    }
    let mut roots: Vec<String> = expr.into_iter().flatten().collect();
    Ok(if let [root] = roots.as_mut_slice() {
        format!("{};", std::mem::take(root))
    } else {
        format!("({});", roots.join(","))
    })
}

/// Renders the dendrogram as an ASCII tree (one line per node, children
/// indented under their merge), suitable for terminal inspection of
/// small dendrograms.
///
/// Each internal node is printed as `[level N]`; leaves as `eK`.
///
/// # Examples
///
/// ```
/// use linkclust_core::{Dendrogram, MergeRecord, export::to_ascii_tree};
///
/// let d = Dendrogram::from_merges(3, vec![
///     MergeRecord { level: 1, left: 1, right: 2, into: 1 },
///     MergeRecord { level: 2, left: 0, right: 1, into: 0 },
/// ]);
/// let tree = to_ascii_tree(&d)?;
/// assert!(tree.contains("[level 2]"));
/// assert!(tree.contains("e0"));
/// # Ok::<(), linkclust_core::export::ExportError>(())
/// ```
///
/// # Errors
///
/// Returns [`ExportError::DeadCluster`] if `d` merges a cluster that is
/// no longer live (merged twice without an intervening merge re-creating
/// it); dendrograms produced by this crate's sweeps never do, but
/// deserialized merge lists are untrusted.
pub fn to_ascii_tree(d: &Dendrogram) -> Result<String, ExportError> {
    #[derive(Clone)]
    enum Node {
        Leaf(usize),
        Merge { level: u32, children: Vec<Node> },
    }

    fn render(node: &Node, prefix: &str, last: bool, out: &mut String) {
        let connector = if prefix.is_empty() {
            ""
        } else if last {
            "`-- "
        } else {
            "|-- "
        };
        match node {
            Node::Leaf(i) => {
                let _ = writeln!(out, "{prefix}{connector}e{i}");
            }
            Node::Merge { level, children } => {
                let _ = writeln!(out, "{prefix}{connector}[level {level}]");
                let child_prefix = if prefix.is_empty() {
                    String::new()
                } else if last {
                    format!("{prefix}    ")
                } else {
                    format!("{prefix}|   ")
                };
                let deeper = if prefix.is_empty() { "    ".to_string() } else { child_prefix };
                for (i, c) in children.iter().enumerate() {
                    render(c, &deeper, i + 1 == children.len(), out);
                }
            }
        }
    }

    let n = d.edge_count();
    let mut nodes: Vec<Option<Node>> = (0..n).map(|i| Some(Node::Leaf(i))).collect();
    for (idx, m) in d.merges().iter().enumerate() {
        let left = nodes[m.left as usize]
            .take()
            .ok_or(ExportError::DeadCluster { merge_index: idx, cluster: m.left })?;
        let right = nodes[m.right as usize]
            .take()
            .ok_or(ExportError::DeadCluster { merge_index: idx, cluster: m.right })?;
        nodes[m.into as usize] = Some(Node::Merge { level: m.level, children: vec![left, right] });
    }
    let mut out = String::new();
    let roots: Vec<Node> = nodes.into_iter().flatten().collect();
    let many = roots.len() > 1;
    for (i, r) in roots.iter().enumerate() {
        if many {
            let _ = writeln!(out, "root {i}:");
        }
        render(r, "", i + 1 == roots.len(), &mut out);
    }
    Ok(out)
}

/// Renders the merge list as CSV (`level,left,right,into`).
#[must_use]
pub fn to_merge_csv(d: &Dendrogram) -> String {
    let mut out = String::from("level,left,right,into\n");
    for m in d.merges() {
        let _ = writeln!(out, "{},{},{},{}", m.level, m.left, m.right, m.into);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::MergeRecord;

    fn rec(level: u32, left: u32, right: u32) -> MergeRecord {
        MergeRecord { level, left, right, into: left.min(right) }
    }

    #[test]
    fn newick_of_full_merge() {
        let d = Dendrogram::from_merges(3, vec![rec(1, 1, 2), rec(2, 0, 1)]);
        assert_eq!(to_newick(&d).unwrap(), "(e0,(e1,e2):1):2;");
    }

    #[test]
    fn newick_with_multiple_roots() {
        let d = Dendrogram::from_merges(4, vec![rec(1, 0, 1)]);
        let s = to_newick(&d).unwrap();
        assert_eq!(s, "((e0,e1):1,e2,e3);");
    }

    #[test]
    fn newick_of_empty() {
        assert_eq!(to_newick(&Dendrogram::from_merges(0, vec![])).unwrap(), ";");
        assert_eq!(to_newick(&Dendrogram::from_merges(1, vec![])).unwrap(), "e0;");
    }

    #[test]
    fn hostile_merge_list_is_a_typed_error_not_a_panic() {
        // Merge 0 consumes cluster 1; merge 1 then references the dead
        // cluster 1 again. `from_merges` accepts this (levels are
        // non-decreasing, ids in range, into = min), so the exporters
        // must catch it themselves.
        let d = Dendrogram::from_merges(3, vec![rec(1, 0, 1), rec(2, 1, 2)]);
        assert_eq!(to_newick(&d), Err(ExportError::DeadCluster { merge_index: 1, cluster: 1 }),);
        assert_eq!(to_ascii_tree(&d), Err(ExportError::DeadCluster { merge_index: 1, cluster: 1 }),);
        // CSV is a flat dump with no tree invariant; it still renders.
        assert_eq!(to_merge_csv(&d).lines().count(), 3);
        let msg = to_newick(&d).unwrap_err().to_string();
        assert!(msg.contains("merge 1") && msg.contains("cluster 1"), "{msg}");
    }

    #[test]
    fn ascii_tree_structure() {
        let d = Dendrogram::from_merges(3, vec![rec(1, 1, 2), rec(2, 0, 1)]);
        let tree = to_ascii_tree(&d).unwrap();
        assert!(tree.contains("[level 2]"));
        assert!(tree.contains("[level 1]"));
        for leaf in ["e0", "e1", "e2"] {
            assert_eq!(tree.matches(leaf).count(), 1, "{leaf} in:\n{tree}");
        }
    }

    #[test]
    fn ascii_tree_multiple_roots() {
        let d = Dendrogram::from_merges(4, vec![rec(1, 0, 1)]);
        let tree = to_ascii_tree(&d).unwrap();
        assert!(tree.contains("root 0:"));
        assert!(tree.contains("root 2:"));
    }

    #[test]
    fn ascii_tree_empty() {
        assert_eq!(to_ascii_tree(&Dendrogram::from_merges(0, vec![])).unwrap(), "");
    }

    #[test]
    fn merge_csv_shape() {
        let d = Dendrogram::from_merges(3, vec![rec(1, 1, 2), rec(2, 0, 1)]);
        let csv = to_merge_csv(&d);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "level,left,right,into");
        assert_eq!(lines[1], "1,1,2,1");
    }

    #[test]
    fn newick_balanced_parentheses() {
        use linkclust_graph::generate::{gnm, WeightMode};
        let g = gnm(20, 60, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let sims = crate::init::compute_similarities(&g).into_sorted();
        let out = crate::sweep::sweep(&g, &sims, crate::sweep::SweepConfig::default());
        let s = to_newick(out.dendrogram()).unwrap();
        let open = s.chars().filter(|&c| c == '(').count();
        let close = s.chars().filter(|&c| c == ')').count();
        assert_eq!(open, close);
        assert!(s.ends_with(';'));
        // Every edge appears exactly once.
        for i in 0..g.edge_count() {
            assert_eq!(
                s.matches(&format!("e{i},")).count()
                    + s.matches(&format!("e{i})")).count()
                    + s.matches(&format!("e{i}:")).count()
                    + usize::from(s.ends_with(&format!("e{i};"))),
                1,
                "e{i} in {s}"
            );
        }
    }
}
