//! Flat, arena-backed Phase-I pair accumulator.
//!
//! The original pass-2 accumulator ([`PairAccumulator`]) keys a std
//! `HashMap<(u32, u32), (f64, Vec<u32>)>` and allocates one heap `Vec`
//! per vertex pair — K₁ allocations plus K₂ pushes across K₁ separately
//! grown vectors. This module replaces that layout with two flat
//! structures:
//!
//! * an **open-addressed table** (linear probing, power-of-two capacity)
//!   keyed by the pair packed into a `u64` (`i << 32 | j`, `i < j` — the
//!   packed integers sort exactly like [`VertexPair`]s), holding the
//!   running weight-product sum and the common-neighbor chain head/len
//!   per slot; and
//! * a single shared **arena** of chained `(vertex, prev)` nodes that
//!   every pair appends its common neighbors into — one `Vec` push per
//!   record instead of one `Vec` per pair.
//!
//! [`into_sorted_entries`](FlatPairAccumulator::into_sorted_entries)
//! materializes the same deterministic key-sorted [`RawPairEntry`] list
//! as the map-based accumulator, in one pass over the occupied slots.
//!
//! The owner-sharded parallel pass 2 (`linkclust-parallel`) builds one
//! accumulator per owner thread and feeds it pre-routed records via
//! [`record`](FlatPairAccumulator::record); the serial pass uses
//! [`process_vertex`](FlatPairAccumulator::process_vertex) directly.
//!
//! [`PairAccumulator`]: crate::init::PairAccumulator

use linkclust_graph::{GraphView, VertexId};

use crate::init::RawPairEntry;
use crate::similarity::VertexPair;

/// Sentinel for an empty table slot. Unreachable as a real key: a packed
/// key needs `i == u32::MAX` in the high half, and `i < j` leaves no
/// valid `j`.
const EMPTY: u64 = u64::MAX;

/// Sentinel terminating a common-neighbor chain.
const NIL: u32 = u32::MAX;

/// Grow when `len * 8 >= capacity * 7` (7/8 load factor).
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Packs the canonical vertex pair `(i, j)` (`i < j`) into the table
/// key `i << 32 | j`. Packed keys compare exactly like the pairs they
/// encode, so a key-sorted slot list is a pair-sorted entry list.
///
/// # Examples
///
/// ```
/// use linkclust_core::flatacc::pack_pair;
///
/// assert!(pack_pair(0, 1) < pack_pair(0, 2));
/// assert!(pack_pair(0, 99) < pack_pair(1, 2));
/// ```
#[inline]
#[must_use]
pub fn pack_pair(i: u32, j: u32) -> u64 {
    debug_assert!(i < j, "pair keys must be canonical (i < j)");
    (u64::from(i) << 32) | u64::from(j)
}

/// Recovers `(i, j)` from a packed key.
#[inline]
#[must_use]
pub fn unpack_pair(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// One node of the shared common-neighbor arena: a recorded common
/// neighbor and the index of the previously recorded node of the same
/// pair (`NIL` at the chain end).
#[derive(Clone, Copy, Debug)]
struct ArenaNode {
    vertex: u32,
    prev: u32,
}

/// The flat pass-2 accumulator: map `M` of Algorithm 1 as an
/// open-addressed table plus one common-neighbor arena.
///
/// # Examples
///
/// ```
/// use linkclust_core::flatacc::FlatPairAccumulator;
/// use linkclust_graph::GraphBuilder;
/// use linkclust_graph::VertexId;
///
/// // Path 0-1-2: vertex 1 contributes the single pair (0, 2).
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)])?.build();
/// let mut acc = FlatPairAccumulator::for_graph(&g);
/// for v in g.vertices() {
///     acc.process_vertex(&g, v);
/// }
/// let entries = acc.into_sorted_entries();
/// assert_eq!(entries.len(), 1);
/// assert!((entries[0].value - 6.0).abs() < 1e-12);
/// assert_eq!(entries[0].common_neighbors, vec![VertexId::new(1)]);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FlatPairAccumulator {
    /// Slot keys (`EMPTY` or a packed pair). Length is a power of two.
    keys: Vec<u64>,
    /// Running `Σ w_ik·w_jk` per slot.
    sums: Vec<f64>,
    /// Per-slot head of the common-neighbor chain (most recent node).
    heads: Vec<u32>,
    /// Per-slot chain length.
    lens: Vec<u32>,
    /// The shared common-neighbor arena (one node per record).
    arena: Vec<ArenaNode>,
    /// Occupied slot count (K₁ once accumulation finishes).
    len: usize,
}

impl Default for FlatPairAccumulator {
    fn default() -> Self {
        Self::with_pair_capacity(0)
    }
}

impl FlatPairAccumulator {
    /// Creates an accumulator sized for roughly `pairs` distinct keys
    /// and `records` total common-neighbor records (the arena
    /// reservation). Both are estimates — the table grows past them.
    #[must_use]
    pub fn with_capacity(pairs: usize, records: usize) -> Self {
        let slots = (pairs * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(16);
        FlatPairAccumulator {
            keys: vec![EMPTY; slots],
            sums: vec![0.0; slots],
            heads: vec![NIL; slots],
            lens: vec![0; slots],
            arena: Vec::with_capacity(records),
            len: 0,
        }
    }

    /// [`with_capacity`](Self::with_capacity) with `pairs` only (no
    /// arena reservation).
    #[must_use]
    pub fn with_pair_capacity(pairs: usize) -> Self {
        Self::with_capacity(pairs, 0)
    }

    /// Sizes an accumulator for a full pass over `g`: the incident-pair
    /// count K₂ = Σᵥ d(v)(d(v)−1)/2 is both the exact arena size and a
    /// cheap O(|V|) upper bound on the key count K₁ (each record names
    /// one pair, so distinct pairs ≤ records). The table estimate is
    /// additionally clamped by the all-pairs bound C(|V|, 2).
    #[must_use]
    pub fn for_graph<G: GraphView + ?Sized>(g: &G) -> Self {
        let k2 = linkclust_graph::stats::count_incident_edge_pairs(g);
        let n = g.vertex_count() as u64;
        let all_pairs = n * n.saturating_sub(1) / 2;
        Self::with_capacity(k2.min(all_pairs) as usize, k2 as usize)
    }

    /// Number of distinct vertex-pair keys accumulated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no pairs have been accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total common-neighbor records appended so far (Σ over pairs of
    /// their common-neighbor counts; K₂ after a full pass).
    #[must_use]
    pub fn records(&self) -> usize {
        self.arena.len()
    }

    /// Current table load factor (occupied slots / capacity) — the
    /// occupancy gauge the telemetry layer reports.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.keys.len() as f64
    }

    /// Fibonacci-style finalizer (the 64-bit murmur3 mix): packed keys
    /// are highly regular (low-entropy high halves), so the raw key must
    /// not feed linear probing directly.
    #[inline]
    fn hash(key: u64) -> u64 {
        let mut x = key;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }

    /// Finds the slot of `key`, or the empty slot where it belongs.
    #[inline]
    fn probe(keys: &[u64], key: u64) -> usize {
        let mask = keys.len() - 1;
        let mut slot = (Self::hash(key) as usize) & mask;
        loop {
            let k = keys[slot];
            if k == key || k == EMPTY {
                return slot;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the table and re-places every occupied slot. The arena is
    /// untouched — chains are slot-independent.
    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let mut keys = vec![EMPTY; new_slots];
        let mut sums = vec![0.0; new_slots];
        let mut heads = vec![NIL; new_slots];
        let mut lens = vec![0; new_slots];
        for old in 0..self.keys.len() {
            let key = self.keys[old];
            if key == EMPTY {
                continue;
            }
            let slot = Self::probe(&keys, key);
            keys[slot] = key;
            sums[slot] = self.sums[old];
            heads[slot] = self.heads[old];
            lens[slot] = self.lens[old];
        }
        self.keys = keys;
        self.sums = sums;
        self.heads = heads;
        self.lens = lens;
    }

    /// Accrues one record: pair `key` gains `w` (the weight product
    /// `w_vi·w_vj`) and common neighbor `v`. This is the routed-record
    /// entry point of the owner-sharded parallel pass 2.
    ///
    /// # Panics
    ///
    /// Panics if the arena exceeds `u32::MAX - 1` records (the chain
    /// index width).
    #[inline]
    pub fn record(&mut self, key: u64, w: f64, v: u32) {
        if (self.len + 1) * LOAD_DEN >= self.keys.len() * LOAD_NUM {
            self.grow();
        }
        let slot = Self::probe(&self.keys, key);
        if self.keys[slot] == EMPTY {
            self.keys[slot] = key;
            self.len += 1;
        }
        self.sums[slot] += w;
        let node = u32::try_from(self.arena.len()).expect("arena indices are u32");
        assert!(node != NIL, "arena overflow: more than u32::MAX - 1 records");
        self.arena.push(ArenaNode { vertex: v, prev: self.heads[slot] });
        self.heads[slot] = node;
        self.lens[slot] += 1;
    }

    /// Processes one vertex `v` (the body of the pass-2 loop): every
    /// unordered pair of `v`'s neighbors `(vⱼ, vₖ)` accrues `w_vj·w_vk`
    /// and records `v` as a common neighbor.
    pub fn process_vertex<G: GraphView + ?Sized>(&mut self, g: &G, v: VertexId) {
        let nbrs = g.neighbors(v);
        let vid = u32::from(v);
        for (a, x) in nbrs.iter().enumerate() {
            for y in &nbrs[a + 1..] {
                // adjacency lists are sorted, so x.vertex < y.vertex
                let key = pack_pair(u32::from(x.vertex), u32::from(y.vertex));
                self.record(key, x.weight * y.weight, vid);
            }
        }
    }

    /// Materializes the key-sorted entry vector in one pass: occupied
    /// slots are collected and sorted by packed key (== pair order),
    /// then each chain is unrolled back-to-front — chains store records
    /// newest-first, so backward filling recovers insertion order, which
    /// every in-repo producer keeps ascending. A defensive sort covers
    /// out-of-order external callers, at the cost of one is-sorted scan.
    #[must_use]
    pub fn into_sorted_entries(self) -> Vec<RawPairEntry> {
        let mut slots: Vec<(u64, f64, u32, u32)> = Vec::with_capacity(self.len);
        for slot in 0..self.keys.len() {
            if self.keys[slot] != EMPTY {
                slots.push((self.keys[slot], self.sums[slot], self.heads[slot], self.lens[slot]));
            }
        }
        slots.sort_unstable_by_key(|&(key, ..)| key);
        slots
            .into_iter()
            .map(|(key, value, head, len)| {
                let (i, j) = unpack_pair(key);
                let mut commons = vec![VertexId::new(0); len as usize];
                let mut node = head;
                for out in commons.iter_mut().rev() {
                    debug_assert_ne!(node, NIL, "chain shorter than recorded length");
                    let n = self.arena[node as usize];
                    *out = VertexId::new(n.vertex as usize);
                    node = n.prev;
                }
                debug_assert_eq!(node, NIL, "chain longer than recorded length");
                if !commons.windows(2).all(|w| w[0] <= w[1]) {
                    commons.sort_unstable();
                }
                RawPairEntry {
                    pair: VertexPair::new(VertexId::new(i as usize), VertexId::new(j as usize)),
                    value,
                    common_neighbors: commons,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{accumulate_pairs, PairAccumulator};
    use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};
    use linkclust_graph::{GraphBuilder, WeightedGraph};

    fn flat_over(g: &WeightedGraph) -> FlatPairAccumulator {
        let mut acc = FlatPairAccumulator::for_graph(g);
        for v in g.vertices() {
            acc.process_vertex(g, v);
        }
        acc
    }

    fn assert_matches_map(g: &WeightedGraph) {
        let flat = flat_over(g);
        let map: PairAccumulator = accumulate_pairs(g, g.vertices());
        assert_eq!(flat.len(), map.len());
        let (fe, me) = (flat.into_sorted_entries(), map.into_sorted_entries());
        assert_eq!(fe.len(), me.len());
        for (a, b) in fe.iter().zip(&me) {
            assert_eq!(a.pair, b.pair);
            assert_eq!(
                a.value.to_bits(),
                b.value.to_bits(),
                "sums must be bit-identical at {}",
                a.pair
            );
            assert_eq!(a.common_neighbors, b.common_neighbors);
        }
    }

    #[test]
    fn pack_unpack_roundtrip_and_order() {
        for (i, j) in [(0u32, 1u32), (0, u32::MAX - 1), (5, 9), (1000, 2000)] {
            assert_eq!(unpack_pair(pack_pair(i, j)), (i, j));
        }
        assert!(pack_pair(0, u32::MAX - 1) < pack_pair(1, 2));
    }

    #[test]
    fn matches_map_accumulator_on_gnm() {
        for seed in 0..5 {
            let g = gnm(40, 150, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            assert_matches_map(&g);
        }
    }

    #[test]
    fn matches_map_accumulator_on_power_law() {
        let g = barabasi_albert(120, 4, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 3);
        assert_matches_map(&g);
    }

    #[test]
    fn grows_from_a_tiny_table() {
        let g = gnm(50, 200, WeightMode::Unit, 1);
        let mut acc = FlatPairAccumulator::with_pair_capacity(0);
        for v in g.vertices() {
            acc.process_vertex(&g, v);
        }
        let map = accumulate_pairs(&g, g.vertices());
        assert_eq!(acc.len(), map.len());
        assert_eq!(acc.into_sorted_entries().len(), map.into_sorted_entries().len());
    }

    #[test]
    fn records_and_occupancy() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap().build();
        let acc = flat_over(&g);
        assert_eq!(acc.records(), 1); // one (pair, common neighbor) record
        assert!(acc.occupancy() > 0.0 && acc.occupancy() <= 1.0);
        assert_eq!(acc.len(), 1);
        assert!(!acc.is_empty());
    }

    #[test]
    fn empty_accumulator() {
        let acc = FlatPairAccumulator::default();
        assert!(acc.is_empty());
        assert_eq!(acc.records(), 0);
        assert!(acc.into_sorted_entries().is_empty());
    }

    #[test]
    fn out_of_order_records_still_sort_common_neighbors() {
        // Records arriving in descending common-neighbor order must
        // still materialize ascending (the defensive-sort path).
        let mut acc = FlatPairAccumulator::with_pair_capacity(4);
        let key = pack_pair(0, 1);
        acc.record(key, 1.0, 9);
        acc.record(key, 1.0, 4);
        acc.record(key, 1.0, 7);
        let entries = acc.into_sorted_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].common_neighbors,
            vec![VertexId::new(4), VertexId::new(7), VertexId::new(9)]
        );
        assert!((entries[0].value - 3.0).abs() < 1e-12);
    }
}
