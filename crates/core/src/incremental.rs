//! Incremental maintenance of the Phase-I similarity state under edge
//! insertions and deletions.
//!
//! The paper computes map `M` from scratch (Algorithm 1). For evolving
//! graphs — the Twitter stream behind §VII grows by the day — a from-
//! scratch recomputation costs O(K₂) per update. This module maintains
//! the same state incrementally: adding or removing edge `(u, v)` only
//! touches the pairs `{v, x}` for `x ∈ N(u)` and `{u, y}` for
//! `y ∈ N(v)` — O(d(u) + d(v)) pair updates — because a new edge can
//! only create or destroy common-neighbor relations *through its own
//! endpoints*.
//!
//! Only the *combinatorial* state (adjacency and per-pair common
//! neighbors) is maintained incrementally. All floating-point values —
//! vertex norms `H₁`/`H₂`, pair product sums, adjacency correction, and
//! the final Tanimoto score — are recomputed at snapshot time in the
//! exact summation order of the batch pipeline. An earlier revision
//! kept running `Σ w`, `Σ w²`, and per-pair product accumulators that
//! were *adjusted* on each update; that drifts at the bit level
//! (`((p₁+p₂)+p₃)−p₂ ≠ p₁+p₃` in IEEE arithmetic) and could leave
//! stale near-zero pair accumulators behind after removals. Deriving
//! every float from the exact combinatorial state makes both failure
//! modes impossible by construction.
//!
//! This is an extension beyond the paper (see DESIGN.md); its
//! correctness contract is **bit-exact** (`f64::to_bits`) agreement
//! with the batch
//! [`compute_similarities`](crate::init::compute_similarities) on the
//! same final graph, which the property tests enforce.

use std::collections::HashMap;

use linkclust_graph::{GraphBuilder, GraphError, VertexId, WeightedGraph};

use crate::similarity::{PairSimilarities, SimilarityEntry, VertexPair};

/// Phase-I similarity state that tracks a mutable weighted graph.
///
/// # Examples
///
/// ```
/// use linkclust_core::incremental::IncrementalSimilarities;
/// use linkclust_graph::VertexId;
///
/// let mut inc = IncrementalSimilarities::new(3);
/// inc.add_edge(VertexId::new(0), VertexId::new(1), 1.0)?;
/// inc.add_edge(VertexId::new(1), VertexId::new(2), 1.0)?;
/// let sims = inc.similarities();
/// assert_eq!(sims.len(), 1); // the pair (0, 2) via common neighbor 1
/// assert!((sims.entries()[0].score - 1.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncrementalSimilarities {
    /// Sorted adjacency per vertex: `(neighbor, weight)`.
    adj: Vec<Vec<(u32, f64)>>,
    edge_count: usize,
    /// Map M state: the sorted common-neighbor list per vertex pair. A
    /// pair is present iff its list is non-empty, so stale entries
    /// cannot exist; all floats derive from this at snapshot time.
    pairs: HashMap<(u32, u32), Vec<u32>>,
}

impl IncrementalSimilarities {
    /// Creates the state for an edgeless graph on `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        IncrementalSimilarities { adj: vec![Vec::new(); n], edge_count: 0, pairs: HashMap::new() }
    }

    /// Builds the state from an existing graph (batch initialization,
    /// then ready for incremental updates).
    ///
    /// # Panics
    ///
    /// Never panics in practice: a built [`WeightedGraph`] has in-range
    /// endpoints, no duplicate edges, and positive weights, which is
    /// exactly what [`IncrementalSimilarities::add_edge`] requires.
    #[must_use]
    pub fn from_graph(g: &WeightedGraph) -> Self {
        let mut inc = Self::new(g.vertex_count());
        for (_, e) in g.edges() {
            inc.add_edge(e.source, e.target, e.weight)
                .expect("edges of a valid graph insert cleanly");
        }
        inc
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges currently present.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated vertex, returning its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::new(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// The current weight of edge `{u, v}`, if present.
    #[must_use]
    pub fn weight_between(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let list = self.adj.get(u.index())?;
        list.binary_search_by_key(&(u32::from(v)), |&(n, _)| n).ok().map(|i| list[i].1)
    }

    /// Inserts edge `{u, v}` with weight `w`, updating the similarity
    /// state in O(d(u) + d(v)) pair touches.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`]: unknown endpoints,
    /// self-loops, duplicates, and non-finite/non-positive weights.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: f64) -> Result<(), GraphError> {
        let n = self.adj.len();
        for &x in &[u, v] {
            if x.index() >= n {
                return Err(GraphError::UnknownVertex { vertex: x, vertex_count: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::InvalidWeight { weight: w });
        }
        if self.weight_between(u, v).is_some() {
            let (s, t) = if u < v { (u, v) } else { (v, u) };
            return Err(GraphError::DuplicateEdge { source: s, target: t });
        }

        // New common-neighbor relations created by this edge: every
        // existing neighbor x of u now shares u with v (and vice versa).
        self.touch_pairs_through(u, v, true);
        self.touch_pairs_through(v, u, true);

        insert_sorted(&mut self.adj[u.index()], u32::from(v), w);
        insert_sorted(&mut self.adj[v.index()], u32::from(u), w);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes edge `{u, v}`, updating the similarity state.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] for out-of-range endpoints;
    /// returns `Ok(false)` (not an error) if the edge was absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        let n = self.adj.len();
        for &x in &[u, v] {
            if x.index() >= n {
                return Err(GraphError::UnknownVertex { vertex: x, vertex_count: n });
            }
        }
        if self.weight_between(u, v).is_none() {
            return Ok(false);
        }

        // Drop adjacency first so touch_pairs_through sees N(u) without v.
        remove_sorted(&mut self.adj[u.index()], u32::from(v));
        remove_sorted(&mut self.adj[v.index()], u32::from(u));
        self.edge_count -= 1;

        self.touch_pairs_through(u, v, false);
        self.touch_pairs_through(v, u, false);
        Ok(true)
    }

    /// For every current neighbor `x` of `hub`, record (or erase) `hub`
    /// as a common neighbor of the pair `{other, x}`. Pairs whose
    /// common-neighbor list empties are removed from the map outright.
    ///
    /// # Panics
    ///
    /// In erase mode, panics if the pair map has no entry for a pair the
    /// adjacency lists imply — the two structures are maintained in
    /// lockstep, so this indicates internal corruption.
    fn touch_pairs_through(&mut self, hub: VertexId, other: VertexId, add: bool) {
        let hub_u32 = u32::from(hub);
        let other_u32 = u32::from(other);
        // Clone is bounded by d(hub); avoids aliasing the map borrow.
        let neighbors: Vec<(u32, f64)> = self.adj[hub.index()].clone();
        for (x, _) in neighbors {
            if x == other_u32 {
                continue;
            }
            let key = (other_u32.min(x), other_u32.max(x));
            if add {
                let commons = self.pairs.entry(key).or_default();
                match commons.binary_search(&hub_u32) {
                    Ok(_) => unreachable!("hub was not previously a common neighbor"),
                    Err(pos) => commons.insert(pos, hub_u32),
                }
            } else {
                let commons = self.pairs.get_mut(&key).expect("pair existed before removal");
                if let Ok(pos) = commons.binary_search(&hub_u32) {
                    commons.remove(pos);
                }
                if commons.is_empty() {
                    self.pairs.remove(&key);
                }
            }
        }
    }

    /// Snapshot: materializes the current [`PairSimilarities`] (unsorted;
    /// call [`into_sorted`](PairSimilarities::into_sorted) before
    /// sweeping).
    ///
    /// Every float is recomputed here from the exact combinatorial
    /// state, replaying the batch pipeline's summation orders: norms
    /// sum incident weights in ascending-neighbor order (pass 1), pair
    /// product sums accumulate over common neighbors in ascending hub
    /// order (pass 2), and the adjacency correction plus Tanimoto
    /// division match [`finalize_entries`](crate::init::finalize_entries)
    /// (pass 3). The result is therefore bit-identical to
    /// [`compute_similarities`](crate::init::compute_similarities) on
    /// [`to_graph`](Self::to_graph).
    ///
    /// # Panics
    ///
    /// Panics if the pair map references an edge absent from the
    /// adjacency lists — the two structures are maintained in lockstep,
    /// so this indicates internal corruption.
    #[must_use]
    pub fn similarities(&self) -> PairSimilarities {
        let h = |i: usize| -> (f64, f64) {
            let nbrs = &self.adj[i];
            if nbrs.is_empty() {
                return (0.0, 0.0);
            }
            let (mut sum, mut sq) = (0.0, 0.0);
            for &(_, w) in nbrs {
                sum += w;
                sq += w * w;
            }
            let mean = sum / nbrs.len() as f64;
            (mean, mean * mean + sq)
        };
        let weight_of = |a: u32, b: u32| -> f64 {
            // cast: u32 id to index, lossless on 64-bit.
            let list = &self.adj[a as usize];
            let pos = list
                .binary_search_by_key(&b, |&(n, _)| n)
                .expect("pair state implies an edge the adjacency lists lack");
            list[pos].1
        };
        let mut entries: Vec<SimilarityEntry> = self
            .pairs
            .iter()
            .map(|(&(i, j), commons)| {
                // cast: u32 ids to indices, lossless on 64-bit.
                let (vi, vj) = (VertexId::new(i as usize), VertexId::new(j as usize));
                let (h1i, h2i) = h(i as usize);
                // cast: u32 id to index, lossless on 64-bit.
                let (h1j, h2j) = h(j as usize);
                // Pass-2 replay: commons is sorted ascending, matching
                // the batch loop over hub vertices 0..n.
                let mut value = 0.0;
                for &c in commons {
                    value += weight_of(c, i) * weight_of(c, j);
                }
                if let Some(w) = self.weight_between(vi, vj) {
                    value += (h1i + h1j) * w;
                }
                let score = value / (h2i + h2j - value);
                SimilarityEntry {
                    pair: VertexPair::new(vi, vj),
                    score,
                    // cast: u32 id to index, lossless on 64-bit.
                    common_neighbors: commons.iter().map(|&c| VertexId::new(c as usize)).collect(),
                }
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.pair);
        PairSimilarities::from_entries(entries)
    }

    /// Materializes the current graph as an immutable [`WeightedGraph`]
    /// (edge ids follow sorted `(u, v)` order, not insertion history).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the internal adjacency is kept
    /// symmetric and duplicate-free, which satisfies the builder.
    #[must_use]
    pub fn to_graph(&self) -> WeightedGraph {
        let mut b = GraphBuilder::with_vertices(self.adj.len());
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                // cast: `u` is addressable by the u32-backed `VertexId`
                // (its neighbors store it as u32); `v` widens losslessly.
                if (u as u32) < v {
                    b.add_edge(VertexId::new(u), VertexId::new(v as usize), w)
                        .expect("internal adjacency is consistent");
                }
            }
        }
        b.build()
    }
}

fn insert_sorted(list: &mut Vec<(u32, f64)>, key: u32, w: f64) {
    match list.binary_search_by_key(&key, |&(n, _)| n) {
        Ok(_) => unreachable!("caller checked for duplicates"),
        Err(pos) => list.insert(pos, (key, w)),
    }
}

fn remove_sorted(list: &mut Vec<(u32, f64)>, key: u32) {
    if let Ok(pos) = list.binary_search_by_key(&key, |&(n, _)| n) {
        list.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// Asserts the incremental state matches a batch recomputation of
    /// the same graph.
    fn assert_matches_batch(inc: &IncrementalSimilarities) {
        let g = inc.to_graph();
        let batch = compute_similarities(&g);
        let snap = inc.similarities();
        assert_eq!(snap.len(), batch.len(), "entry count");
        let mut be: Vec<_> = batch.entries().to_vec();
        be.sort_by_key(|e| e.pair);
        for (a, b) in snap.entries().iter().zip(&be) {
            assert_eq!(a.pair, b.pair);
            assert_eq!(a.common_neighbors, b.common_neighbors, "pair {}", a.pair);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "pair {} incremental {} batch {}",
                a.pair,
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn matches_batch_after_insertions() {
        let g = gnm(25, 80, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let inc = IncrementalSimilarities::from_graph(&g);
        assert_eq!(inc.edge_count(), 80);
        assert_matches_batch(&inc);
    }

    #[test]
    fn matches_batch_after_interleaved_removals() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut inc = IncrementalSimilarities::new(18);
        let mut present: Vec<(usize, usize)> = Vec::new();
        for step in 0..400 {
            if !present.is_empty() && rng.gen_bool(0.35) {
                let idx = rng.gen_range(0..present.len());
                let (a, b) = present.swap_remove(idx);
                assert!(inc.remove_edge(v(a), v(b)).unwrap());
            } else {
                let (a, b) = (rng.gen_range(0..18), rng.gen_range(0..18));
                if a != b && inc.weight_between(v(a), v(b)).is_none() {
                    inc.add_edge(v(a), v(b), rng.gen_range(0.1..2.0)).unwrap();
                    present.push((a.min(b), a.max(b)));
                }
            }
            if step % 80 == 79 {
                assert_matches_batch(&inc);
            }
        }
        assert_matches_batch(&inc);
    }

    #[test]
    fn removal_of_absent_edge_is_ok_false() {
        let mut inc = IncrementalSimilarities::new(3);
        assert!(!inc.remove_edge(v(0), v(1)).unwrap());
        inc.add_edge(v(0), v(1), 1.0).unwrap();
        assert!(inc.remove_edge(v(0), v(1)).unwrap());
        assert!(!inc.remove_edge(v(0), v(1)).unwrap());
        assert_eq!(inc.edge_count(), 0);
        assert!(inc.similarities().is_empty());
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut inc = IncrementalSimilarities::new(2);
        assert!(matches!(inc.add_edge(v(0), v(0), 1.0), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(inc.add_edge(v(0), v(5), 1.0), Err(GraphError::UnknownVertex { .. })));
        assert!(matches!(
            inc.add_edge(v(0), v(1), f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        inc.add_edge(v(0), v(1), 1.0).unwrap();
        assert!(matches!(inc.add_edge(v(1), v(0), 2.0), Err(GraphError::DuplicateEdge { .. })));
    }

    #[test]
    fn add_vertex_grows_the_graph() {
        let mut inc = IncrementalSimilarities::new(1);
        let b = inc.add_vertex();
        let c = inc.add_vertex();
        inc.add_edge(v(0), b, 1.0).unwrap();
        inc.add_edge(b, c, 1.0).unwrap();
        assert_eq!(inc.vertex_count(), 3);
        assert_matches_batch(&inc);
    }

    #[test]
    fn full_teardown_leaves_empty_state() {
        let g = gnm(12, 30, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 8);
        let mut inc = IncrementalSimilarities::from_graph(&g);
        for (_, e) in g.edges() {
            assert!(inc.remove_edge(e.source, e.target).unwrap());
        }
        assert_eq!(inc.edge_count(), 0);
        assert!(inc.similarities().is_empty());
        assert!(inc.pairs.is_empty(), "no residual pair state");
        assert!(inc.adj.iter().all(Vec::is_empty), "no residual adjacency");
    }

    #[test]
    fn snapshot_sweeps_like_batch() {
        use crate::reference::canonical_labels;
        use crate::sweep::{sweep, SweepConfig};
        let g = gnm(20, 60, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 13);
        let inc = IncrementalSimilarities::from_graph(&g);
        let g2 = inc.to_graph();
        let a = sweep(&g2, &inc.similarities().into_sorted(), SweepConfig::default());
        let b = sweep(&g2, &compute_similarities(&g2).into_sorted(), SweepConfig::default());
        let ca: Vec<usize> = a.edge_assignments().iter().map(|&x| x as usize).collect();
        let cb: Vec<usize> = b.edge_assignments().iter().map(|&x| x as usize).collect();
        assert_eq!(canonical_labels(&ca), canonical_labels(&cb));
    }
}
