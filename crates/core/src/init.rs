//! Phase I — similarity initialization (Algorithm 1 of the paper).
//!
//! Computes, for every vertex pair `(vᵢ, vⱼ)` with at least one common
//! neighbor, the Tanimoto similarity (Eq. 1)
//!
//! ```text
//! S(e_ik, e_jk) = aᵢ·aⱼ / (|aᵢ|² + |aⱼ|² − aᵢ·aⱼ)
//! ```
//!
//! where `aᵢ` is the inclusive weight vector of vᵢ (Eq. 2: `Ã_ij = w_ij`
//! for neighbors, and the *mean* incident weight on the diagonal). The
//! phase makes three passes over the graph:
//!
//! 1. [`vertex_norms`] — arrays `H₁` (mean incident weight) and `H₂`
//!    (`|aᵢ|² = H₁² + Σw²`);
//! 2. map `M` — for every vertex, every pair of its neighbors accrues
//!    the weight product `w_ij·w_ik` and the common neighbor itself.
//!    The production pass 2 is the flat, arena-backed
//!    [`FlatPairAccumulator`](crate::flatacc::FlatPairAccumulator)
//!    (packed `u64` keys, one shared common-neighbor arena); the
//!    original map-based [`PairAccumulator`] (one `HashMap` entry and
//!    one `Vec` per pair) is retained as the A/B baseline the bench
//!    harness measures against and as the reference in equivalence
//!    tests.
//! 3. [`finalize_entries`] — adjacent pairs receive the correction term
//!    `(H₁[i]+H₁[j])·w_ij` (the diagonal contributions to `aᵢ·aⱼ`), and
//!    every entry's running sum is replaced by the final similarity.
//!
//! The splits are public so the multi-threaded implementation
//! (`linkclust-parallel`) can parallelize each pass exactly as §VI-A
//! prescribes: pass 1 over vertex ranges, pass 2 sharded by owner
//! (producers route records to the owner of each pair's first vertex —
//! no cross-thread map merge), pass 3 over entry ranges.

use std::collections::HashMap;

use linkclust_graph::{EdgeIndex, GraphView, VertexId};

use crate::similarity::{PairSimilarities, SimilarityEntry, VertexPair};
use crate::telemetry::{Counter, Gauge, Phase, Telemetry};

/// The arrays `H₁` and `H₂` of Algorithm 1 (pass 1).
#[derive(Clone, PartialEq, Debug)]
pub struct VertexNorms {
    /// `H₁[i]` — the mean weight of vᵢ's incident edges (the diagonal
    /// entry `Ã_ii`); 0 for isolated vertices.
    pub h1: Vec<f64>,
    /// `H₂[i] = H₁[i]² + Σ_{j∈N(i)} w_ij²` — the squared norm `|aᵢ|²`.
    pub h2: Vec<f64>,
}

/// Pass 1: computes `H₁` and `H₂` for the vertex range
/// `[range.start, range.end)`. Pass the full range `0..|V|` for the
/// serial algorithm.
#[must_use]
pub fn vertex_norms_range<G: GraphView + ?Sized>(
    g: &G,
    range: std::ops::Range<usize>,
) -> VertexNorms {
    let mut h1 = Vec::with_capacity(range.len());
    let mut h2 = Vec::with_capacity(range.len());
    for i in range {
        let v = VertexId::new(i);
        let nbrs = g.neighbors(v);
        let (mut sum, mut sq) = (0.0, 0.0);
        for n in nbrs {
            sum += n.weight;
            sq += n.weight * n.weight;
        }
        let mean = if nbrs.is_empty() { 0.0 } else { sum / nbrs.len() as f64 };
        h1.push(mean);
        h2.push(mean * mean + sq);
    }
    VertexNorms { h1, h2 }
}

/// Pass 1 over the whole graph.
#[must_use]
pub fn vertex_norms<G: GraphView + ?Sized>(g: &G) -> VertexNorms {
    vertex_norms_range(g, 0..g.vertex_count())
}

/// A raw (unfinalized) entry of map `M`: the vertex pair key and the value
/// tuple — running weight-product sum and common-neighbor list.
#[derive(Clone, PartialEq, Debug)]
pub struct RawPairEntry {
    /// The vertex pair key.
    pub pair: VertexPair,
    /// Before [`finalize_entries`]: `Σ_k w_ik·w_jk` over common neighbors
    /// `k`. After: the Tanimoto similarity.
    pub value: f64,
    /// The common neighbors accumulated so far.
    pub common_neighbors: Vec<VertexId>,
}

/// The original map-based pass-2 accumulator: the map `M` keyed by
/// vertex pair, one `HashMap` entry and one heap `Vec` per pair.
///
/// Superseded in the production pipeline by the flat
/// [`FlatPairAccumulator`](crate::flatacc::FlatPairAccumulator); kept as
/// the hashmap-merge baseline (`linkclust-bench` measures the sharded
/// path against it) and as the reference oracle in equivalence tests.
///
/// Multiple accumulators built over disjoint vertex sets can be
/// [`merge`](PairAccumulator::merge)d — this is what the historical
/// parallel implementation's hierarchical map merging does.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PairAccumulator {
    map: HashMap<(u32, u32), (f64, Vec<u32>)>,
}

impl PairAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct vertex-pair keys accumulated (K₁ once all
    /// vertices are processed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no pairs have been accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Processes one vertex `v` (the body of the pass-2 loop): every
    /// unordered pair of `v`'s neighbors `(vⱼ, vₖ)` accrues
    /// `w_vj · w_vk` and records `v` as a common neighbor.
    pub fn process_vertex<G: GraphView + ?Sized>(&mut self, g: &G, v: VertexId) {
        let nbrs = g.neighbors(v);
        for (a, x) in nbrs.iter().enumerate() {
            for y in &nbrs[a + 1..] {
                // adjacency lists are sorted, so x.vertex < y.vertex
                let key = (u32::from(x.vertex), u32::from(y.vertex));
                let slot = self.map.entry(key).or_insert_with(|| (0.0, Vec::new()));
                slot.0 += x.weight * y.weight;
                slot.1.push(u32::from(v));
            }
        }
    }

    /// Merges `other` into `self` (used by the hierarchical map merge of
    /// the parallel second pass).
    pub fn merge(&mut self, other: PairAccumulator) {
        for (key, (sum, commons)) in other.map {
            let slot = self.map.entry(key).or_insert_with(|| (0.0, Vec::new()));
            slot.0 += sum;
            slot.1.extend(commons);
        }
    }

    /// Converts the map into a key-sorted entry vector (deterministic
    /// order; common-neighbor lists sorted).
    #[must_use]
    pub fn into_sorted_entries(self) -> Vec<RawPairEntry> {
        let mut entries: Vec<RawPairEntry> = self
            .map
            .into_iter()
            .map(|((i, j), (value, mut commons))| {
                commons.sort_unstable();
                RawPairEntry {
                    pair: VertexPair::new(VertexId::new(i as usize), VertexId::new(j as usize)),
                    value,
                    common_neighbors: commons
                        .into_iter()
                        .map(|c| VertexId::new(c as usize))
                        .collect(),
                }
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.pair);
        entries
    }
}

/// Pass 2 over a set of vertices (the serial algorithm passes all of
/// them).
pub fn accumulate_pairs<G, I>(g: &G, vertices: I) -> PairAccumulator
where
    G: GraphView + ?Sized,
    I: IntoIterator<Item = VertexId>,
{
    let mut acc = PairAccumulator::new();
    for v in vertices {
        acc.process_vertex(g, v);
    }
    acc
}

/// Pass 3 over a slice of entries: applies the adjacency correction
/// (`+ (H₁[i]+H₁[j])·w_ij` for pairs that are themselves edges) and
/// replaces each running sum with the final Tanimoto similarity
/// `s / (H₂[i] + H₂[j] − s)`.
///
/// Adjacency is resolved through a precomputed [`EdgeIndex`] — O(1) per
/// entry instead of the per-query adjacency scans this pass used to
/// issue. The parallel third pass calls this on disjoint sub-slices,
/// sharing one index.
pub fn finalize_entries(index: &EdgeIndex, norms: &VertexNorms, entries: &mut [RawPairEntry]) {
    for e in entries {
        let (i, j) = (e.pair.first().index(), e.pair.second().index());
        if let Some(w) = index.weight_between(e.pair.first(), e.pair.second()) {
            e.value += (norms.h1[i] + norms.h1[j]) * w;
        }
        let denom = norms.h2[i] + norms.h2[j] - e.value;
        debug_assert!(denom > 0.0, "Tanimoto denominator must be positive");
        e.value /= denom;
    }
}

/// Wraps finalized entries into [`PairSimilarities`].
#[must_use]
pub fn entries_into_similarities(entries: Vec<RawPairEntry>) -> PairSimilarities {
    PairSimilarities::from_entries(
        entries
            .into_iter()
            .map(|e| SimilarityEntry {
                pair: e.pair,
                score: e.value,
                common_neighbors: e.common_neighbors,
            })
            .collect(),
    )
}

/// The complete Phase I: all three passes, serially.
///
/// Costs O(|V| + |E| + K₂) time and O(K₂ + |E|) space (Theorem 2's
/// initialization component).
///
/// # Examples
///
/// ```
/// use linkclust_graph::GraphBuilder;
/// use linkclust_core::init::compute_similarities;
///
/// // Path 0-1-2 with unit weights: the two edges share vertex 1 and
/// // have similarity 1/3.
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?.build();
/// let sims = compute_similarities(&g);
/// assert_eq!(sims.len(), 1);
/// assert!((sims.entries()[0].score - 1.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[must_use]
pub fn compute_similarities<G: GraphView + ?Sized>(g: &G) -> PairSimilarities {
    compute_similarities_with(g, &Telemetry::disabled())
}

/// [`compute_similarities`] with phase-level telemetry: each pass runs
/// under its own span ([`Phase::InitPass1`]–[`Phase::InitPass3`]) and the
/// K₁/K₂ counters are recorded.
#[must_use]
pub fn compute_similarities_with<G: GraphView + ?Sized>(
    g: &G,
    telemetry: &Telemetry,
) -> PairSimilarities {
    let norms = {
        let _span = telemetry.span(Phase::InitPass1);
        vertex_norms(g)
    };
    let acc = {
        let _span = telemetry.span(Phase::InitPass2);
        let mut acc = crate::flatacc::FlatPairAccumulator::for_graph(g);
        for v in g.vertices() {
            acc.process_vertex(g, v);
        }
        acc
    };
    telemetry.add(Counter::PairsK1, acc.len() as u64);
    telemetry.observe(Gauge::TableOccupancy, acc.occupancy());
    let mut entries = acc.into_sorted_entries();
    {
        let _span = telemetry.span(Phase::InitPass3);
        let index = EdgeIndex::for_graph(g);
        finalize_entries(&index, &norms, &mut entries);
    }
    let sims = entries_into_similarities(entries);
    telemetry.add(Counter::IncidentPairsK2, sims.incident_pair_count());
    sims
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_graph::GraphBuilder;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn norms_on_weighted_star() {
        // Star center 0 with leaf weights 1, 2, 3.
        let g =
            GraphBuilder::from_edges(4, &[(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)]).unwrap().build();
        let n = vertex_norms(&g);
        assert!((n.h1[0] - 2.0).abs() < 1e-12); // mean of 1,2,3
        assert!((n.h2[0] - (4.0 + 14.0)).abs() < 1e-12); // 2² + (1+4+9)
        assert!((n.h1[1] - 1.0).abs() < 1e-12);
        assert!((n.h2[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn norms_of_isolated_vertex_are_zero() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0)]).unwrap().build();
        let n = vertex_norms(&g);
        assert_eq!(n.h1[2], 0.0);
        assert_eq!(n.h2[2], 0.0);
    }

    #[test]
    fn path_similarity_is_one_third() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap().build();
        let sims = compute_similarities(&g);
        assert_eq!(sims.len(), 1);
        let e = &sims.entries()[0];
        assert_eq!(e.pair, VertexPair::new(v(0), v(2)));
        assert_eq!(e.common_neighbors, vec![v(1)]);
        assert!((e.score - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_similarities_are_one() {
        // In K3 with unit weights all a-vectors are identical, so every
        // incident edge pair has similarity exactly 1.
        let g =
            GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap().build();
        let sims = compute_similarities(&g);
        assert_eq!(sims.len(), 3);
        for e in sims.entries() {
            assert!((e.score - 1.0).abs() < 1e-12, "score {}", e.score);
            assert_eq!(e.common_neighbors.len(), 1);
        }
    }

    #[test]
    fn entry_count_is_k1() {
        use linkclust_graph::generate::{gnm, WeightMode};
        use linkclust_graph::stats::count_common_neighbor_pairs;
        for seed in 0..4 {
            let g = gnm(30, 80, WeightMode::Uniform { lo: 0.1, hi: 2.0 }, seed);
            let sims = compute_similarities(&g);
            assert_eq!(sims.len() as u64, count_common_neighbor_pairs(&g));
        }
    }

    #[test]
    fn incident_pair_count_is_k2() {
        use linkclust_graph::generate::{gnm, WeightMode};
        use linkclust_graph::stats::count_incident_edge_pairs;
        for seed in 0..4 {
            let g = gnm(25, 60, WeightMode::Unit, seed);
            let sims = compute_similarities(&g);
            assert_eq!(sims.incident_pair_count(), count_incident_edge_pairs(&g));
        }
    }

    #[test]
    fn merged_accumulators_match_single_pass() {
        use linkclust_graph::generate::{gnm, WeightMode};
        let g = gnm(40, 150, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 9);
        let whole = accumulate_pairs(&g, g.vertices());
        let mut left = accumulate_pairs(&g, (0..20).map(v));
        let right = accumulate_pairs(&g, (20..40).map(v));
        left.merge(right);
        assert_eq!(whole.len(), left.len());
        let (mut a, mut b) = (whole.into_sorted_entries(), left.into_sorted_entries());
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(x.pair, y.pair);
            assert!((x.value - y.value).abs() < 1e-9);
            assert_eq!(x.common_neighbors, y.common_neighbors);
        }
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        use linkclust_graph::generate::{gnm, WeightMode};
        let g = gnm(30, 100, WeightMode::Uniform { lo: 0.1, hi: 3.0 }, 2);
        for e in compute_similarities(&g).entries() {
            assert!(e.score > 0.0 && e.score <= 1.0 + 1e-12, "score {}", e.score);
        }
    }

    #[test]
    fn disjoint_edges_produce_no_entries() {
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap().build();
        assert!(compute_similarities(&g).is_empty());
    }
}
