//! Debug-build structural validators for the clustering data structures.
//!
//! Each `validate_*` function checks a structural invariant the rest of
//! the crate relies on and returns a descriptive [`InvariantViolation`]
//! on failure; the corresponding `debug_check_*` wrapper panics on
//! violation in debug builds and compiles to nothing in release builds
//! (the same zero-cost-when-off contract as [`crate::telemetry`]).
//!
//! The sweep, coarse-sweep, and parallel pipelines call the
//! `debug_check_*` hooks at their phase boundaries, so any `cargo test`
//! run (which builds with `debug_assertions` on) exercises the
//! validators over every pipeline while `cargo build --release`
//! pays nothing for them.
//!
//! The invariants checked:
//!
//! * **[`ClusterArray`] descending chains** — `C[i] ≤ i` for every slot,
//!   every chain ends at a self-pointing root (which is therefore the
//!   minimum of the chain), and the live-cluster counter matches the
//!   number of roots (§V of the paper).
//! * **[`Dendrogram`] merge replay** — levels are non-decreasing, every
//!   merge joins two clusters that are live at that point, the survivor
//!   is the smaller root, and the final live-cluster count equals
//!   `leaves − merges` (leaf coverage: no leaf is dropped or merged
//!   twice).
//! * **Coarse level monotonicity** — committed [`LevelPoint`]s have
//!   strictly increasing level ids, non-decreasing processed-pair counts,
//!   and non-increasing cluster counts (§IV-B).
//! * **Trace timeline consistency** — drained trace events are monotone
//!   and properly nested per thread (no partial overlap), so exported
//!   Chrome traces render as clean flame graphs
//!   ([`validate_trace_events`]).

use crate::cluster_array::ClusterArray;
use crate::coarse::LevelPoint;
use crate::dendrogram::Dendrogram;

/// A broken structural invariant: which structure, and what went wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvariantViolation {
    /// The structure whose invariant failed (e.g. `"ClusterArray"`).
    pub structure: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} invariant violated: {}", self.structure, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(structure: &'static str, detail: String) -> InvariantViolation {
    InvariantViolation { structure, detail }
}

/// Validates the descending-chain and partition invariants of a
/// [`ClusterArray`].
///
/// # Errors
///
/// Returns a violation if any `C[i] > i`, if a chain fails to reach a
/// self-pointing root, or if the live-cluster counter disagrees with the
/// number of roots.
pub fn validate_cluster_array(c: &ClusterArray) -> Result<(), InvariantViolation> {
    let parents = c.parents();
    let mut roots = 0usize;
    for (i, &p) in parents.iter().enumerate() {
        if p as usize > i {
            return Err(violation(
                "ClusterArray",
                format!("C[{i}] = {p} ascends (descending-chain invariant requires C[i] <= i)"),
            ));
        }
        if p as usize == i {
            roots += 1;
        }
    }
    // Chains descend strictly until a self-pointing root, so following
    // parents from any slot must terminate; verify and confirm the root
    // is the chain minimum (it is the last, hence smallest, element).
    for i in 0..parents.len() {
        let mut cur = i;
        let mut steps = 0usize;
        while parents[cur] as usize != cur {
            cur = parents[cur] as usize;
            steps += 1;
            if steps > parents.len() {
                return Err(violation(
                    "ClusterArray",
                    format!("chain from slot {i} does not terminate"),
                ));
            }
        }
        if c.root_of(i) as usize != cur {
            return Err(violation(
                "ClusterArray",
                format!("root_of({i}) = {} but chain ends at {cur}", c.root_of(i)),
            ));
        }
    }
    if c.cluster_count() != roots {
        return Err(violation(
            "ClusterArray",
            format!(
                "live-cluster counter is {} but the array has {roots} roots",
                c.cluster_count()
            ),
        ));
    }
    Ok(())
}

/// Validates a [`Dendrogram`] by replaying its merges: non-decreasing
/// levels, both operands live at merge time, survivor is the smaller
/// root, and the final live count covers every leaf exactly once.
///
/// # Errors
///
/// Returns a violation describing the first merge record that breaks any
/// of those properties.
pub fn validate_dendrogram(d: &Dendrogram) -> Result<(), InvariantViolation> {
    let n = d.edge_count();
    let mut live = vec![true; n];
    let mut live_count = n;
    let mut prev_level = 0u32;
    for (k, m) in d.merges().iter().enumerate() {
        if m.level < prev_level {
            return Err(violation(
                "Dendrogram",
                format!("merge {k} has level {} below its predecessor {prev_level}", m.level),
            ));
        }
        prev_level = m.level;
        let (l, r) = (m.left as usize, m.right as usize);
        if l >= n || r >= n {
            return Err(violation(
                "Dendrogram",
                format!("merge {k} references cluster beyond the {n} leaves"),
            ));
        }
        if l == r {
            return Err(violation("Dendrogram", format!("merge {k} joins cluster {l} to itself")));
        }
        if !live[l] || !live[r] {
            return Err(violation(
                "Dendrogram",
                format!("merge {k} uses a cluster that is no longer live ({l}, {r})"),
            ));
        }
        if m.into != m.left.min(m.right) {
            return Err(violation(
                "Dendrogram",
                format!("merge {k} survives as {} instead of min({l}, {r})", m.into),
            ));
        }
        live[l.max(r)] = false;
        live_count -= 1;
    }
    let expected = n - d.merge_count() as usize;
    if live_count != expected {
        return Err(violation(
            "Dendrogram",
            format!("{live_count} clusters remain live but leaves - merges = {expected}"),
        ));
    }
    Ok(())
}

/// Validates the committed levels of a coarse sweep: strictly increasing
/// level ids, non-decreasing processed-pair counts, non-increasing
/// cluster counts.
///
/// # Errors
///
/// Returns a violation naming the first adjacent pair of
/// [`LevelPoint`]s that breaks monotonicity.
pub fn validate_level_points(levels: &[LevelPoint]) -> Result<(), InvariantViolation> {
    for w in levels.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b.level <= a.level {
            return Err(violation(
                "CoarseLevels",
                format!("level ids not strictly increasing: {} then {}", a.level, b.level),
            ));
        }
        if b.pairs < a.pairs {
            return Err(violation(
                "CoarseLevels",
                format!(
                    "processed pairs decreased from {} to {} at level {}",
                    a.pairs, b.pairs, b.level
                ),
            ));
        }
        if b.clusters > a.clusters {
            return Err(violation(
                "CoarseLevels",
                format!(
                    "cluster count increased from {} to {} at level {}",
                    a.clusters, b.clusters, b.level
                ),
            ));
        }
    }
    Ok(())
}

/// Checks that a [`ClusterArray`] refines another: every pair of slots
/// clustered together in `finer` is also together in `coarser`. The
/// epochs of a coarse sweep and the per-thread copies of the parallel
/// sweep only ever merge clusters, so each successive state must refine
/// into the next.
///
/// # Errors
///
/// Returns a violation naming the first slot whose `finer` cluster is
/// split across two `coarser` clusters, or a length mismatch.
pub fn validate_refinement(
    finer: &ClusterArray,
    coarser: &ClusterArray,
) -> Result<(), InvariantViolation> {
    if finer.len() != coarser.len() {
        return Err(violation(
            "ClusterArray",
            format!("refinement over different lengths: {} vs {}", finer.len(), coarser.len()),
        ));
    }
    // Two slots share a finer cluster iff they share a finer root; their
    // coarser roots must then agree.
    let mut coarser_of_root = vec![u32::MAX; finer.len()];
    for i in 0..finer.len() {
        let fr = finer.root_of(i) as usize;
        let cr = coarser.root_of(i);
        if coarser_of_root[fr] == u32::MAX {
            coarser_of_root[fr] = cr;
        } else if coarser_of_root[fr] != cr {
            return Err(violation(
                "ClusterArray",
                format!(
                    "slot {i} breaks refinement: finer root {fr} maps to coarser roots \
                     {} and {cr}",
                    coarser_of_root[fr]
                ),
            ));
        }
    }
    Ok(())
}

macro_rules! debug_hook {
    ($(#[$meta:meta])* $name:ident => $validate:ident ( $($arg:ident : $ty:ty),+ )) => {
        $(#[$meta])*
        ///
        /// # Panics
        ///
        /// Panics in debug builds if the invariant is violated; does
        /// nothing (and costs nothing) in release builds.
        #[inline]
        pub fn $name($($arg: $ty),+) {
            #[cfg(debug_assertions)]
            if let Err(e) = $validate($($arg),+) {
                // Waived: every fn this macro generates carries a # Panics doc section.
                panic!("{e}"); // xtask-allow: macro body, documented on the generated fns
            }
            #[cfg(not(debug_assertions))]
            let _ = ($($arg),+);
        }
    };
}

debug_hook!(
    /// Debug-build hook for [`validate_cluster_array`].
    debug_check_cluster_array => validate_cluster_array(c: &ClusterArray)
);
debug_hook!(
    /// Debug-build hook for [`validate_dendrogram`].
    debug_check_dendrogram => validate_dendrogram(d: &Dendrogram)
);
debug_hook!(
    /// Debug-build hook for [`validate_level_points`].
    debug_check_level_points => validate_level_points(levels: &[LevelPoint])
);
debug_hook!(
    /// Debug-build hook for [`validate_refinement`].
    debug_check_refinement => validate_refinement(finer: &ClusterArray, coarser: &ClusterArray)
);

/// Validates the per-thread timeline consistency of a drained trace
/// event list (sorted the way [`TraceCollector::events`] sorts it):
/// monotone non-decreasing starts and properly nested — never partially
/// overlapping — intervals per thread. Delegates to
/// [`crate::telemetry::trace::check_events`].
///
/// [`TraceCollector::events`]: crate::telemetry::trace::TraceCollector::events
///
/// # Errors
///
/// Returns a violation describing the first out-of-order or partially
/// overlapping event.
pub fn validate_trace_events(
    events: &[crate::telemetry::TraceEvent],
) -> Result<(), InvariantViolation> {
    crate::telemetry::trace::check_events(events).map_err(|detail| violation("Trace", detail))
}

debug_hook!(
    /// Debug-build hook for [`validate_trace_events`].
    debug_check_trace_events => validate_trace_events(events: &[crate::telemetry::TraceEvent])
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::MergeRecord;

    #[test]
    fn fresh_cluster_array_is_valid() {
        let c = ClusterArray::new(8);
        assert_eq!(validate_cluster_array(&c), Ok(()));
    }

    #[test]
    fn merged_cluster_array_is_valid() {
        let mut c = ClusterArray::new(6);
        let _ = c.merge(5, 2);
        let _ = c.merge(4, 2);
        let _ = c.merge(3, 1);
        assert_eq!(validate_cluster_array(&c), Ok(()));
    }

    #[test]
    fn valid_dendrogram_passes() {
        let d = Dendrogram::from_merges(
            4,
            vec![
                MergeRecord { level: 1, left: 0, right: 1, into: 0 },
                MergeRecord { level: 2, left: 2, right: 3, into: 2 },
                MergeRecord { level: 2, left: 0, right: 2, into: 0 },
            ],
        );
        assert_eq!(validate_dendrogram(&d), Ok(()));
    }

    #[test]
    fn double_merge_is_rejected() {
        // Hand-built without the constructor: cluster 1 is merged twice.
        let d = Dendrogram::from_merges(
            3,
            vec![
                MergeRecord { level: 1, left: 0, right: 1, into: 0 },
                MergeRecord { level: 1, left: 1, right: 2, into: 1 },
            ],
        );
        let err = validate_dendrogram(&d).expect_err("cluster 1 is dead at the second merge");
        assert!(err.detail.contains("no longer live"));
    }

    #[test]
    fn self_merge_is_rejected() {
        let d =
            Dendrogram::from_merges(2, vec![MergeRecord { level: 1, left: 1, right: 1, into: 1 }]);
        let err = validate_dendrogram(&d).expect_err("self-merge");
        assert!(err.detail.contains("itself"));
    }

    #[test]
    fn level_points_must_be_monotone() {
        let good = [
            LevelPoint { level: 1, pairs: 10, clusters: 90 },
            LevelPoint { level: 2, pairs: 25, clusters: 70 },
        ];
        assert_eq!(validate_level_points(&good), Ok(()));

        let bad = [
            LevelPoint { level: 1, pairs: 10, clusters: 90 },
            LevelPoint { level: 2, pairs: 9, clusters: 70 },
        ];
        let err = validate_level_points(&bad).expect_err("pairs decreased");
        assert!(err.detail.contains("pairs decreased"));
    }

    #[test]
    fn refinement_accepts_merge_progress_and_rejects_splits() {
        let mut finer = ClusterArray::new(4);
        let _ = finer.merge(1, 0);
        let mut coarser = finer.clone();
        let _ = coarser.merge(3, 2);
        assert_eq!(validate_refinement(&finer, &coarser), Ok(()));
        // The reverse direction splits {2,3} and must fail.
        let err = validate_refinement(&coarser, &finer).expect_err("split");
        assert!(err.detail.contains("breaks refinement"));
    }

    #[test]
    fn debug_hooks_accept_valid_structures() {
        let c = ClusterArray::new(3);
        debug_check_cluster_array(&c);
        let d = Dendrogram::from_merges(2, vec![]);
        debug_check_dendrogram(&d);
        debug_check_level_points(&[]);
        debug_check_refinement(&c, &c);
        debug_check_trace_events(&[]);
    }

    #[test]
    fn trace_event_validation_flags_partial_overlap() {
        use crate::telemetry::{Phase, TraceEvent, TraceLabel};
        let ev = |start, dur| TraceEvent {
            tid: 0,
            label: TraceLabel::Phase(Phase::Sweep),
            start_nanos: start,
            dur_nanos: dur,
        };
        assert_eq!(validate_trace_events(&[ev(0, 100), ev(10, 20)]), Ok(()));
        let err = validate_trace_events(&[ev(0, 100), ev(50, 100)]).expect_err("overlap");
        assert_eq!(err.structure, "Trace");
        assert!(err.detail.contains("partial overlap"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "no longer live")]
    fn debug_hook_panics_on_violation() {
        let d = Dendrogram::from_merges(
            3,
            vec![
                MergeRecord { level: 1, left: 0, right: 1, into: 0 },
                MergeRecord { level: 1, left: 1, right: 2, into: 1 },
            ],
        );
        debug_check_dendrogram(&d);
    }
}
