//! Efficient link clustering (Yan, ICDCS 2017).
//!
//! *Link clustering* (Ahn, Bagrow & Lehmann, Nature 2010) groups the
//! **edges** of a graph by single-linkage hierarchical clustering under the
//! Tanimoto similarity of incident edges, revealing overlapping and
//! hierarchical community structure. Applied naively, the optimally
//! efficient generic clusterer (SLINK / next-best-merge) costs O(|E|²)
//! time and space — prohibitive for large graphs.
//!
//! This crate implements the paper's three improvements:
//!
//! * **Algorithm** ([`init`], [`sweep`]) — a two-phase serial algorithm.
//!   Phase I traverses the graph three times to compute, for every vertex
//!   pair with a common neighbor, the similarity shared by *all* the edge
//!   pairs they induce (the paper's key observation: Eq. 1 depends only on
//!   the endpoint vectors aᵢ, aⱼ, not the common neighbor). Phase II
//!   sweeps the similarity-sorted pair list, merging edge clusters through
//!   the chain array `C`. Total cost O(|V| + K₁ log K₁ + √K₂·|E|) time
//!   and O(K₂ + |E|) space (Theorem 2).
//! * **Modeling** ([`coarse`], [`model`]) — coarse-grained dendrograms:
//!   the sorted list is processed in adaptively sized chunks whose merge
//!   rate between consecutive levels is bounded by γ, driven by a
//!   head/tail/rollback mode machine with slope-extrapolated chunk sizes
//!   (the cluster-count decay is sigmoid in log level id, §V).
//! * **Baselines** ([`baseline`]) — the standard O(n²) next-best-merge
//!   single-linkage clusterer the paper compares against (§VII-A), plus
//!   the MST-based formulation of Gower & Ross.
//!
//! Parallel (multi-core) versions of both phases live in the companion
//! `linkclust-parallel` crate, whose unified `LinkClustering` facade
//! (with a `.threads(n)` builder) supersedes the serial facade here for
//! most callers.
//!
//! # Quickstart
//!
//! ```
//! use linkclust_graph::GraphBuilder;
//! use linkclust_core::LinkClustering;
//!
//! // Two triangles sharing a vertex: the triangles merge internally
//! // first, and the density-optimal cut recovers them as two link
//! // communities.
//! let g = GraphBuilder::from_edges(5, &[
//!     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
//!     (2, 3, 1.0), (3, 4, 1.0), (2, 4, 1.0),
//! ])?.build();
//! let result = LinkClustering::new().run(&g);
//! let cut = result.dendrogram().best_density_cut(&g).unwrap();
//! assert_eq!(cut.cluster_count, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Every phase can report where its time went ([`telemetry`]); invalid
//! configurations surface as [`ConfigError`] values instead of panics:
//!
//! ```
//! use linkclust_graph::generate::{gnm, WeightMode};
//! use linkclust_core::coarse::CoarseConfig;
//! use linkclust_core::telemetry::Counter;
//! use linkclust_core::{ConfigError, LinkClustering};
//!
//! let g = gnm(50, 200, WeightMode::Unit, 7);
//! let cfg = CoarseConfig::builder().phi(5).initial_chunk(16).build()?;
//! let r = LinkClustering::new().stats(true).run_coarse(&g, cfg)?;
//! let report = r.report().expect("stats(true) attaches a report");
//! assert_eq!(report.counter(Counter::MergesApplied), r.dendrogram().merge_count());
//! assert_eq!(
//!     CoarseConfig::builder().phi(0).build(),
//!     Err(ConfigError::ZeroPhi)
//! );
//! # Ok::<(), ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cluster_array;
pub mod coarse;
pub mod communities;
pub mod dendrogram;
pub mod error;
pub mod evaluate;
pub mod export;
pub mod flatacc;
pub mod incremental;
pub mod init;
pub mod invariants;
pub mod model;
pub mod reference;
pub mod sweep;
pub mod telemetry;
pub mod unionfind;

mod pipeline;
mod similarity;

pub use cluster_array::ClusterArray;
pub use dendrogram::{Dendrogram, MergeRecord};
pub use error::ConfigError;
pub use pipeline::{ClusteringResult, LinkClustering};
pub use similarity::{PairSimilarities, SimilarityEntry, VertexPair};
pub use telemetry::{Recorder, RunReport, Telemetry};
