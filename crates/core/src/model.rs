//! The sigmoid model of cluster-count decay (§V, Fig. 2(2)).
//!
//! Plotting the (normalized) number of clusters against the (normalized)
//! logarithm of the level id produces an S-shaped curve — slow decay at
//! the head, sharp in the middle, slow at the tail — well modelled by
//!
//! ```text
//! y = a / (1 + e^(−k·(u − b))) + c        u = normalized log level id
//! ```
//!
//! The paper reports that `a = −1, b = 0.48, c = 1, k = 10` agrees with
//! the measured curves for α ∈ {0.0005, 0.001}. [`fit`](SigmoidModel::fit)
//! recovers the parameters from data by grid search over `(b, k)` with a
//! closed-form linear solve for `(a, c)`.

/// The four-parameter sigmoid `y = a / (1 + e^(−k(u−b))) + c`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SigmoidModel {
    /// Amplitude (negative for decaying curves).
    pub a: f64,
    /// Midpoint on the (normalized log) x-axis.
    pub b: f64,
    /// Vertical offset.
    pub c: f64,
    /// Steepness.
    pub k: f64,
}

impl SigmoidModel {
    /// The parameters the paper quotes for the Twitter curves
    /// (α ∈ {0.0005, 0.001}).
    pub const PAPER: SigmoidModel = SigmoidModel { a: -1.0, b: 0.48, c: 1.0, k: 10.0 };

    /// Evaluates the model at a point `u` that is already in (normalized)
    /// log space.
    #[must_use]
    pub fn eval(&self, u: f64) -> f64 {
        self.a / (1.0 + (-self.k * (u - self.b)).exp()) + self.c
    }

    /// Evaluates the model at a raw level id `x > 0` (applies `ln`
    /// internally).
    #[must_use]
    pub fn eval_level(&self, x: f64) -> f64 {
        self.eval(x.ln())
    }

    /// Sum of squared residuals against `points` (`(u, y)` pairs in
    /// normalized log space).
    #[must_use]
    pub fn sse(&self, points: &[(f64, f64)]) -> f64 {
        points.iter().map(|&(u, y)| (self.eval(u) - y).powi(2)).sum()
    }

    /// Coefficient of determination R² against `points`.
    #[must_use]
    pub fn r_squared(&self, points: &[(f64, f64)]) -> f64 {
        if points.is_empty() {
            return 1.0;
        }
        let mean = points.iter().map(|&(_, y)| y).sum::<f64>() / points.len() as f64;
        let ss_tot: f64 = points.iter().map(|&(_, y)| (y - mean).powi(2)).sum();
        if ss_tot == 0.0 {
            return 1.0;
        }
        1.0 - self.sse(points) / ss_tot
    }

    /// Fits the model to `points` (`(u, y)` pairs, both axes typically
    /// normalized to `[0, 1]`): two-stage grid search over `(b, k)` with
    /// a closed-form least-squares solve for `(a, c)` at each grid node.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 points are supplied.
    #[must_use]
    pub fn fit(points: &[(f64, f64)]) -> SigmoidModel {
        assert!(points.len() >= 4, "need at least 4 points to fit 4 parameters");
        let (umin, umax) = points
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(u, _)| (lo.min(u), hi.max(u)));
        let span = (umax - umin).max(1e-9);

        let mut best = SigmoidModel { a: 0.0, b: 0.0, c: 0.0, k: 1.0 };
        let mut best_sse = f64::INFINITY;
        // Coarse pass, then a refining pass around the winner.
        let mut b_lo = umin;
        let mut b_hi = umax;
        let mut k_lo = 0.5;
        let mut k_hi = 60.0;
        for _ in 0..3 {
            let (mut nb_lo, mut nb_hi, mut nk_lo, mut nk_hi) = (b_lo, b_hi, k_lo, k_hi);
            for bi in 0..=40 {
                let b = b_lo + (b_hi - b_lo) * bi as f64 / 40.0;
                for ki in 0..=40 {
                    let k = k_lo + (k_hi - k_lo) * ki as f64 / 40.0;
                    let trial = solve_linear(points, b, k);
                    let sse = trial.sse(points);
                    if sse < best_sse {
                        best_sse = sse;
                        best = trial;
                        let db = (b_hi - b_lo) / 10.0;
                        let dk = (k_hi - k_lo) / 10.0;
                        nb_lo = b - db;
                        nb_hi = b + db;
                        nk_lo = (k - dk).max(0.01);
                        nk_hi = k + dk;
                    }
                }
            }
            b_lo = nb_lo.max(umin - span);
            b_hi = nb_hi.min(umax + span);
            k_lo = nk_lo;
            k_hi = nk_hi;
        }
        best
    }
}

impl std::fmt::Display for SigmoidModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "y = {:.4} / (1 + exp(-{:.3}·(u - {:.4}))) + {:.4}",
            self.a, self.k, self.b, self.c
        )
    }
}

/// For fixed `(b, k)`, the optimal `(a, c)` solve the 2×2 normal
/// equations of the linear model `y = a·g(u) + c`.
fn solve_linear(points: &[(f64, f64)], b: f64, k: f64) -> SigmoidModel {
    let n = points.len() as f64;
    let (mut sg, mut sgg, mut sy, mut sgy) = (0.0, 0.0, 0.0, 0.0);
    for &(u, y) in points {
        let g = 1.0 / (1.0 + (-k * (u - b)).exp());
        sg += g;
        sgg += g * g;
        sy += y;
        sgy += g * y;
    }
    let det = n * sgg - sg * sg;
    let (a, c) = if det.abs() < 1e-12 {
        (0.0, sy / n)
    } else {
        ((n * sgy - sg * sy) / det, (sy * sgg - sg * sgy) / det)
    };
    SigmoidModel { a, b, c, k }
}

/// Normalizes a measured curve for fitting: level ids are mapped to
/// `ln(level)` and then both axes are min-max scaled to `[0, 1]`.
///
/// Input points are `(level_id, cluster_count)` with `level_id ≥ 1`.
///
/// # Panics
///
/// Panics if any level id is < 1 or the curve has fewer than 2 points.
#[must_use]
pub fn normalize_curve(points: &[(u32, usize)]) -> Vec<(f64, f64)> {
    assert!(points.len() >= 2, "need at least 2 points to normalize");
    let logs: Vec<f64> = points
        .iter()
        .map(|&(l, _)| {
            assert!(l >= 1, "level ids start at 1");
            (l as f64).ln()
        })
        .collect();
    let ys: Vec<f64> = points.iter().map(|&(_, c)| c as f64).collect();
    let (xmin, xmax) = minmax(&logs);
    let (ymin, ymax) = minmax(&ys);
    let xs = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    logs.iter().zip(&ys).map(|(&x, &y)| ((x - xmin) / xs, (y - ymin) / yspan)).collect()
}

fn minmax(v: &[f64]) -> (f64, f64) {
    v.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| (lo.min(x), hi.max(x)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_shape() {
        let m = SigmoidModel::PAPER;
        // Decays from ~1 at u=0 to ~0 at u=1, midpoint at b.
        assert!(m.eval(0.0) > 0.95);
        assert!(m.eval(1.0) < 0.05);
        let mid = m.eval(0.48);
        assert!((mid - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eval_level_applies_log() {
        let m = SigmoidModel { a: -1.0, b: 2.0, c: 1.0, k: 5.0 };
        assert!((m.eval_level(std::f64::consts::E.powf(2.0)) - m.eval(2.0)).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_known_parameters() {
        let truth = SigmoidModel { a: -0.9, b: 0.45, c: 0.95, k: 12.0 };
        let points: Vec<(f64, f64)> =
            (0..60).map(|i| i as f64 / 59.0).map(|u| (u, truth.eval(u))).collect();
        let fitted = SigmoidModel::fit(&points);
        assert!(fitted.sse(&points) < 1e-4, "sse {}", fitted.sse(&points));
        assert!(fitted.r_squared(&points) > 0.999);
        assert!((fitted.b - truth.b).abs() < 0.05, "b {}", fitted.b);
    }

    #[test]
    fn fit_is_robust_to_noise() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let truth = SigmoidModel::PAPER;
        let mut rng = SmallRng::seed_from_u64(5);
        let points: Vec<(f64, f64)> = (0..80)
            .map(|i| i as f64 / 79.0)
            .map(|u| (u, truth.eval(u) + rng.gen_range(-0.02..0.02)))
            .collect();
        let fitted = SigmoidModel::fit(&points);
        assert!(fitted.r_squared(&points) > 0.98, "r2 {}", fitted.r_squared(&points));
    }

    #[test]
    fn normalize_curve_scales_both_axes() {
        let pts = vec![(1u32, 1000usize), (10, 800), (100, 100), (1000, 50)];
        let norm = normalize_curve(&pts);
        assert!((norm[0].0 - 0.0).abs() < 1e-12);
        assert!((norm[3].0 - 1.0).abs() < 1e-12);
        assert!((norm[0].1 - 1.0).abs() < 1e-12);
        assert!((norm[3].1 - 0.0).abs() < 1e-12);
        // log spacing: 10 -> 1/3 of the way from 1 to 1000
        assert!((norm[1].0 - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn fit_rejects_tiny_input() {
        let _ = SigmoidModel::fit(&[(0.0, 1.0), (1.0, 0.0)]);
    }

    #[test]
    fn display_is_readable() {
        let s = SigmoidModel::PAPER.to_string();
        assert!(s.contains("exp"));
    }
}
