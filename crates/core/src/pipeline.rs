//! High-level serial facade: one call from graph to dendrogram.
//!
//! For the unified serial/parallel facade (with a `.threads(n)` builder)
//! see `linkclust_parallel::LinkClustering`, re-exported at the root of
//! the `linkclust` crate.

use std::sync::Arc;

use linkclust_graph::GraphView;

use crate::coarse::{coarse_sweep_instrumented, CoarseConfig, CoarseResult, SerialChunkProcessor};
use crate::dendrogram::Dendrogram;
use crate::error::ConfigError;
use crate::init::compute_similarities_with;
use crate::similarity::PairSimilarities;
use crate::sweep::{sweep_with, EdgeOrder, SweepConfig, SweepOutput};
use crate::telemetry::{
    Counter, Phase, Recorder, RunReport, Telemetry, TelemetrySink, TraceCollector,
};

/// End-to-end **serial** link clustering: Phase I (similarities) +
/// Phase II (sweep), with optional phase-level telemetry.
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_core::LinkClustering;
///
/// let g = gnm(30, 90, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
/// let result = LinkClustering::new().run(&g);
/// let cut = result.dendrogram().best_density_cut(&g).unwrap();
/// assert!(cut.cluster_count >= 1);
/// # assert!(cut.density >= 0.0);
/// ```
///
/// With telemetry:
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_core::telemetry::{Counter, Phase};
/// use linkclust_core::LinkClustering;
///
/// let g = gnm(30, 90, WeightMode::Unit, 2);
/// let result = LinkClustering::new().stats(true).run(&g);
/// let report = result.report().expect("stats(true) attaches a report");
/// assert_eq!(report.counter(Counter::MergesApplied), result.dendrogram().merge_count());
/// assert!(report.phase_calls(Phase::Sweep) == 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinkClustering {
    edge_order: Option<EdgeOrder>,
    min_similarity: Option<f64>,
    sink: TelemetrySink,
    tracer: Option<Arc<TraceCollector>>,
}

impl LinkClustering {
    /// Creates the default pipeline (insertion edge order, no threshold,
    /// no telemetry).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the edge-to-slot order of the sweep explicitly. An explicit
    /// setting here takes priority over a default-valued
    /// [`CoarseConfig::edge_order`] in [`run_coarse`](Self::run_coarse),
    /// and conflicts with a non-default one.
    #[must_use]
    pub fn edge_order(mut self, order: EdgeOrder) -> Self {
        self.edge_order = Some(order);
        self
    }

    /// Stops sweeping below this similarity (cuts the dendrogram early).
    #[must_use]
    pub fn min_similarity(mut self, theta: f64) -> Self {
        self.min_similarity = Some(theta);
        self
    }

    /// Collect phase timings and counters into a [`RunReport`] attached
    /// to the result (read it with [`ClusteringResult::report`]).
    /// Disabled by default — a disabled run skips all clock reads.
    #[must_use]
    pub fn stats(mut self, enabled: bool) -> Self {
        self.sink = if enabled { TelemetrySink::Stats } else { TelemetrySink::Off };
        self
    }

    /// Streams telemetry events into a caller-supplied [`Recorder`]
    /// instead of the built-in aggregation (the result then carries no
    /// report). Overrides [`stats`](Self::stats).
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.sink = TelemetrySink::Custom(recorder);
        self
    }

    /// Additionally records every phase span onto `collector`'s
    /// per-thread trace timeline (independent of [`stats`](Self::stats);
    /// export it afterwards with
    /// [`TraceCollector::to_chrome_json`]).
    #[must_use]
    pub fn tracer(mut self, collector: Arc<TraceCollector>) -> Self {
        self.tracer = Some(collector);
        self
    }

    fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            edge_order: self.edge_order.unwrap_or_default(),
            min_similarity: self.min_similarity,
        }
    }

    /// Builds the run's telemetry handle, attaching the tracer if set.
    fn build_telemetry(&self) -> (Telemetry, Option<Arc<crate::telemetry::RunRecorder>>) {
        let (telemetry, recorder) = self.sink.build();
        match &self.tracer {
            Some(c) => (telemetry.with_tracer(Arc::clone(c)), recorder),
            None => (telemetry, recorder),
        }
    }

    /// Folds the tracer's drop count into the aggregate report just
    /// before the report is snapshotted.
    fn record_trace_drops(&self, telemetry: &Telemetry) {
        if let Some(c) = &self.tracer {
            let dropped = c.dropped();
            if dropped > 0 {
                telemetry.add(Counter::TraceEventsDropped, dropped);
            }
        }
    }

    /// Runs both phases on `g` — any [`GraphView`] backend
    /// (adjacency-list or CSR) yields bit-identical results.
    #[must_use]
    pub fn run<G: GraphView + ?Sized>(&self, g: &G) -> ClusteringResult {
        let (telemetry, recorder) = self.build_telemetry();
        let sims = compute_similarities_with(g, &telemetry);
        let sims = {
            let _span = telemetry.span(Phase::Sort);
            sims.into_sorted()
        };
        let output = sweep_with(g, &sims, self.sweep_config(), &telemetry);
        self.record_trace_drops(&telemetry);
        ClusteringResult { similarities: sims, output, report: recorder.map(|r| r.report()) }
    }

    /// Runs Phase I and the **coarse-grained** Phase II (§V).
    ///
    /// Validates `config` first and reconciles its
    /// [`edge_order`](CoarseConfig::edge_order) with the facade's: an
    /// edge order set through [`edge_order`](Self::edge_order) wins over
    /// a default-valued config, and a **conflicting** non-default config
    /// value is rejected with [`ConfigError::EdgeOrderConflict`] instead
    /// of silently overwritten.
    pub fn run_coarse<G: GraphView + ?Sized>(
        &self,
        g: &G,
        config: CoarseConfig,
    ) -> Result<CoarseResult, ConfigError> {
        let config = self.reconcile_coarse(config)?;
        let (telemetry, recorder) = self.build_telemetry();
        let sims = compute_similarities_with(g, &telemetry);
        let sims = {
            let _span = telemetry.span(Phase::Sort);
            sims.into_sorted()
        };
        let result =
            coarse_sweep_instrumented(g, &sims, config, &mut SerialChunkProcessor, &telemetry);
        self.record_trace_drops(&telemetry);
        Ok(match recorder {
            Some(r) => result.with_report(r.report()),
            None => result,
        })
    }

    pub(crate) fn reconcile_coarse(
        &self,
        mut config: CoarseConfig,
    ) -> Result<CoarseConfig, ConfigError> {
        config.validate()?;
        if let Some(facade_order) = self.edge_order {
            if config.edge_order != EdgeOrder::default() && config.edge_order != facade_order {
                return Err(ConfigError::EdgeOrderConflict);
            }
            config.edge_order = facade_order;
        }
        Ok(config)
    }
}

/// The outcome of [`LinkClustering::run`]: the sorted similarity list,
/// the sweep output, and (for stats-collecting runs) the telemetry
/// report.
#[derive(Clone, PartialEq, Debug)]
pub struct ClusteringResult {
    similarities: PairSimilarities,
    output: SweepOutput,
    report: Option<RunReport>,
}

impl ClusteringResult {
    /// Assembles a result from its parts (used by the unified facade in
    /// `linkclust-parallel`; most callers get one from
    /// [`LinkClustering::run`]).
    #[must_use]
    pub fn from_parts(
        similarities: PairSimilarities,
        output: SweepOutput,
        report: Option<RunReport>,
    ) -> Self {
        ClusteringResult { similarities, output, report }
    }

    /// The sorted pair-similarity list `L` (exposed so callers can reuse
    /// the expensive Phase-I output — C-INTERMEDIATE).
    #[must_use]
    pub fn similarities(&self) -> &PairSimilarities {
        &self.similarities
    }

    /// The sweep output (dendrogram + slot permutation).
    #[must_use]
    pub fn output(&self) -> &SweepOutput {
        &self.output
    }

    /// The telemetry report, when the run collected stats
    /// ([`LinkClustering::stats`]); `None` otherwise.
    #[must_use]
    pub fn report(&self) -> Option<&RunReport> {
        self.report.as_ref()
    }

    /// The dendrogram.
    #[must_use]
    pub fn dendrogram(&self) -> &Dendrogram {
        self.output.dendrogram()
    }

    /// Consumes the result, returning the dendrogram.
    #[must_use]
    pub fn into_dendrogram(self) -> Dendrogram {
        self.output.into_dendrogram()
    }

    /// Final cluster label per edge id.
    #[must_use]
    pub fn edge_assignments(&self) -> Vec<u32> {
        self.output.edge_assignments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::compute_similarities;
    use crate::sweep::sweep;
    use crate::telemetry::Counter;
    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_graph::GraphBuilder;

    #[test]
    fn facade_matches_manual_composition() {
        let g = gnm(20, 60, WeightMode::Uniform { lo: 0.3, hi: 1.8 }, 2);
        let manual = {
            let sims = compute_similarities(&g).into_sorted();
            sweep(&g, &sims, SweepConfig::default()).edge_assignments()
        };
        let facade = LinkClustering::new().run(&g).edge_assignments();
        assert_eq!(manual, facade);
    }

    #[test]
    fn threshold_propagates() {
        let g = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.1),
            ],
        )
        .unwrap()
        .build();
        let high = LinkClustering::new().min_similarity(0.9).run(&g);
        let low = LinkClustering::new().run(&g);
        assert!(high.dendrogram().merge_count() < low.dendrogram().merge_count());
    }

    #[test]
    fn coarse_facade_runs() {
        let g = gnm(30, 120, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 5);
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let r = LinkClustering::new().run_coarse(&g, cfg).unwrap();
        assert!(r.dendrogram().merge_count() > 0);
    }

    #[test]
    fn coarse_facade_rejects_bad_config() {
        let g = gnm(10, 20, WeightMode::Unit, 0);
        let bad = CoarseConfig { gamma: 0.5, ..Default::default() };
        assert_eq!(LinkClustering::new().run_coarse(&g, bad), Err(ConfigError::InvalidGamma(0.5)));
    }

    #[test]
    fn edge_order_reconciliation() {
        let facade = LinkClustering::new().edge_order(EdgeOrder::Shuffled { seed: 7 });
        // Default-valued config: the facade's explicit order wins.
        let cfg = facade.reconcile_coarse(CoarseConfig::default()).unwrap();
        assert_eq!(cfg.edge_order, EdgeOrder::Shuffled { seed: 7 });
        // Matching explicit orders: fine.
        let cfg = facade
            .reconcile_coarse(CoarseConfig {
                edge_order: EdgeOrder::Shuffled { seed: 7 },
                ..Default::default()
            })
            .unwrap();
        assert_eq!(cfg.edge_order, EdgeOrder::Shuffled { seed: 7 });
        // Conflicting explicit orders: rejected.
        assert_eq!(
            facade.reconcile_coarse(CoarseConfig {
                edge_order: EdgeOrder::Shuffled { seed: 8 },
                ..Default::default()
            }),
            Err(ConfigError::EdgeOrderConflict)
        );
        // No facade order: the config's order is used untouched.
        let cfg = LinkClustering::new()
            .reconcile_coarse(CoarseConfig {
                edge_order: EdgeOrder::Shuffled { seed: 3 },
                ..Default::default()
            })
            .unwrap();
        assert_eq!(cfg.edge_order, EdgeOrder::Shuffled { seed: 3 });
    }

    #[test]
    fn similarities_are_exposed() {
        let g = gnm(15, 40, WeightMode::Unit, 0);
        let r = LinkClustering::new().run(&g);
        assert!(r.similarities().is_sorted());
        assert_eq!(
            r.similarities().len() as u64,
            linkclust_graph::stats::count_common_neighbor_pairs(&g)
        );
    }

    #[test]
    fn stats_off_by_default_and_on_when_asked() {
        let g = gnm(20, 60, WeightMode::Unit, 4);
        assert!(LinkClustering::new().run(&g).report().is_none());
        let r = LinkClustering::new().stats(true).run(&g);
        let report = r.report().expect("report attached");
        assert_eq!(report.counter(Counter::MergesApplied), r.dendrogram().merge_count());
        assert_eq!(
            report.counter(Counter::PairsK1),
            linkclust_graph::stats::count_common_neighbor_pairs(&g)
        );
        assert!(report.phase_calls(Phase::InitPass1) == 1);
        assert!(report.phase_calls(Phase::Sort) == 1);
    }

    #[test]
    fn custom_recorder_receives_events() {
        use crate::telemetry::RunRecorder;
        let g = gnm(20, 60, WeightMode::Unit, 4);
        let sink = Arc::new(RunRecorder::new());
        let r = LinkClustering::new().recorder(sink.clone()).run(&g);
        // Custom sinks get the events; the result carries no report.
        assert!(r.report().is_none());
        assert_eq!(sink.report().counter(Counter::MergesApplied), r.dendrogram().merge_count());
    }

    #[test]
    fn tracer_records_phase_timeline() {
        use crate::telemetry::{trace, TraceCollector, TraceLabel};
        let g = gnm(20, 60, WeightMode::Unit, 4);
        let collector = Arc::new(TraceCollector::new());
        let r = LinkClustering::new().tracer(Arc::clone(&collector)).run(&g);
        // Tracing alone attaches no report.
        assert!(r.report().is_none());
        let events = collector.events();
        assert!(events.iter().any(|e| e.label == TraceLabel::Phase(Phase::Sort)));
        assert!(events.iter().any(|e| e.label == TraceLabel::Phase(Phase::Sweep)));
        trace::check_events(&events).unwrap();
        trace::validate_json(&collector.to_chrome_json()).unwrap();
        // Tracing plus stats: the report exists and the serial run (deep
        // rings, few events) dropped nothing.
        let collector = Arc::new(TraceCollector::new());
        let r = LinkClustering::new().stats(true).tracer(collector).run(&g);
        let report = r.report().expect("report attached");
        assert_eq!(report.counter(Counter::TraceEventsDropped), 0);
    }

    #[test]
    fn coarse_stats_report_counts_epochs() {
        let g = gnm(40, 170, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let r = LinkClustering::new().stats(true).run_coarse(&g, cfg).unwrap();
        let report = r.report().expect("report attached");
        let b = r.epoch_breakdown();
        assert_eq!(report.counter(Counter::EpochsCommitted), (b.head_fresh + b.tail_fresh) as u64);
        assert_eq!(report.counter(Counter::Rollbacks), b.rollback as u64);
        assert_eq!(report.counter(Counter::EpochsReused), b.reused as u64);
        assert_eq!(report.counter(Counter::LevelsCommitted), r.levels().len() as u64);
        assert_eq!(report.counter(Counter::MergesApplied), r.dendrogram().merge_count());
        assert_eq!(report.phase_calls(Phase::CoarseEpoch) as usize, r.epochs().len() - b.reused);
    }
}
