//! High-level facade: one call from graph to dendrogram.

use linkclust_graph::WeightedGraph;

use crate::coarse::{coarse_sweep, CoarseConfig, CoarseResult};
use crate::dendrogram::Dendrogram;
use crate::init::compute_similarities;
use crate::similarity::PairSimilarities;
use crate::sweep::{sweep, EdgeOrder, SweepConfig, SweepOutput};

/// End-to-end link clustering: Phase I (similarities) + Phase II (sweep).
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_core::LinkClustering;
///
/// let g = gnm(30, 90, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
/// let result = LinkClustering::new().run(&g);
/// let cut = result.dendrogram().best_density_cut(&g).unwrap();
/// assert!(cut.cluster_count >= 1);
/// # assert!(cut.density >= 0.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LinkClustering {
    sweep_config: SweepConfig,
}

impl LinkClustering {
    /// Creates the default pipeline (insertion edge order, no threshold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the edge-to-slot order of the sweep.
    pub fn edge_order(mut self, order: EdgeOrder) -> Self {
        self.sweep_config.edge_order = order;
        self
    }

    /// Stops sweeping below this similarity (cuts the dendrogram early).
    pub fn min_similarity(mut self, theta: f64) -> Self {
        self.sweep_config.min_similarity = Some(theta);
        self
    }

    /// Runs both phases on `g`.
    pub fn run(&self, g: &WeightedGraph) -> ClusteringResult {
        let sims = compute_similarities(g).into_sorted();
        let output = sweep(g, &sims, self.sweep_config);
        ClusteringResult { similarities: sims, output }
    }

    /// Runs Phase I and the **coarse-grained** Phase II (§V).
    pub fn run_coarse(&self, g: &WeightedGraph, config: &CoarseConfig) -> CoarseResult {
        let sims = compute_similarities(g).into_sorted();
        let mut cfg = *config;
        cfg.edge_order = self.sweep_config.edge_order;
        coarse_sweep(g, &sims, &cfg)
    }
}

/// The outcome of [`LinkClustering::run`]: the sorted similarity list and
/// the sweep output.
#[derive(Clone, PartialEq, Debug)]
pub struct ClusteringResult {
    similarities: PairSimilarities,
    output: SweepOutput,
}

impl ClusteringResult {
    /// The sorted pair-similarity list `L` (exposed so callers can reuse
    /// the expensive Phase-I output — C-INTERMEDIATE).
    pub fn similarities(&self) -> &PairSimilarities {
        &self.similarities
    }

    /// The sweep output (dendrogram + slot permutation).
    pub fn output(&self) -> &SweepOutput {
        &self.output
    }

    /// The dendrogram.
    pub fn dendrogram(&self) -> &Dendrogram {
        self.output.dendrogram()
    }

    /// Consumes the result, returning the dendrogram.
    pub fn into_dendrogram(self) -> Dendrogram {
        self.output.into_dendrogram()
    }

    /// Final cluster label per edge id.
    pub fn edge_assignments(&self) -> Vec<u32> {
        self.output.edge_assignments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_graph::GraphBuilder;

    #[test]
    fn facade_matches_manual_composition() {
        let g = gnm(20, 60, WeightMode::Uniform { lo: 0.3, hi: 1.8 }, 2);
        let manual = {
            let sims = compute_similarities(&g).into_sorted();
            sweep(&g, &sims, SweepConfig::default()).edge_assignments()
        };
        let facade = LinkClustering::new().run(&g).edge_assignments();
        assert_eq!(manual, facade);
    }

    #[test]
    fn threshold_propagates() {
        let g = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.1),
            ],
        )
        .unwrap()
        .build();
        let high = LinkClustering::new().min_similarity(0.9).run(&g);
        let low = LinkClustering::new().run(&g);
        assert!(high.dendrogram().merge_count() < low.dendrogram().merge_count());
    }

    #[test]
    fn coarse_facade_runs() {
        let g = gnm(30, 120, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 5);
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let r = LinkClustering::new().run_coarse(&g, &cfg);
        assert!(r.dendrogram().merge_count() > 0);
    }

    #[test]
    fn similarities_are_exposed() {
        let g = gnm(15, 40, WeightMode::Unit, 0);
        let r = LinkClustering::new().run(&g);
        assert!(r.similarities().is_sorted());
        assert_eq!(
            r.similarities().len() as u64,
            linkclust_graph::stats::count_common_neighbor_pairs(&g)
        );
    }
}
