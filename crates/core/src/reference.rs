//! Brute-force reference implementations used to validate the optimized
//! algorithms.
//!
//! Everything here is deliberately simple and quadratic (or worse): the
//! a-vectors of Eq. 2 are materialized densely and similarities computed
//! by explicit inner products; single-linkage clustering is done by
//! repeated full scans. Property tests assert the optimized code agrees
//! with these on random graphs.

use linkclust_graph::{EdgeId, VertexId, WeightedGraph};

/// Materializes the dense vector `aᵢ` of Eq. 2 for vertex `v`:
/// `Ã_ij = w_ij` for neighbors `j`, `Ã_ii` = mean incident weight, and 0
/// elsewhere.
#[must_use]
pub fn a_vector(g: &WeightedGraph, v: VertexId) -> Vec<f64> {
    let mut a = vec![0.0; g.vertex_count()];
    let nbrs = g.neighbors(v);
    let mut sum = 0.0;
    for n in nbrs {
        a[n.vertex.index()] = n.weight;
        sum += n.weight;
    }
    if !nbrs.is_empty() {
        a[v.index()] = sum / nbrs.len() as f64;
    }
    a
}

/// Computes the Tanimoto similarity of Eq. 1 directly from dense
/// a-vectors: `aᵢ·aⱼ / (|aᵢ|² + |aⱼ|² − aᵢ·aⱼ)`.
#[must_use]
pub fn tanimoto_similarity(g: &WeightedGraph, i: VertexId, j: VertexId) -> f64 {
    let (a, b) = (a_vector(g, i), a_vector(g, j));
    let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum();
    let nb: f64 = b.iter().map(|x| x * x).sum();
    dot / (na + nb - dot)
}

/// The Jaccard similarity of the *inclusive* neighborhoods of `i` and
/// `j`: `|n⁺(i) ∩ n⁺(j)| / |n⁺(i) ∪ n⁺(j)|` with `n⁺(v) = N(v) ∪ {v}` —
/// the original unweighted link-clustering similarity of Ahn, Bagrow &
/// Lehmann (Nature 2010).
///
/// On unit-weight graphs the paper's weighted Tanimoto similarity
/// (Eq. 1–2) reduces to exactly this quantity: the a-vectors become the
/// 0/1 indicators of the inclusive neighborhoods. The test
/// `tanimoto_reduces_to_jaccard_on_unit_weights` pins that equivalence.
#[must_use]
pub fn jaccard_similarity(g: &WeightedGraph, i: VertexId, j: VertexId) -> f64 {
    let common = linkclust_graph::stats::common_neighbors(g, i, j)
        .into_iter()
        .filter(|&x| x != i && x != j)
        .count();
    let adjacent = usize::from(g.has_edge(i, j));
    let inter = common + 2 * adjacent;
    let union = g.degree(i) + 1 + g.degree(j) + 1 - inter;
    inter as f64 / union as f64
}

/// The similarity between two edges: the Tanimoto similarity of their
/// non-shared endpoints if they are incident, and 0 otherwise (the
/// paper defines non-incident edge similarity as 0).
#[must_use]
pub fn edge_similarity(g: &WeightedGraph, e1: EdgeId, e2: EdgeId) -> f64 {
    if e1 == e2 {
        return 1.0;
    }
    let (a, b) = (g.edge(e1), g.edge(e2));
    let shared = if b.contains(a.source) {
        Some(a.source)
    } else if b.contains(a.target) {
        Some(a.target)
    } else {
        None
    };
    match shared {
        Some(k) => tanimoto_similarity(g, a.other(k), b.other(k)),
        None => 0.0,
    }
}

/// Brute-force single-linkage clustering of the graph's edges at
/// similarity threshold `theta`: edges `e₁, e₂` end up in the same
/// cluster iff they are connected by a chain of edge pairs each with
/// similarity `≥ theta`.
///
/// Returns one cluster id per edge (ids are arbitrary but consistent).
/// Cost is O(|E|² · |V|) — use only on small graphs.
#[must_use]
pub fn single_linkage_at_threshold(g: &WeightedGraph, theta: f64) -> Vec<usize> {
    let m = g.edge_count();
    let mut labels: Vec<usize> = (0..m).collect();
    // Repeated relabeling until fixpoint (tiny graphs only).
    loop {
        let mut changed = false;
        for i in 0..m {
            for j in i + 1..m {
                if labels[i] != labels[j]
                    && edge_similarity(g, EdgeId::new(i), EdgeId::new(j)) >= theta
                {
                    let target = labels[i].min(labels[j]);
                    let from = labels[i].max(labels[j]);
                    for l in labels.iter_mut() {
                        if *l == from {
                            *l = target;
                        }
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            return labels;
        }
    }
}

/// Normalizes a cluster labelling so two labellings can be compared for
/// partition equality: each cluster is renamed to the smallest member
/// index it contains.
#[must_use]
pub fn canonical_labels(labels: &[usize]) -> Vec<usize> {
    let mut first_of = std::collections::HashMap::new();
    for (i, &l) in labels.iter().enumerate() {
        first_of.entry(l).or_insert(i);
    }
    labels.iter().map(|l| first_of[l]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_graph::GraphBuilder;

    #[test]
    fn a_vector_matches_eq2() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 2.0), (0, 2, 4.0)]).unwrap().build();
        let a0 = a_vector(&g, VertexId::new(0));
        assert_eq!(a0, vec![3.0, 2.0, 4.0]); // diagonal = mean(2,4) = 3
        let a1 = a_vector(&g, VertexId::new(1));
        assert_eq!(a1, vec![2.0, 2.0, 0.0]);
    }

    #[test]
    fn optimized_similarities_match_brute_force() {
        for seed in 0..6 {
            let g = gnm(20, 50, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = compute_similarities(&g);
            for e in sims.entries() {
                let expected = tanimoto_similarity(&g, e.pair.first(), e.pair.second());
                assert!(
                    (e.score - expected).abs() < 1e-9,
                    "pair {} score {} expected {expected} (seed {seed})",
                    e.pair,
                    e.score
                );
            }
        }
    }

    #[test]
    fn tanimoto_reduces_to_jaccard_on_unit_weights() {
        // Ahn et al.'s unweighted similarity is the unit-weight special
        // case of the paper's Eq. 1.
        for seed in 0..5 {
            let g = gnm(18, 45, WeightMode::Unit, seed);
            let sims = compute_similarities(&g);
            for e in sims.entries() {
                let jac = jaccard_similarity(&g, e.pair.first(), e.pair.second());
                assert!(
                    (e.score - jac).abs() < 1e-12,
                    "pair {}: tanimoto {} vs jaccard {jac} (seed {seed})",
                    e.pair,
                    e.score
                );
            }
        }
    }

    #[test]
    fn jaccard_of_identical_neighborhoods_is_one() {
        // In K3 every inclusive neighborhood is the whole vertex set.
        let g =
            GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap().build();
        assert!((jaccard_similarity(&g, VertexId::new(0), VertexId::new(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_similarity_of_non_incident_is_zero() {
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap().build();
        assert_eq!(edge_similarity(&g, EdgeId::new(0), EdgeId::new(1)), 0.0);
        assert_eq!(edge_similarity(&g, EdgeId::new(0), EdgeId::new(0)), 1.0);
    }

    #[test]
    fn threshold_clustering_splits_two_triangles() {
        // Two unit-weight triangles joined by a weak bridge: at a high
        // threshold the bridge similarity separates the triangles.
        let g = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.1),
            ],
        )
        .unwrap()
        .build();
        let labels = canonical_labels(&single_linkage_at_threshold(&g, 0.9));
        // Triangle edges 0,1,2 together; 3,4,5 together; bridge 6 alone.
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[6], labels[0]);
        assert_ne!(labels[6], labels[3]);
    }

    #[test]
    fn canonical_labels_are_comparable() {
        assert_eq!(canonical_labels(&[7, 7, 3, 3, 7]), vec![0, 0, 2, 2, 0]);
        assert_eq!(canonical_labels(&[1, 2, 3]), vec![0, 1, 2]);
    }
}
