//! Similarity entries produced by the initialization phase.

use linkclust_graph::VertexId;

/// A canonical unordered vertex pair (`first < second`).
///
/// The keys of map `M` in Algorithm 1: a pair of vertices at distance 2
/// (sharing at least one common neighbor) or adjacent with a common
/// neighbor.
///
/// # Examples
///
/// ```
/// use linkclust_core::VertexPair;
/// use linkclust_graph::VertexId;
///
/// let p = VertexPair::new(VertexId::new(5), VertexId::new(2));
/// assert_eq!(p.first().index(), 2);
/// assert_eq!(p.second().index(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VertexPair {
    first: VertexId,
    second: VertexId,
}

impl VertexPair {
    /// Creates a canonical pair from two distinct vertices.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    #[inline]
    #[must_use]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "a vertex pair requires two distinct vertices");
        if a < b {
            VertexPair { first: a, second: b }
        } else {
            VertexPair { first: b, second: a }
        }
    }

    /// The smaller vertex.
    #[inline]
    #[must_use]
    pub fn first(self) -> VertexId {
        self.first
    }

    /// The larger vertex.
    #[inline]
    #[must_use]
    pub fn second(self) -> VertexId {
        self.second
    }
}

impl std::fmt::Display for VertexPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.first, self.second)
    }
}

/// One entry of the sorted list `L`: a vertex pair, the Tanimoto
/// similarity shared by every pair of incident edges it induces, and the
/// list of common neighbors.
///
/// For each common neighbor `vₖ`, the edge pair `((vᵢ,vₖ), (vⱼ,vₖ))` has
/// similarity [`score`](SimilarityEntry::score) — the paper's key
/// observation is that this value is independent of `vₖ`.
#[derive(Clone, PartialEq, Debug)]
pub struct SimilarityEntry {
    /// The vertex pair `(vᵢ, vⱼ)`.
    pub pair: VertexPair,
    /// The Tanimoto similarity `S(e_{ik}, e_{jk})` of Eq. 1.
    pub score: f64,
    /// The common neighbors `vₖ` shared by both vertices, in increasing
    /// id order.
    pub common_neighbors: Vec<VertexId>,
}

impl SimilarityEntry {
    /// The number of incident edge pairs this entry stands for.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.common_neighbors.len()
    }
}

/// The output of the initialization phase: all vertex pairs with at least
/// one common neighbor, each with its similarity score — the materialized
/// map `M` of Algorithm 1.
///
/// Obtain one from [`init::compute_similarities`](crate::init::compute_similarities),
/// then sort it into the list `L` with [`into_sorted`](Self::into_sorted)
/// before sweeping.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PairSimilarities {
    entries: Vec<SimilarityEntry>,
    sorted: bool,
}

impl PairSimilarities {
    pub(crate) fn from_entries(entries: Vec<SimilarityEntry>) -> Self {
        PairSimilarities { entries, sorted: false }
    }

    /// Wraps entries that are **already sorted** by non-increasing score
    /// (ties by vertex pair) into a sorted list `L` without re-sorting —
    /// the constructor used by external parallel sorters.
    ///
    /// Sortedness is judged by the exact comparator
    /// [`into_sorted`](Self::into_sorted) uses — [`f64::total_cmp`] on
    /// the scores, ties by pair. Raw `>`/`==` would disagree with it on
    /// signed zeros (`0.0` orders strictly before `-0.0` under the total
    /// order but compares equal under `==`), making this constructor
    /// reject output a correct parallel sort produced.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not sorted.
    #[must_use]
    pub fn from_sorted(entries: Vec<SimilarityEntry>) -> Self {
        assert!(
            entries.windows(2).all(|w| {
                match w[1].score.total_cmp(&w[0].score) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => w[0].pair <= w[1].pair,
                    std::cmp::Ordering::Greater => false,
                }
            }),
            "entries must be sorted by non-increasing score"
        );
        PairSimilarities { entries, sorted: true }
    }

    /// The entries, in unspecified order unless [`is_sorted`](Self::is_sorted).
    #[must_use]
    pub fn entries(&self) -> &[SimilarityEntry] {
        &self.entries
    }

    /// Number of entries (the paper's K₁).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of incident edge pairs across all entries (the
    /// paper's K₂).
    #[must_use]
    pub fn incident_pair_count(&self) -> u64 {
        self.entries.iter().map(|e| e.pair_count() as u64).sum()
    }

    /// Returns `true` if the entries are sorted by non-increasing score.
    #[must_use]
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Sorts the entries into the list `L` of Algorithm 2: non-increasing
    /// score, ties broken by vertex pair for determinism.
    #[must_use]
    pub fn into_sorted(mut self) -> Self {
        if !self.sorted {
            self.entries.sort_unstable_by(|a, b| {
                b.score.total_cmp(&a.score).then_with(|| a.pair.cmp(&b.pair))
            });
            self.sorted = true;
        }
        self
    }

    /// Looks up the entry for a vertex pair (linear scan; intended for
    /// tests and small graphs).
    #[must_use]
    pub fn find(&self, pair: VertexPair) -> Option<&SimilarityEntry> {
        self.entries.iter().find(|e| e.pair == pair)
    }
}

impl IntoIterator for PairSimilarities {
    type Item = SimilarityEntry;
    type IntoIter = std::vec::IntoIter<SimilarityEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(a: usize, b: usize, score: f64, commons: &[usize]) -> SimilarityEntry {
        SimilarityEntry {
            pair: VertexPair::new(VertexId::new(a), VertexId::new(b)),
            score,
            common_neighbors: commons.iter().map(|&i| VertexId::new(i)).collect(),
        }
    }

    #[test]
    fn pair_canonicalizes() {
        let p = VertexPair::new(VertexId::new(9), VertexId::new(3));
        assert_eq!(p.first().index(), 3);
        assert_eq!(p.second().index(), 9);
        assert_eq!(p, VertexPair::new(VertexId::new(3), VertexId::new(9)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_rejects_equal_vertices() {
        let _ = VertexPair::new(VertexId::new(1), VertexId::new(1));
    }

    #[test]
    fn sorting_is_non_increasing_and_deterministic() {
        let sims = PairSimilarities::from_entries(vec![
            entry(0, 1, 0.5, &[2]),
            entry(2, 3, 0.9, &[4]),
            entry(0, 4, 0.5, &[1, 2]),
        ]);
        let sorted = sims.into_sorted();
        assert!(sorted.is_sorted());
        let scores: Vec<f64> = sorted.entries().iter().map(|e| e.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.5]);
        // tie broken by pair: (0,1) before (0,4)
        assert_eq!(sorted.entries()[1].pair, VertexPair::new(VertexId::new(0), VertexId::new(1)));
    }

    #[test]
    fn pair_counts() {
        let sims = PairSimilarities::from_entries(vec![
            entry(0, 1, 0.5, &[2]),
            entry(0, 4, 0.5, &[1, 2, 3]),
        ]);
        assert_eq!(sims.len(), 2);
        assert_eq!(sims.incident_pair_count(), 4);
        assert!(!sims.is_empty());
    }

    #[test]
    fn find_locates_pair() {
        let sims = PairSimilarities::from_entries(vec![entry(0, 1, 0.5, &[2])]);
        let p = VertexPair::new(VertexId::new(1), VertexId::new(0));
        assert!(sims.find(p).is_some());
        assert!(sims.find(VertexPair::new(VertexId::new(0), VertexId::new(2))).is_none());
    }

    #[test]
    fn from_sorted_accepts_sorted_rejects_unsorted() {
        let sorted = vec![entry(0, 1, 0.9, &[2]), entry(2, 3, 0.5, &[4])];
        let s = PairSimilarities::from_sorted(sorted);
        assert!(s.is_sorted());
        let unsorted = vec![entry(0, 1, 0.1, &[2]), entry(2, 3, 0.5, &[4])];
        let r = std::panic::catch_unwind(|| PairSimilarities::from_sorted(unsorted));
        assert!(r.is_err());
    }

    #[test]
    fn from_sorted_agrees_with_into_sorted_on_signed_zero_ties() {
        // Regression: 0.0 orders strictly before -0.0 under total_cmp,
        // so this list — which into_sorted itself produces — used to
        // trip the raw `==` validation (equal scores, pairs descending).
        let entries = vec![entry(2, 3, 0.0, &[4]), entry(0, 1, -0.0, &[2])];
        let sorted = PairSimilarities::from_entries(entries.clone()).into_sorted();
        assert_eq!(sorted.entries(), entries.as_slice(), "into_sorted keeps this order");
        let s = PairSimilarities::from_sorted(entries);
        assert!(s.is_sorted());
        // The converse order (-0.0 before 0.0) is NOT total_cmp-sorted
        // and must still be rejected.
        let reversed = vec![entry(0, 1, -0.0, &[2]), entry(2, 3, 0.0, &[4])];
        assert!(std::panic::catch_unwind(|| PairSimilarities::from_sorted(reversed)).is_err());
        // Plain equal-score ties still require ascending pair order.
        let bad_tie = vec![entry(2, 3, 0.5, &[4]), entry(0, 1, 0.5, &[2])];
        assert!(std::panic::catch_unwind(|| PairSimilarities::from_sorted(bad_tie)).is_err());
    }

    #[test]
    fn display_pair() {
        let p = VertexPair::new(VertexId::new(1), VertexId::new(0));
        assert_eq!(p.to_string(), "(v0, v1)");
    }
}
