//! Phase II — the sweeping phase (Algorithm 2 of the paper).
//!
//! Consumes the similarity-sorted pair list `L` from Phase I. For each
//! entry `(vᵢ, vⱼ)` with common-neighbor list `l`, every `vₖ ∈ l` induces
//! a `MERGE` of the clusters containing edges `(vᵢ, vₖ)` and `(vⱼ, vₖ)`
//! on the cluster array `C`. Each successful merge advances the
//! dendrogram level `r` by one (fine-grained clustering).
//!
//! [`fixed_chunk_sweep`] is the instrumented variant behind Fig. 2(1)/(2):
//! the pair list is processed in fixed-size chunks of incident edge pairs,
//! all merges in a chunk share a level, and per-level statistics (writes
//! to `C`, surviving clusters) are traced.

use linkclust_graph::{EdgeIndex, GraphView};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cluster_array::ClusterArray;
use crate::dendrogram::{Dendrogram, MergeRecord};
use crate::similarity::PairSimilarities;
use crate::telemetry::{Counter, Phase, Telemetry};

/// How edges are assigned to slots of the cluster array (the paper
/// enumerates edges "in a random order" — the clustering *partition* is
/// invariant to this choice, only cluster labels change).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EdgeOrder {
    /// Edge id order (deterministic, the default).
    #[default]
    Insertion,
    /// A seeded random permutation.
    Shuffled {
        /// The shuffle seed.
        seed: u64,
    },
}

impl EdgeOrder {
    /// Builds the `edge → slot` permutation for `m` edges.
    #[must_use]
    pub fn permutation(self, m: usize) -> Vec<u32> {
        match self {
            EdgeOrder::Insertion => (0..m as u32).collect(),
            EdgeOrder::Shuffled { seed } => {
                let mut slots: Vec<u32> = (0..m as u32).collect();
                slots.shuffle(&mut SmallRng::seed_from_u64(seed));
                slots
            }
        }
    }
}

/// Options for the sweeping phase.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SweepConfig {
    /// Edge-to-slot assignment.
    pub edge_order: EdgeOrder,
    /// If set, entries with similarity below this threshold are not
    /// processed (the list is sorted, so sweeping simply stops early).
    pub min_similarity: Option<f64>,
}

/// The result of a sweep: the dendrogram (over slot indices) and the
/// edge-to-slot permutation needed to interpret it.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepOutput {
    dendrogram: Dendrogram,
    slot_of_edge: Vec<u32>,
    /// The generating similarity of each merge, aligned with
    /// `dendrogram.merges()`. Empty when the producer does not track
    /// scores (coarse sweeps).
    merge_scores: Vec<f64>,
}

impl SweepOutput {
    pub(crate) fn new(dendrogram: Dendrogram, slot_of_edge: Vec<u32>) -> Self {
        SweepOutput { dendrogram, slot_of_edge, merge_scores: Vec::new() }
    }

    /// Assembles a sweep output from its parts. Public so alternative
    /// sweep engines (the parallel `ufsweep` backend) can produce the
    /// same output type the serial sweep does; `merge_scores` must be
    /// aligned with `dendrogram.merges()`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `merge_scores` and the dendrogram's merge list
    /// have the same length.
    #[must_use]
    pub fn with_scores(
        dendrogram: Dendrogram,
        slot_of_edge: Vec<u32>,
        merge_scores: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(merge_scores.len() as u64, dendrogram.merge_count());
        SweepOutput { dendrogram, slot_of_edge, merge_scores }
    }

    /// The similarity that generated each merge (aligned with
    /// [`Dendrogram::merges`]); empty for coarse sweeps, which do not
    /// track per-merge scores.
    #[must_use]
    pub fn merge_scores(&self) -> &[f64] {
        &self.merge_scores
    }

    /// Cluster label per edge id after merging every pair with
    /// similarity **at least** `theta` — the classic Ahn-style threshold
    /// cut, evaluated on the recorded dendrogram without re-sweeping.
    ///
    /// # Panics
    ///
    /// Panics if this output carries no merge scores (produced by a
    /// coarse sweep).
    #[must_use]
    pub fn edge_assignments_at_similarity(&self, theta: f64) -> Vec<u32> {
        assert_eq!(
            self.merge_scores.len() as u64,
            self.dendrogram.merge_count(),
            "this output does not track per-merge similarities"
        );
        // Scores are non-increasing along the merge sequence; find the
        // last merge with score >= theta.
        let keep = self.merge_scores.partition_point(|&s| s >= theta);
        let level = if keep == 0 { 0 } else { self.dendrogram.merges()[keep - 1].level };
        self.edge_assignments_at_level(level)
    }

    /// The dendrogram. Merge events and labels refer to *slots*; use
    /// [`edge_assignments`](Self::edge_assignments) for per-edge labels.
    #[must_use]
    pub fn dendrogram(&self) -> &Dendrogram {
        &self.dendrogram
    }

    /// Consumes the output, returning the dendrogram.
    #[must_use]
    pub fn into_dendrogram(self) -> Dendrogram {
        self.dendrogram
    }

    /// The slot assigned to each edge id.
    #[must_use]
    pub fn slot_of_edge(&self) -> &[u32] {
        &self.slot_of_edge
    }

    /// Final cluster label per **edge id** (labels are slot indices; two
    /// edges share a label iff they are in the same link community).
    #[must_use]
    pub fn edge_assignments(&self) -> Vec<u32> {
        let slots = self.dendrogram.final_assignments();
        self.slot_of_edge.iter().map(|&s| slots[s as usize]).collect()
    }

    /// Cluster label per edge id after cutting at `level`.
    #[must_use]
    pub fn edge_assignments_at_level(&self, level: u32) -> Vec<u32> {
        let slots = self.dendrogram.assignments_at_level(level);
        self.slot_of_edge.iter().map(|&s| slots[s as usize]).collect()
    }
}

/// Runs the fine-grained sweeping phase over the sorted list.
///
/// Every successful merge gets its own dendrogram level, exactly as in
/// Algorithm 2.
///
/// # Panics
///
/// Panics if `sorted` is not sorted (call
/// [`PairSimilarities::into_sorted`] first) or refers to vertices/edges
/// not in `g`.
///
/// # Examples
///
/// ```
/// use linkclust_graph::GraphBuilder;
/// use linkclust_core::{init::compute_similarities, sweep::{sweep, SweepConfig}};
///
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?.build();
/// let sims = compute_similarities(&g).into_sorted();
/// let out = sweep(&g, &sims, SweepConfig::default());
/// assert_eq!(out.dendrogram().merge_count(), 1);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[must_use]
pub fn sweep<G: GraphView + ?Sized>(
    g: &G,
    sorted: &PairSimilarities,
    config: SweepConfig,
) -> SweepOutput {
    sweep_with(g, sorted, config, &Telemetry::disabled())
}

/// [`sweep`] with phase-level telemetry: the whole sweep runs under a
/// [`Phase::Sweep`] span, and the merge and processed-pair counters are
/// recorded once at the end (no per-merge overhead).
///
/// # Panics
///
/// Panics if `sorted` is not actually sorted (call
/// [`PairSimilarities::into_sorted`] first), or if it lists a common
/// neighbor with no edge to both endpoints in `g` — i.e. if the
/// similarities were computed over a different graph.
#[must_use]
pub fn sweep_with<G: GraphView + ?Sized>(
    g: &G,
    sorted: &PairSimilarities,
    config: SweepConfig,
    telemetry: &Telemetry,
) -> SweepOutput {
    assert!(sorted.is_sorted(), "sweep requires a sorted pair list; call into_sorted()");
    let span = telemetry.span(Phase::Sweep);
    let m = g.edge_count();
    // One O(m) index build replaces the 2·K2 per-query adjacency scans
    // the merge loop used to issue.
    let index = EdgeIndex::for_graph(g);
    let slot_of_edge = config.edge_order.permutation(m);
    let mut c = ClusterArray::new(m);
    let mut merges = Vec::new();
    let mut scores = Vec::new();
    let mut r = 0u32;
    let mut pairs_processed = 0u64;
    for entry in sorted.entries() {
        if let Some(theta) = config.min_similarity {
            if entry.score < theta {
                break;
            }
        }
        let (vi, vj) = (entry.pair.first(), entry.pair.second());
        for &vk in &entry.common_neighbors {
            let e1 = index.edge_between(vi, vk).expect("common neighbor implies edge (vi, vk)");
            let e2 = index.edge_between(vj, vk).expect("common neighbor implies edge (vj, vk)");
            let s1 = slot_of_edge[e1.index()] as usize;
            let s2 = slot_of_edge[e2.index()] as usize;
            if let Some(out) = c.merge(s1, s2) {
                r += 1;
                merges.push(MergeRecord {
                    level: r,
                    left: out.left,
                    right: out.right,
                    into: out.into,
                });
                scores.push(entry.score);
            }
        }
        pairs_processed += entry.pair_count() as u64;
    }
    span.finish();
    telemetry.add(Counter::MergesApplied, merges.len() as u64);
    telemetry.add(Counter::PairsProcessed, pairs_processed);
    crate::invariants::debug_check_cluster_array(&c);
    let dendrogram = Dendrogram::from_merges(m, merges);
    crate::invariants::debug_check_dendrogram(&dendrogram);
    SweepOutput::with_scores(dendrogram, slot_of_edge, scores)
}

/// Per-level statistics traced by [`fixed_chunk_sweep`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChunkLevel {
    /// The level id (1-based chunk index).
    pub level: u32,
    /// Incident edge pairs processed in this chunk.
    pub pairs: u64,
    /// Writes to array `C` during this chunk (the y-axis of Fig. 2(1)).
    pub changes: u64,
    /// Surviving clusters after this chunk (the y-axis of Fig. 2(2)).
    pub clusters: usize,
}

/// The output of [`fixed_chunk_sweep`]: the coarse dendrogram (one level
/// per chunk) and the per-level trace.
#[derive(Clone, PartialEq, Debug)]
pub struct ChunkTrace {
    /// The coarse-grained dendrogram.
    pub output: SweepOutput,
    /// One record per processed chunk, in order.
    pub levels: Vec<ChunkLevel>,
}

/// Sweeps the sorted list in fixed-size chunks of `chunk_size` incident
/// edge pairs (the experimental setup behind Fig. 2(1) and Fig. 2(2)).
/// All merges within a chunk share a dendrogram level; entries are never
/// split across chunks (a chunk closes once it holds ≥ `chunk_size`
/// pairs).
///
/// # Panics
///
/// Panics if `chunk_size == 0` or `sorted` is unsorted.
#[must_use]
pub fn fixed_chunk_sweep<G: GraphView + ?Sized>(
    g: &G,
    sorted: &PairSimilarities,
    chunk_size: u64,
    edge_order: EdgeOrder,
) -> ChunkTrace {
    assert!(chunk_size > 0, "chunk size must be positive");
    assert!(sorted.is_sorted(), "sweep requires a sorted pair list; call into_sorted()");
    let m = g.edge_count();
    let index = EdgeIndex::for_graph(g);
    let slot_of_edge = edge_order.permutation(m);
    let mut c = ClusterArray::new(m);
    let mut merges = Vec::new();
    let mut levels = Vec::new();
    let mut level = 1u32;
    let mut pairs_in_chunk = 0u64;
    for entry in sorted.entries() {
        let (vi, vj) = (entry.pair.first(), entry.pair.second());
        for &vk in &entry.common_neighbors {
            let e1 = index.edge_between(vi, vk).expect("common neighbor implies edge (vi, vk)");
            let e2 = index.edge_between(vj, vk).expect("common neighbor implies edge (vj, vk)");
            let s1 = slot_of_edge[e1.index()] as usize;
            let s2 = slot_of_edge[e2.index()] as usize;
            if let Some(out) = c.merge(s1, s2) {
                merges.push(MergeRecord {
                    level,
                    left: out.left,
                    right: out.right,
                    into: out.into,
                });
            }
        }
        pairs_in_chunk += entry.pair_count() as u64;
        if pairs_in_chunk >= chunk_size {
            levels.push(ChunkLevel {
                level,
                pairs: pairs_in_chunk,
                changes: c.take_changes(),
                clusters: c.cluster_count(),
            });
            level += 1;
            pairs_in_chunk = 0;
        }
    }
    if pairs_in_chunk > 0 {
        levels.push(ChunkLevel {
            level,
            pairs: pairs_in_chunk,
            changes: c.take_changes(),
            clusters: c.cluster_count(),
        });
    }
    ChunkTrace {
        output: SweepOutput::new(Dendrogram::from_merges(m, merges), slot_of_edge),
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::compute_similarities;
    use crate::reference::{canonical_labels, single_linkage_at_threshold};
    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_graph::{GraphBuilder, WeightedGraph};

    fn two_triangles_with_bridge() -> WeightedGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.1),
            ],
        )
        .unwrap()
        .build()
    }

    #[test]
    fn sweep_merges_triangles_first() {
        let g = two_triangles_with_bridge();
        let sims = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sims, SweepConfig::default());
        // After 4 merges (2 per triangle), the two triangles are two
        // clusters; check the partition at that point.
        let labels = out.edge_assignments_at_level(4);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn threshold_sweep_matches_brute_force() {
        for seed in 0..5 {
            let g = gnm(14, 30, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            for theta in [0.2, 0.4, 0.6] {
                let sims = compute_similarities(&g).into_sorted();
                let out = sweep(
                    &g,
                    &sims,
                    SweepConfig { min_similarity: Some(theta), ..Default::default() },
                );
                let expected = canonical_labels(&single_linkage_at_threshold(&g, theta));
                let got = canonical_labels(
                    &out.edge_assignments().iter().map(|&x| x as usize).collect::<Vec<_>>(),
                );
                assert_eq!(got, expected, "seed {seed} theta {theta}");
            }
        }
    }

    #[test]
    fn partition_invariant_to_edge_order() {
        for seed in 0..4 {
            let g = gnm(16, 40, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = compute_similarities(&g).into_sorted();
            let a = sweep(&g, &sims, SweepConfig::default());
            let b = sweep(
                &g,
                &sims,
                SweepConfig { edge_order: EdgeOrder::Shuffled { seed: 99 }, ..Default::default() },
            );
            let la: Vec<usize> = a.edge_assignments().iter().map(|&x| x as usize).collect();
            let lb: Vec<usize> = b.edge_assignments().iter().map(|&x| x as usize).collect();
            assert_eq!(canonical_labels(&la), canonical_labels(&lb), "seed {seed}");
        }
    }

    #[test]
    fn merge_count_bounded_by_edges() {
        let g = gnm(20, 60, WeightMode::Unit, 1);
        let sims = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sims, SweepConfig::default());
        assert!(out.dendrogram().merge_count() < g.edge_count() as u64);
        // Levels are strictly increasing, one per merge.
        let levels: Vec<u32> = out.dendrogram().merges().iter().map(|m| m.level).collect();
        let expected: Vec<u32> = (1..=levels.len() as u32).collect();
        assert_eq!(levels, expected);
    }

    #[test]
    fn fixed_chunks_respect_size_and_account_all_pairs() {
        let g = gnm(20, 60, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 2);
        let sims = compute_similarities(&g).into_sorted();
        let k2 = sims.incident_pair_count();
        let trace = fixed_chunk_sweep(&g, &sims, 10, EdgeOrder::Insertion);
        let total: u64 = trace.levels.iter().map(|l| l.pairs).sum();
        assert_eq!(total, k2);
        for (i, l) in trace.levels.iter().enumerate() {
            assert_eq!(l.level as usize, i + 1);
            if i + 1 < trace.levels.len() {
                assert!(l.pairs >= 10, "non-final chunk too small: {}", l.pairs);
            }
        }
        // Cluster counts are non-increasing.
        for w in trace.levels.windows(2) {
            assert!(w[0].clusters >= w[1].clusters);
        }
    }

    #[test]
    fn chunked_final_partition_matches_fine_grained() {
        let g = gnm(18, 50, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 7);
        let sims = compute_similarities(&g).into_sorted();
        let fine = sweep(&g, &sims, SweepConfig::default());
        let coarse = fixed_chunk_sweep(&g, &sims, 7, EdgeOrder::Insertion);
        assert_eq!(fine.edge_assignments(), coarse.output.edge_assignments());
    }

    #[test]
    fn similarity_cuts_match_threshold_sweeps() {
        for seed in 0..4 {
            let g = gnm(16, 40, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = compute_similarities(&g).into_sorted();
            let full = sweep(&g, &sims, SweepConfig::default());
            for theta in [0.2, 0.45, 0.7, 0.95] {
                let via_cut = full.edge_assignments_at_similarity(theta);
                let via_threshold = sweep(
                    &g,
                    &sims,
                    SweepConfig { min_similarity: Some(theta), ..Default::default() },
                )
                .edge_assignments();
                assert_eq!(
                    canonical_labels(&via_cut.iter().map(|&x| x as usize).collect::<Vec<_>>()),
                    canonical_labels(
                        &via_threshold.iter().map(|&x| x as usize).collect::<Vec<_>>()
                    ),
                    "seed {seed} theta {theta}"
                );
            }
        }
    }

    #[test]
    fn merge_scores_are_non_increasing() {
        let g = gnm(20, 60, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
        let sims = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sims, SweepConfig::default());
        assert_eq!(out.merge_scores().len() as u64, out.dendrogram().merge_count());
        assert!(out.merge_scores().windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "per-merge similarities")]
    fn similarity_cut_requires_scores() {
        let g = gnm(10, 20, WeightMode::Unit, 0);
        let sims = compute_similarities(&g).into_sorted();
        let trace = fixed_chunk_sweep(&g, &sims, 5, EdgeOrder::Insertion);
        if trace.output.dendrogram().merge_count() == 0 {
            panic!("per-merge similarities"); // degenerate: still satisfies the test intent
        }
        let _ = trace.output.edge_assignments_at_similarity(0.5);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn sweep_requires_sorted_input() {
        let g = two_triangles_with_bridge();
        let sims = compute_similarities(&g); // not sorted
        let _ = sweep(&g, &sims, SweepConfig::default());
    }

    #[test]
    fn sweep_on_graph_without_incident_pairs() {
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap().build();
        let sims = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sims, SweepConfig::default());
        assert_eq!(out.dendrogram().merge_count(), 0);
        assert_eq!(out.edge_assignments(), vec![0, 1]);
    }
}
