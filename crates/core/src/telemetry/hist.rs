//! Log-linear latency histograms in the HDR-histogram style.
//!
//! A [`LogHistogram`] buckets non-negative `u64` samples (nanoseconds,
//! bytes, scaled gauge values — any magnitude) with a *bounded relative
//! error* instead of the unbounded absolute error of fixed-width bins:
//! each power-of-two octave is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so every bucket spans at most `1/64 ≈ 1.6%` of its
//! value — roughly two significant decimal digits, at every scale from
//! nanoseconds to hours. Values below [`SUB_BUCKETS`] are recorded
//! exactly.
//!
//! This replaces the lossy `{min, max, mean}` summaries the telemetry
//! layer used to keep for spans and gauges: a mean hides the queue-wait
//! burst or the one giant chunk entirely, while the histogram's
//! [`quantile`](LogHistogram::quantile) exposes p50/p90/p99 with known
//! precision. Memory stays small because the bucket table (at most
//! [`BUCKET_COUNT`] `u64` slots, ~30 KiB) is allocated lazily on the
//! first sample; an empty histogram is a handful of words.

/// Linear sub-buckets per power-of-two octave (64 ⇒ ≤ 1.6% relative
/// error per bucket, about two significant digits).
pub const SUB_BUCKETS: u64 = 64;

/// Number of value bits resolved exactly in the linear region
/// (`2^LINEAR_BITS == SUB_BUCKETS`).
const LINEAR_BITS: u32 = 6;

/// Total bucket count covering the full `u64` range: one exact bucket
/// per value below [`SUB_BUCKETS`], then 64 sub-buckets for each of the
/// 58 remaining octaves.
pub const BUCKET_COUNT: usize = (SUB_BUCKETS as usize) * 59;

/// Index of the bucket containing `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    // Highest set bit k >= LINEAR_BITS; keep the top LINEAR_BITS+1 bits,
    // whose low 6 select the sub-bucket inside octave k.
    let k = 63 - u64::leading_zeros(value);
    let sub = (value >> (k - LINEAR_BITS)) - SUB_BUCKETS;
    (k - LINEAR_BITS + 1) as usize * SUB_BUCKETS as usize + sub as usize
}

/// Lowest value mapping to bucket `index` (inverse of [`bucket_index`]).
fn bucket_low(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let octave = i / SUB_BUCKETS - 1 + u64::from(LINEAR_BITS);
    let sub = i % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (octave - u64::from(LINEAR_BITS))
}

/// Highest value mapping to bucket `index`.
fn bucket_high(index: usize) -> u64 {
    if index + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

/// A log-linear histogram of `u64` samples with ~2 significant digits of
/// relative precision (see the module docs for the bucket layout).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Lazily allocated bucket table ([`BUCKET_COUNT`] slots once any
    /// sample arrives; empty until then).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram; no bucket table is allocated until the first
    /// [`record`](Self::record).
    #[must_use]
    pub const fn new() -> Self {
        Self { counts: Vec::new(), count: 0, sum: 0, min: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKET_COUNT];
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Merges all samples of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKET_COUNT];
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no sample has been recorded.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub const fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub const fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of the recorded samples (`NaN` when empty; the
    /// JSON writers serialize non-finite values as `null`).
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // quantile summaries, not exact arithmetic
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// Iterates the non-empty buckets in ascending value order as
    /// `(upper_bound, count)` pairs, where `upper_bound` is the largest
    /// value mapping to the bucket (the last bucket's bound is
    /// `u64::MAX`). This is the exposition-facing view: a Prometheus
    /// renderer turns these into cumulative `le` buckets without ever
    /// touching the ~3.8k-slot internal table. Empty histograms yield
    /// nothing.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(index, &c)| (bucket_high(index), c))
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of the recorded
    /// samples, with the bucket layout's ~1.6% relative error: the value
    /// returned is the upper bound of the bucket holding the sample of
    /// rank `ceil(q * count)`, clamped to the exact observed
    /// `[min, max]`. Returns 0 when the histogram is empty.
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_finite() { q.clamp(0.0, 1.0) } else { 1.0 };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(index).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::{bucket_high, bucket_index, bucket_low, LogHistogram, BUCKET_COUNT, SUB_BUCKETS};

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's low bound is one past the previous bucket's high
        // bound, starting at zero.
        assert_eq!(bucket_low(0), 0);
        for i in 1..BUCKET_COUNT {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "gap at bucket {i}");
        }
        assert_eq!(bucket_high(BUCKET_COUNT - 1), u64::MAX);
        // bucket_index is the inverse of the bounds on a sweep of probes.
        for probe in [0u64, 1, 63, 64, 65, 127, 128, 1000, 4095, 1 << 20, u64::MAX] {
            let i = bucket_index(probe);
            assert!(bucket_low(i) <= probe && probe <= bucket_high(i), "probe {probe}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS {
            let q = (v + 1) as f64 / SUB_BUCKETS as f64;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        let value = 1_234_567_891u64;
        h.record(value);
        let got = h.quantile(0.5);
        // Single sample: the estimate is the bucket bound clamped to
        // [min, max] == [value, value], i.e. exact.
        assert_eq!(got, value);
        // Two distinct samples: each within 1/64 of the true value.
        let mut h = LogHistogram::new();
        h.record(1_000_000);
        h.record(3_000_000);
        for (q, truth) in [(0.5, 1_000_000f64), (1.0, 3_000_000f64)] {
            let got = h.quantile(q) as f64;
            assert!((got - truth).abs() / truth <= 1.0 / 64.0, "q={q}: got {got}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.5, 5_000f64), (0.9, 9_000f64), (0.99, 9_900f64)] {
            let got = h.quantile(q) as f64;
            assert!((got - truth).abs() / truth <= 1.0 / 64.0 + 1e-4, "q={q}: got {got}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [5u64, 700, 9_000, 1 << 33] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 80, 1 << 21] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging into / from empty histograms is the identity.
        let mut empty = LogHistogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
        all.merge(&LogHistogram::new());
        assert_eq!(empty, all);
    }

    #[test]
    fn empty_histogram_reports_zeroes_and_nan_mean() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.mean().is_nan());
        assert_eq!(h.nonzero_buckets().count(), 0, "empty histogram exposes no buckets");
    }

    #[test]
    fn single_sample_round_trips_through_buckets_and_quantiles() {
        let mut h = LogHistogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!((h.min(), h.max()), (42, 42));
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 42 < SUB_BUCKETS lands in an exact one-value bucket.
        assert_eq!(buckets, vec![(42, 1)]);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 42);
        }
    }

    #[test]
    fn top_octave_saturation_values_land_in_the_last_bucket() {
        let mut h = LogHistogram::new();
        // The largest representable values all map to the final bucket,
        // whose upper bound is u64::MAX — nothing panics or wraps.
        for v in [u64::MAX, u64::MAX - 1, bucket_low(BUCKET_COUNT - 1)] {
            h.record(v);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(u64::MAX, 3)]);
        // All three samples share the final bucket, so every quantile
        // reports that bucket's bound clamped to the observed range.
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.0), u64::MAX);
        assert_eq!(h.min(), bucket_low(BUCKET_COUNT - 1));
    }

    #[test]
    fn nonzero_buckets_are_ascending_and_sum_to_count() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 63, 64, 1000, 1000, 1 << 30, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "bounds ascend: {buckets:?}");
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        // Every recorded value is covered by some bucket's bound: the
        // top bucket's inclusive upper bound saturates at u64::MAX.
        assert!(buckets.iter().any(|&(le, _)| le == u64::MAX));
    }
}
