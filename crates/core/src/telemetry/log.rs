//! Leveled, rate-limited, line-delimited-JSON structured logging.
//!
//! The binaries in this workspace are long-running services
//! (`linkclustd`) and batch tools (`linkclust`, the bench drivers);
//! both need machine-parseable event logs without taking on a logging
//! framework. A [`Logger`] writes one strict-JSON object per line —
//! the same dependency-free serialization discipline as the serve
//! protocol — to stderr or a file:
//!
//! ```text
//! {"ts_ms":1738000000123,"level":"info","event":"conn_open","peer":"127.0.0.1:9","fd_queries":3}
//! ```
//!
//! Every event carries `ts_ms` (wall-clock Unix milliseconds), `level`,
//! and `event`; callers attach typed key/value fields. A disabled
//! logger ([`Logger::disabled`]) costs one `Option` branch per call
//! site, so the hooks can stay in place unconditionally.
//!
//! **Rate limiting** protects the hot path: at most
//! [`DEFAULT_EVENTS_PER_SEC`] events are written per one-second window
//! (configurable via [`Logger::with_rate_limit`]); excess events are
//! counted, and the first event of a later window emits a
//! `log_rate_limited` record carrying the suppressed count, so bursts
//! are visible without ever amplifying them.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default cap on events written per one-second window.
pub const DEFAULT_EVENTS_PER_SEC: u32 = 200;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Diagnostic detail, off by default.
    Debug = 0,
    /// Normal lifecycle events.
    Info = 1,
    /// Unexpected but survivable conditions.
    Warn = 2,
    /// Failures.
    Error = 3,
}

impl Level {
    /// The lowercase name used in the `level` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed field value. `From` impls cover the primitive types call
/// sites use, so fields read as `("peer", addr.as_str().into())`.
#[derive(Clone, Copy, Debug)]
pub enum Value<'a> {
    /// An unsigned integer (serialized exactly).
    U64(u64),
    /// A signed integer (serialized exactly).
    I64(i64),
    /// A float (non-finite values serialize as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped).
    Str(&'a str),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl<'a> From<&'a String> for Value<'a> {
    fn from(v: &'a String) -> Self {
        Value::Str(v.as_str())
    }
}

/// Where log lines go.
enum Sink {
    Stderr,
    File(std::fs::File),
    /// Test sink: accumulate lines in memory.
    #[cfg(test)]
    Buffer(Vec<u8>),
}

/// Mutable state behind the sink mutex: the writer plus the
/// rate-limiter window.
struct SinkState {
    sink: Sink,
    max_per_sec: u32,
    window_start: Instant,
    written_in_window: u32,
    suppressed: u64,
}

struct LoggerInner {
    min_level: Level,
    state: Mutex<SinkState>,
}

/// A cheap-to-clone handle writing leveled JSON log lines (see the
/// module docs for the line schema). All clones share one sink and one
/// rate-limiter.
#[derive(Clone, Default)]
pub struct Logger {
    inner: Option<Arc<LoggerInner>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger").field("enabled", &self.inner.is_some()).finish()
    }
}

impl Logger {
    /// The do-nothing logger: every call site stays a single branch.
    #[must_use]
    pub fn disabled() -> Self {
        Logger { inner: None }
    }

    /// A logger writing to stderr.
    #[must_use]
    pub fn to_stderr(min_level: Level) -> Self {
        Self::with_sink(Sink::Stderr, min_level)
    }

    /// A logger appending to the file at `path` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be opened.
    pub fn to_file(path: &Path, min_level: Level) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self::with_sink(Sink::File(file), min_level))
    }

    /// Resolves the `--log` CLI spec: the literal `stderr`, or a file
    /// path to append to.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a file spec cannot be opened.
    pub fn from_spec(spec: &str, min_level: Level) -> io::Result<Self> {
        if spec == "stderr" {
            Ok(Self::to_stderr(min_level))
        } else {
            Self::to_file(Path::new(spec), min_level)
        }
    }

    /// A logger accumulating lines in memory (tests only).
    #[cfg(test)]
    fn to_buffer(min_level: Level) -> Self {
        Self::with_sink(Sink::Buffer(Vec::new()), min_level)
    }

    fn with_sink(sink: Sink, min_level: Level) -> Self {
        Logger {
            inner: Some(Arc::new(LoggerInner {
                min_level,
                state: Mutex::new(SinkState {
                    sink,
                    max_per_sec: DEFAULT_EVENTS_PER_SEC,
                    window_start: Instant::now(),
                    written_in_window: 0,
                    suppressed: 0,
                }),
            })),
        }
    }

    /// Replaces the per-second event cap (0 suppresses everything
    /// except the suppression summaries themselves). Applies to every
    /// clone sharing this sink.
    #[must_use]
    pub fn with_rate_limit(self, max_per_sec: u32) -> Self {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap_or_else(PoisonError::into_inner).max_per_sec = max_per_sec;
        }
        self
    }

    /// `true` if events reach a sink.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Logs one event at `level` with the given key/value fields.
    /// Events below the logger's minimum level, and events beyond the
    /// per-second cap, are dropped (the latter are counted and
    /// surfaced in a later `log_rate_limited` record).
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Value<'_>)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        if level < inner.min_level {
            return;
        }
        let ts_ms = unix_millis();
        let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Roll the rate window; surface what the previous window dropped.
        if state.window_start.elapsed().as_secs() >= 1 {
            state.window_start = Instant::now();
            state.written_in_window = 0;
            if state.suppressed > 0 {
                let suppressed = state.suppressed;
                state.suppressed = 0;
                state.written_in_window += 1;
                let line = render_line(
                    ts_ms,
                    Level::Warn,
                    "log_rate_limited",
                    &[("suppressed", Value::U64(suppressed))],
                );
                write_line(&mut state.sink, &line);
            }
        }
        if state.written_in_window >= state.max_per_sec {
            state.suppressed += 1;
            return;
        }
        state.written_in_window += 1;
        let line = render_line(ts_ms, level, event, fields);
        write_line(&mut state.sink, &line);
    }

    /// Logs at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, Value<'_>)]) {
        self.log(Level::Debug, event, fields);
    }

    /// Logs at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, Value<'_>)]) {
        self.log(Level::Info, event, fields);
    }

    /// Logs at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, Value<'_>)]) {
        self.log(Level::Warn, event, fields);
    }

    /// Logs at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, Value<'_>)]) {
        self.log(Level::Error, event, fields);
    }

    /// The accumulated buffer contents (test sinks only).
    #[cfg(test)]
    fn buffer(&self) -> String {
        let inner = self.inner.as_ref().expect("buffer logger is enabled");
        let state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        match &state.sink {
            Sink::Buffer(buf) => String::from_utf8(buf.clone()).expect("log lines are UTF-8"),
            _ => panic!("not a buffer logger"),
        }
    }
}

/// Current wall-clock time in Unix milliseconds (0 if the clock reads
/// before the epoch).
fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Renders one complete log line (without the trailing newline).
fn render_line(ts_ms: u64, level: Level, event: &str, fields: &[(&str, Value<'_>)]) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"event\":", level.name());
    push_json_string(&mut s, event);
    for (key, value) in fields {
        s.push(',');
        push_json_string(&mut s, key);
        s.push(':');
        match *value {
            Value::U64(v) => {
                let _ = write!(s, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(s, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(s, "{v:?}");
                } else {
                    s.push_str("null");
                }
            }
            Value::Bool(v) => {
                let _ = write!(s, "{v}");
            }
            Value::Str(v) => push_json_string(&mut s, v),
        }
    }
    s.push('}');
    s
}

/// Appends `text` as a JSON string literal (RFC 8259 escaping).
fn push_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // cast: char scalar values are at most 0x10FFFF, lossless in u32
            c if (c as u32) < 0x20 => {
                // cast: same lossless char-to-u32 widening as the guard above
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes one line and flushes; I/O errors are swallowed — logging must
/// never take the process down.
fn write_line(sink: &mut Sink, line: &str) {
    match sink {
        Sink::Stderr => {
            let stderr = io::stderr();
            let mut handle = stderr.lock();
            let _ = writeln!(handle, "{line}");
        }
        Sink::File(file) => {
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
        #[cfg(test)]
        Sink::Buffer(buf) => {
            let _ = writeln!(buf, "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::trace::validate_json;

    #[test]
    fn disabled_logger_is_inert() {
        let log = Logger::disabled();
        assert!(!log.is_enabled());
        log.info("anything", &[("k", 1u64.into())]);
    }

    #[test]
    fn events_render_as_valid_json_lines_with_typed_fields() {
        let log = Logger::to_buffer(Level::Debug);
        log.info(
            "conn_open",
            &[
                ("peer", "127.0.0.1:9".into()),
                ("queries", 3u64.into()),
                ("hit_rate", 0.625f64.into()),
                ("ok", true.into()),
                ("delta", Value::I64(-7)),
                ("nan", f64::NAN.into()),
            ],
        );
        let text = log.buffer();
        let line = text.lines().next().expect("one line written");
        validate_json(line).expect("log line is strict JSON");
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"event\":\"conn_open\""));
        assert!(line.contains("\"peer\":\"127.0.0.1:9\""));
        assert!(line.contains("\"queries\":3"));
        assert!(line.contains("\"hit_rate\":0.625"));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"delta\":-7"));
        assert!(line.contains("\"nan\":null"), "non-finite floats serialize as null");
        assert!(line.contains("\"ts_ms\":"));
    }

    #[test]
    fn hostile_event_names_and_values_are_escaped() {
        let log = Logger::to_buffer(Level::Debug);
        log.warn("we\"ird\nevent", &[("k\\ey", "va\tl\u{1}ue".into())]);
        let text = log.buffer();
        let line = text.lines().next().expect("one line written");
        validate_json(line).expect("escaped line is strict JSON");
        assert!(line.contains("\\u0001"));
    }

    #[test]
    fn min_level_filters_events() {
        let log = Logger::to_buffer(Level::Warn);
        log.debug("d", &[]);
        log.info("i", &[]);
        log.warn("w", &[]);
        log.error("e", &[]);
        let text = log.buffer();
        assert_eq!(text.lines().count(), 2);
        assert!(!text.contains("\"event\":\"i\""));
        assert!(text.contains("\"event\":\"w\""));
        assert!(text.contains("\"event\":\"e\""));
    }

    #[test]
    fn rate_limiter_caps_a_burst_and_counts_suppressions() {
        let log = Logger::to_buffer(Level::Debug).with_rate_limit(5);
        for i in 0..50u64 {
            log.info("burst", &[("i", i.into())]);
        }
        let text = log.buffer();
        assert_eq!(text.lines().count(), 5, "burst capped at the window limit:\n{text}");
        // The suppression summary appears once a later window opens.
        std::thread::sleep(std::time::Duration::from_millis(1100));
        log.info("after", &[]);
        let text = log.buffer();
        assert!(text.contains("\"event\":\"log_rate_limited\""), "missing summary:\n{text}");
        assert!(text.contains("\"suppressed\":45"), "wrong suppressed count:\n{text}");
        assert!(text.contains("\"event\":\"after\""));
    }
}
