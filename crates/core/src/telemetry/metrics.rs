//! Dependency-free Prometheus text-format exposition.
//!
//! The telemetry layer records counters, gauges, and [`LogHistogram`]s;
//! this module renders them in the Prometheus text exposition format
//! (version `0.0.4` — the `text/plain` format every scraper accepts),
//! so a resident process like `linkclustd` can publish live metrics
//! without taking on a client-library dependency.
//!
//! The writer is family-oriented: call [`MetricsWriter::family`] once
//! per metric (it emits the `# HELP` / `# TYPE` pair), then one
//! [`sample`](MetricsWriter::sample) per label set — or
//! [`histogram`](MetricsWriter::histogram), which expands a
//! [`LogHistogram`] into the cumulative `_bucket{le=...}` series plus
//! `_sum` and `_count`. Only non-empty buckets are materialized, so a
//! latency histogram costs a handful of lines, not one per internal
//! bucket slot (~3.8k).
//!
//! [`TimeSeriesRing`] is the companion storage for runtime gauges
//! sampled on a ticker: a fixed-capacity ring of `(timestamp, value)`
//! pairs whose latest sample feeds a gauge family and whose window
//! min/max make short-term spikes visible in a stats document.

use std::collections::VecDeque;
use std::fmt::Write as _;

use super::hist::LogHistogram;

/// The metric kind announced in a family's `# TYPE` line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// A monotonically increasing counter.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A cumulative histogram (`_bucket`/`_sum`/`_count` series).
    Histogram,
}

impl MetricKind {
    /// The lowercase type keyword used on the `# TYPE` line.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// An incremental Prometheus text-format writer.
///
/// # Examples
///
/// ```
/// use linkclust_core::telemetry::metrics::{MetricKind, MetricsWriter};
///
/// let mut w = MetricsWriter::new();
/// w.family("linkclustd_queries_total", "Queries answered.", MetricKind::Counter);
/// w.sample_u64("linkclustd_queries_total", &[("kind", "cut")], 17);
/// let text = w.finish();
/// assert!(text.contains("linkclustd_queries_total{kind=\"cut\"} 17"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsWriter {
    out: String,
}

impl MetricsWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        MetricsWriter { out: String::with_capacity(4096) }
    }

    /// Starts a metric family: emits the `# HELP name help` and
    /// `# TYPE name kind` comment pair. Call once per family, before
    /// its samples; newlines and backslashes in `help` are escaped per
    /// the exposition format.
    pub fn family(&mut self, name: &str, help: &str, kind: MetricKind) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        for ch in help.chars() {
            match ch {
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                _ => self.out.push(ch),
            }
        }
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind.keyword());
        self.out.push('\n');
    }

    /// Emits one sample line: `name{labels} value`. Label values are
    /// escaped (`\`, `"`, newline); non-finite values render as the
    /// exposition tokens `NaN` / `+Inf` / `-Inf`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.sample_raw(name, labels, &format_value(value));
    }

    /// Emits one sample line with an exact integer value (no float
    /// round-trip, so `u64` counters above 2^53 stay exact).
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut buf = String::new();
        let _ = write!(buf, "{value}");
        self.sample_raw(name, labels, &buf);
    }

    /// Expands `hist` into the cumulative Prometheus histogram series
    /// `name_bucket{le=...}` (ascending, ending with `le="+Inf"`), plus
    /// `name_sum` and `name_count`. Recorded values are divided by
    /// `unit_scale` (e.g. `1e9` renders nanosecond samples in seconds,
    /// the Prometheus base unit); `labels` are attached to every line.
    /// Empty histograms emit only the `+Inf` bucket, `_sum 0`, and
    /// `_count 0`.
    ///
    /// # Panics
    ///
    /// Panics if `unit_scale` is not a positive finite number.
    #[allow(clippy::cast_precision_loss)] // exposition values are approximate by design
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        hist: &LogHistogram,
        unit_scale: f64,
    ) {
        assert!(
            // float-cmp: exact sign check guarding division, not a tolerance test
            unit_scale.is_finite() && unit_scale > 0.0,
            "unit_scale must be positive and finite"
        );
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (upper, count) in hist.nonzero_buckets() {
            cumulative += count;
            let le = format_value(upper as f64 / unit_scale);
            let mut with_le = Vec::with_capacity(labels.len() + 1);
            with_le.extend_from_slice(labels);
            with_le.push(("le", le.as_str()));
            let mut buf = String::new();
            let _ = write!(buf, "{cumulative}");
            self.sample_raw(&bucket_name, &with_le, &buf);
        }
        let mut with_le = Vec::with_capacity(labels.len() + 1);
        with_le.extend_from_slice(labels);
        with_le.push(("le", "+Inf"));
        let mut buf = String::new();
        let _ = write!(buf, "{}", hist.count());
        self.sample_raw(&bucket_name, &with_le, &buf);
        self.sample(&format!("{name}_sum"), labels, hist.sum() as f64 / unit_scale);
        self.sample_u64(&format!("{name}_count"), labels, hist.count());
    }

    /// The finished exposition document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn sample_raw(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for ch in v.chars() {
                    match ch {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        _ => self.out.push(ch),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }
}

/// Renders a float in exposition syntax: shortest round-trip for finite
/// values, the literal tokens `NaN` / `+Inf` / `-Inf` otherwise.
fn format_value(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else if value.is_nan() {
        "NaN".to_string()
    // float-cmp: value is +/-infinity here; sign test is exact
    } else if value > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// A fixed-capacity ring of timestamped gauge samples — the storage a
/// runtime-metrics ticker writes into. Pushing beyond capacity evicts
/// the oldest sample, so memory stays bounded no matter how long the
/// process runs.
#[derive(Clone, Debug)]
pub struct TimeSeriesRing {
    cap: usize,
    samples: VecDeque<(u64, f64)>,
}

impl TimeSeriesRing {
    /// A ring holding at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a time-series ring needs capacity for at least one sample");
        TimeSeriesRing { cap, samples: VecDeque::with_capacity(cap) }
    }

    /// Appends one `(timestamp, value)` sample, evicting the oldest
    /// when full. Timestamps are caller-defined (seconds since process
    /// start in the daemon).
    pub fn push(&mut self, at: u64, value: f64) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back((at, value));
    }

    /// The most recent sample, if any.
    #[must_use]
    pub fn latest(&self) -> Option<(u64, f64)> {
        self.samples.back().copied()
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no sample has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum number of retained samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Smallest finite value in the window, if any.
    #[must_use]
    pub fn window_min(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).filter(|v| v.is_finite()).reduce(f64::min)
    }

    /// Largest finite value in the window, if any.
    #[must_use]
    pub fn window_max(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).filter(|v| v.is_finite()).reduce(f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_and_samples_render_in_exposition_syntax() {
        let mut w = MetricsWriter::new();
        w.family("up_total", "Uptime.", MetricKind::Counter);
        w.sample_u64("up_total", &[], u64::MAX);
        w.family("rss_bytes", "Resident set size.", MetricKind::Gauge);
        w.sample("rss_bytes", &[("which", "peak")], 1.5e6);
        let text = w.finish();
        assert!(text.contains("# HELP up_total Uptime.\n# TYPE up_total counter\n"));
        assert!(text.contains(&format!("up_total {}\n", u64::MAX)), "u64 stays exact");
        assert!(text.contains("# TYPE rss_bytes gauge\n"));
        assert!(text.contains("rss_bytes{which=\"peak\"} 1500000.0\n"));
    }

    #[test]
    fn label_values_and_help_text_are_escaped() {
        let mut w = MetricsWriter::new();
        w.family("m", "line\nbreak \\ slash", MetricKind::Gauge);
        w.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        let text = w.finish();
        assert!(text.contains("# HELP m line\\nbreak \\\\ slash\n"));
        assert!(text.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1.0\n"));
    }

    #[test]
    fn non_finite_samples_use_exposition_tokens() {
        let mut w = MetricsWriter::new();
        w.family("g", "g", MetricKind::Gauge);
        w.sample("g", &[], f64::NAN);
        w.sample("g", &[], f64::INFINITY);
        w.sample("g", &[], f64::NEG_INFINITY);
        let text = w.finish();
        assert!(text.contains("g NaN\n"));
        assert!(text.contains("g +Inf\n"));
        assert!(text.contains("g -Inf\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let mut h = LogHistogram::new();
        for v in [10u64, 10, 2_000, 5_000_000] {
            h.record(v);
        }
        let mut w = MetricsWriter::new();
        w.family("lat_seconds", "Latency.", MetricKind::Histogram);
        w.histogram("lat_seconds", &[("kind", "cut")], &h, 1e9);
        let text = w.finish();
        // Bucket counts are cumulative and +Inf equals the total count.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]), "not cumulative: {text}");
        assert_eq!(*bucket_counts.last().unwrap(), 4);
        assert!(text.contains("le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_seconds_count{kind=\"cut\"} 4\n"));
        // The sum is the nanosecond total scaled to seconds.
        assert!(text.contains("lat_seconds_sum{kind=\"cut\"} 0.00500202\n"), "sum in {text}");
        // Every line of every series carries the caller's label.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.contains("kind=\"cut\""), "missing label: {line}");
        }
    }

    #[test]
    fn empty_histogram_still_emits_a_complete_series() {
        let mut w = MetricsWriter::new();
        w.family("lat", "Latency.", MetricKind::Histogram);
        w.histogram("lat", &[], &LogHistogram::new(), 1.0);
        let text = w.finish();
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("lat_sum 0.0\n"));
        assert!(text.contains("lat_count 0\n"));
    }

    #[test]
    fn ring_evicts_oldest_and_tracks_window_extremes() {
        let mut ring = TimeSeriesRing::new(3);
        assert!(ring.is_empty());
        assert_eq!(ring.window_min(), None);
        for (t, v) in [(1u64, 5.0f64), (2, 1.0), (3, 9.0), (4, 4.0)] {
            ring.push(t, v);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.latest(), Some((4, 4.0)));
        // The (1, 5.0) sample was evicted.
        assert_eq!(ring.window_min(), Some(1.0));
        assert_eq!(ring.window_max(), Some(9.0));
        ring.push(5, f64::NAN);
        assert_eq!(ring.window_max(), Some(9.0), "non-finite samples are skipped");
    }
}
