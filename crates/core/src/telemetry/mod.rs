//! Phase-level observability: timers, counters, gauges, and run reports.
//!
//! Every phase of the clustering pipeline — the three initialization
//! passes, the sort, the sweep, each coarse epoch, and the parallel
//! chunk-process/combine steps — can emit timing and counter events
//! through a [`Telemetry`] handle. The handle is **zero-cost when
//! disabled**: a disabled handle holds no recorder, [`Telemetry::span`]
//! never calls [`Instant::now`], and every counter update is a single
//! branch on an `Option`.
//!
//! The pieces:
//!
//! * [`Phase`], [`Counter`], [`Gauge`] — the typed event vocabulary.
//! * [`Recorder`] — the sink trait. Implement it to stream events into
//!   your own system (the bench harness does); [`NoopRecorder`] drops
//!   everything, [`RunRecorder`] aggregates into a [`RunReport`].
//! * [`Telemetry`] — the cheap, cloneable handle threaded through the
//!   pipeline. [`Telemetry::disabled`] is the default everywhere.
//! * [`RunReport`] — the aggregate: per-phase wall time and call counts,
//!   counters, gauge statistics, log-linear latency histograms
//!   (p50/p90/p99 via [`RunReport::phase_quantile_nanos`]), and
//!   per-thread item counts for load-imbalance analysis. Serializes to
//!   JSON ([`RunReport::to_json`]) and pretty-prints as a table (its
//!   [`Display`](fmt::Display) impl).
//! * [`trace`] — the per-thread event tracing subsystem
//!   ([`TraceCollector`], attached via [`Telemetry::with_tracer`]):
//!   lock-free per-thread ring buffers drained into Chrome trace-event
//!   JSON. [`hist`] holds the [`LogHistogram`] both layers share.
//! * [`metrics`] — the dependency-free Prometheus text-format renderer
//!   ([`MetricsWriter`]) plus [`TimeSeriesRing`] for ticker-sampled
//!   runtime gauges; [`log`] — leveled, rate-limited, line-delimited
//!   JSON structured logging ([`Logger`]).
//!
//! # Examples
//!
//! ```
//! use linkclust_core::telemetry::{Counter, Phase, RunRecorder, Telemetry};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(RunRecorder::new());
//! let t = Telemetry::new(recorder.clone());
//! {
//!     let _span = t.span(Phase::Sweep);
//!     t.add(Counter::MergesApplied, 3);
//! } // span drop records the elapsed time
//! let report = recorder.report();
//! assert_eq!(report.counter(Counter::MergesApplied), 3);
//! assert_eq!(report.phase_calls(Phase::Sweep), 1);
//! ```

pub mod hist;
pub mod log;
pub mod metrics;
pub mod trace;

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use hist::LogHistogram;
pub use log::{Level as LogLevel, Logger};
pub use metrics::{MetricKind, MetricsWriter, TimeSeriesRing};
pub use trace::{TraceCollector, TraceEvent, TraceLabel};

/// A timed phase of the clustering pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    /// Initialization pass 1: vertex norms `H₁`/`H₂`.
    InitPass1 = 0,
    /// Initialization pass 2: pair-map accumulation.
    InitPass2 = 1,
    /// Hierarchical merge of per-thread pair maps (parallel pass 2 only).
    InitMapMerge = 2,
    /// Initialization pass 3: adjacency correction + final similarity.
    InitPass3 = 3,
    /// Sorting the similarity list `L`.
    Sort = 4,
    /// The fine-grained sweeping phase (one span per sweep).
    Sweep = 5,
    /// One epoch of the coarse-grained sweep (one span per epoch,
    /// committed or rolled back).
    CoarseEpoch = 6,
    /// Per-thread chunk processing inside a parallel epoch.
    ChunkProcess = 7,
    /// Chain-union combination of per-thread cluster arrays.
    ChunkCombine = 8,
    /// Time a worker-pool task spent queued before a worker picked it up
    /// (one span per pooled task; high totals mean the pool is
    /// oversubscribed).
    PoolQueueWait = 9,
    /// Owner-thread fold of routed shard records into the flat
    /// accumulators (parallel pass 2 only — replaces the hierarchical
    /// map merge).
    InitShardFold = 10,
    /// Per-block local union-find candidate pass of the `ufsweep` engine
    /// (one span per block, recorded on the worker that ran it).
    SweepLocal = 11,
    /// Boundary-stitch phase of the `ufsweep` engine: the Borůvka-style
    /// minimum-spanning-forest filter over block-local candidates.
    SweepStitch = 12,
    /// Exact serial replay of surviving unions into the dendrogram
    /// (`ufsweep` engine).
    SweepReplay = 13,
    /// One light query answered by `linkclustd` (cut, membership, top-k,
    /// or profile — one span per request).
    ServeQuery = 14,
    /// One batch-admission job (full recluster) executed by the serve
    /// worker, from dequeue to fresh index built.
    ServeAdmit = 15,
    /// The atomic index swap publishing a freshly built index to query
    /// traffic (one span per swap; should be nanoseconds).
    ServeSwap = 16,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 17] = [
        Phase::InitPass1,
        Phase::InitPass2,
        Phase::InitShardFold,
        Phase::InitMapMerge,
        Phase::InitPass3,
        Phase::Sort,
        Phase::Sweep,
        Phase::SweepLocal,
        Phase::SweepStitch,
        Phase::SweepReplay,
        Phase::CoarseEpoch,
        Phase::ChunkProcess,
        Phase::ChunkCombine,
        Phase::PoolQueueWait,
        Phase::ServeQuery,
        Phase::ServeAdmit,
        Phase::ServeSwap,
    ];

    /// The stable snake_case name used in JSON and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::InitPass1 => "init_pass1",
            Phase::InitPass2 => "init_pass2",
            Phase::InitMapMerge => "init_map_merge",
            Phase::InitPass3 => "init_pass3",
            Phase::Sort => "sort",
            Phase::Sweep => "sweep",
            Phase::CoarseEpoch => "coarse_epoch",
            Phase::ChunkProcess => "chunk_process",
            Phase::ChunkCombine => "chunk_combine",
            Phase::PoolQueueWait => "pool_queue_wait",
            Phase::InitShardFold => "init_shard_fold",
            Phase::SweepLocal => "sweep_local",
            Phase::SweepStitch => "sweep_stitch",
            Phase::SweepReplay => "sweep_replay",
            Phase::ServeQuery => "serve_query",
            Phase::ServeAdmit => "serve_admit",
            Phase::ServeSwap => "serve_swap",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// A monotone event counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Counter {
    /// Vertex pairs with a common neighbor (K₁).
    PairsK1 = 0,
    /// Incident edge pairs (K₂).
    IncidentPairsK2 = 1,
    /// Merges recorded into the dendrogram.
    MergesApplied = 2,
    /// Incident edge pairs actually swept (≤ K₂ under φ-termination).
    PairsProcessed = 3,
    /// Committed coarse epochs (head or tail mode).
    EpochsCommitted = 4,
    /// Rolled-back coarse epochs.
    Rollbacks = 5,
    /// Saved rollback states committed wholesale (Case-I reuse).
    EpochsReused = 6,
    /// Epochs forced through despite violating the merge-rate bound
    /// (indivisible single-entry chunks).
    ForcedEpochs = 7,
    /// Dendrogram levels committed by the coarse sweep.
    LevelsCommitted = 8,
    /// Chunks handed to a chunk processor.
    ChunksProcessed = 9,
    /// Chunks the parallel processor handled serially (too small to be
    /// worth fanning out).
    SerialFallbackChunks = 10,
    /// Pairwise chain-union combinations of per-thread cluster arrays.
    ArrayCombines = 11,
    /// Tasks executed by the persistent worker pool (across all phases).
    PoolTasks = 12,
    /// `(pair, weight-product, common-neighbor)` records routed between
    /// producer and owner threads by the sharded parallel pass 2 (the
    /// shard-exchange volume; equals K₂ for a full pass).
    ShardRecords = 13,
    /// Trace events overwritten by per-thread ring-buffer overflow
    /// (see [`trace::TraceCollector::dropped`]); non-zero means the
    /// exported timeline is missing its oldest events.
    TraceEventsDropped = 14,
    /// Light queries answered by `linkclustd` (all kinds, hit or miss).
    ServeQueries = 15,
    /// Serve queries answered from the LRU answer cache.
    ServeCacheHits = 16,
    /// Serve queries computed from the index (cache misses).
    ServeCacheMisses = 17,
    /// Recluster jobs admitted to the serve worker queue.
    ServeAdmissions = 18,
    /// Index swaps published after a completed recluster.
    ServeSwaps = 19,
}

impl Counter {
    /// All counters, in display order.
    pub const ALL: [Counter; 20] = [
        Counter::PairsK1,
        Counter::IncidentPairsK2,
        Counter::MergesApplied,
        Counter::PairsProcessed,
        Counter::EpochsCommitted,
        Counter::Rollbacks,
        Counter::EpochsReused,
        Counter::ForcedEpochs,
        Counter::LevelsCommitted,
        Counter::ChunksProcessed,
        Counter::SerialFallbackChunks,
        Counter::ArrayCombines,
        Counter::PoolTasks,
        Counter::ShardRecords,
        Counter::TraceEventsDropped,
        Counter::ServeQueries,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeAdmissions,
        Counter::ServeSwaps,
    ];

    /// The stable snake_case name used in JSON and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::PairsK1 => "pairs_k1",
            Counter::IncidentPairsK2 => "incident_pairs_k2",
            Counter::MergesApplied => "merges_applied",
            Counter::PairsProcessed => "pairs_processed",
            Counter::EpochsCommitted => "epochs_committed",
            Counter::Rollbacks => "rollbacks",
            Counter::EpochsReused => "epochs_reused",
            Counter::ForcedEpochs => "forced_epochs",
            Counter::LevelsCommitted => "levels_committed",
            Counter::ChunksProcessed => "chunks_processed",
            Counter::SerialFallbackChunks => "serial_fallback_chunks",
            Counter::ArrayCombines => "array_combines",
            Counter::PoolTasks => "pool_tasks",
            Counter::ShardRecords => "shard_records",
            Counter::TraceEventsDropped => "trace_events_dropped",
            Counter::ServeQueries => "serve_queries",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeCacheMisses => "serve_cache_misses",
            Counter::ServeAdmissions => "serve_admissions",
            Counter::ServeSwaps => "serve_swaps",
        }
    }

    /// A one-line human description, used as metrics HELP text.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Counter::PairsK1 => "Vertex pairs with a common neighbor (K1).",
            Counter::IncidentPairsK2 => "Incident edge pairs (K2).",
            Counter::MergesApplied => "Merges recorded into the dendrogram.",
            Counter::PairsProcessed => "Incident edge pairs actually swept.",
            Counter::EpochsCommitted => "Committed coarse epochs.",
            Counter::Rollbacks => "Rolled-back coarse epochs.",
            Counter::EpochsReused => "Saved rollback states committed wholesale.",
            Counter::ForcedEpochs => "Epochs forced through despite the merge-rate bound.",
            Counter::LevelsCommitted => "Dendrogram levels committed by the coarse sweep.",
            Counter::ChunksProcessed => "Chunks handed to a chunk processor.",
            Counter::SerialFallbackChunks => "Chunks handled serially (too small to fan out).",
            Counter::ArrayCombines => "Pairwise chain-union combinations of cluster arrays.",
            Counter::PoolTasks => "Tasks executed by the persistent worker pool.",
            Counter::ShardRecords => "Records routed between threads by sharded pass 2.",
            Counter::TraceEventsDropped => "Trace events lost to ring-buffer overflow.",
            Counter::ServeQueries => "Light queries answered (all kinds, hit or miss).",
            Counter::ServeCacheHits => "Serve queries answered from the answer cache.",
            Counter::ServeCacheMisses => "Serve queries computed from the index.",
            Counter::ServeAdmissions => "Recluster jobs admitted to the serve worker queue.",
            Counter::ServeSwaps => "Index swaps published after a completed recluster.",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// A sampled quantity (aggregated as count/min/max/mean).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Gauge {
    /// The chunk size δ an epoch ran with (in incident edge pairs).
    ChunkSize = 0,
    /// Load factor of a flat pass-2 accumulator table when its pass
    /// finished (one sample per accumulator; low values mean the K₁
    /// estimate overshot).
    TableOccupancy = 1,
}

impl Gauge {
    /// All gauges, in display order.
    pub const ALL: [Gauge; 2] = [Gauge::ChunkSize, Gauge::TableOccupancy];

    /// The stable snake_case name used in JSON and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ChunkSize => "chunk_size",
            Gauge::TableOccupancy => "table_occupancy",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// A telemetry sink. Implementations must be cheap and thread-safe — the
/// pipeline calls them from worker threads.
pub trait Recorder: Send + Sync {
    /// One completed span of `phase`, lasting `nanos` nanoseconds.
    fn record_phase(&self, phase: Phase, nanos: u64);
    /// Increments `counter` by `value`.
    fn add(&self, counter: Counter, value: u64);
    /// Records one sample of `gauge`.
    fn observe(&self, gauge: Gauge, value: f64);
    /// Records that worker `thread` handled `items` work items (used for
    /// load-imbalance analysis; accumulates across calls).
    fn thread_items(&self, thread: usize, items: u64);
}

/// A recorder that drops every event. Useful as an explicit "measure the
/// instrumentation overhead" sink; prefer [`Telemetry::disabled`] when
/// you simply don't want telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record_phase(&self, _phase: Phase, _nanos: u64) {}
    fn add(&self, _counter: Counter, _value: u64) {}
    fn observe(&self, _gauge: Gauge, _value: f64) {}
    fn thread_items(&self, _thread: usize, _items: u64) {}
}

/// The handle threaded through the pipeline. Cloning is cheap (an `Arc`
/// clone or a no-op). A disabled handle skips all clock reads and sink
/// calls.
///
/// Independently of the aggregate [`Recorder`], a handle may carry a
/// [`trace::TraceCollector`] ([`with_tracer`](Self::with_tracer)):
/// every [`span`](Self::span) then also lands on the calling thread's
/// trace timeline, and the worker pool records its per-task execution
/// intervals through [`trace_task`](Self::trace_task).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<dyn Recorder>>,
    tracer: Option<Arc<trace::TraceCollector>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .field("tracing", &self.tracer.is_some())
            .finish()
    }
}

impl Telemetry {
    /// The do-nothing handle (the default for every pipeline entry
    /// point).
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None, tracer: None }
    }

    /// A handle forwarding every event to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Telemetry { inner: Some(recorder), tracer: None }
    }

    /// Attaches a trace collector: spans (and pool-task executions) are
    /// additionally recorded as per-thread timeline events.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<trace::TraceCollector>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// `true` if events reach a recorder.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` if a trace collector is attached.
    #[must_use]
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The attached trace collector, if any.
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<trace::TraceCollector>> {
        self.tracer.as_ref()
    }

    /// Starts a timed span for `phase`; the elapsed time is recorded when
    /// the returned guard drops (or [`Span::finish`] is called) — into
    /// the recorder, the trace timeline, or both, whichever is attached.
    /// Disabled handles never read the clock.
    #[must_use = "the span measures until it is dropped"]
    pub fn span(&self, phase: Phase) -> Span<'_> {
        let recorder = self.inner.as_deref();
        let tracer = self.tracer.as_deref();
        let active = (recorder.is_some() || tracer.is_some()).then(|| SpanInner {
            recorder,
            tracer,
            phase,
            start: Instant::now(),
        });
        Span { active }
    }

    /// Starts a trace-only interval for the execution of pool task `seq`
    /// on the calling thread; recorded when the guard drops. A no-op
    /// (no clock read) unless a tracer is attached.
    #[must_use = "the guard traces until it is dropped"]
    pub fn trace_task(&self, seq: u64) -> TaskTrace<'_> {
        TaskTrace { active: self.tracer.as_deref().map(|t| (t, seq, Instant::now())) }
    }

    /// Increments `counter` by `value`.
    #[inline]
    pub fn add(&self, counter: Counter, value: u64) {
        if let Some(r) = &self.inner {
            r.add(counter, value);
        }
    }

    /// Records one sample of `gauge`.
    #[inline]
    pub fn observe(&self, gauge: Gauge, value: f64) {
        if let Some(r) = &self.inner {
            r.observe(gauge, value);
        }
    }

    /// Records `items` work items handled by worker `thread`.
    #[inline]
    pub fn thread_items(&self, thread: usize, items: u64) {
        if let Some(r) = &self.inner {
            r.thread_items(thread, items);
        }
    }

    /// Records one completed span of `phase` whose duration was measured
    /// externally — for timings that cross thread boundaries (e.g. the
    /// queue wait of a pooled task, where the clock starts on the
    /// submitting thread and stops on the worker) and therefore cannot
    /// use the guard-based [`span`](Self::span) API. Such timings feed
    /// the aggregate report (including its latency histograms) but not
    /// the trace timeline: an interval that straddles two threads has no
    /// single-thread lane to render in.
    #[inline]
    pub fn record_phase_nanos(&self, phase: Phase, nanos: u64) {
        if let Some(r) = &self.inner {
            r.record_phase(phase, nanos);
        }
    }
}

/// A timing guard returned by [`Telemetry::span`]. Records the elapsed
/// wall time into the recorder and/or the trace timeline on drop. Spans
/// nest naturally — each one records its own phase independently.
pub struct Span<'a> {
    active: Option<SpanInner<'a>>,
}

/// The live state of an enabled [`Span`].
struct SpanInner<'a> {
    recorder: Option<&'a dyn Recorder>,
    tracer: Option<&'a trace::TraceCollector>,
    phase: Phase,
    start: Instant,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.active.take() {
            let nanos = inner.start.elapsed().as_nanos() as u64;
            if let Some(recorder) = inner.recorder {
                recorder.record_phase(inner.phase, nanos);
            }
            if let Some(tracer) = inner.tracer {
                tracer.record(trace::TraceLabel::Phase(inner.phase), inner.start, nanos);
            }
        }
    }
}

/// A trace guard returned by [`Telemetry::trace_task`]: records one
/// pool-task execution interval on the calling thread's timeline when
/// dropped. Inert (and clock-free) when no tracer is attached.
pub struct TaskTrace<'a> {
    active: Option<(&'a trace::TraceCollector, u64, Instant)>,
}

impl Drop for TaskTrace<'_> {
    fn drop(&mut self) {
        if let Some((tracer, seq, start)) = self.active.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            tracer.record(trace::TraceLabel::PoolTask { seq }, start, nanos);
        }
    }
}

/// Aggregated statistics of one gauge.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct GaugeStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when `count == 0`).
    pub min: f64,
    /// Largest sample (0 when `count == 0`).
    pub max: f64,
}

impl GaugeStats {
    /// The mean sample, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }
}

/// Fixed-point scale applied to gauge samples before they enter their
/// integer [`LogHistogram`] (samples are multiplied by this and
/// rounded, quantiles divided back out), preserving three fractional
/// digits on top of the histogram's ~2 significant digits.
const GAUGE_HIST_SCALE: f64 = 1000.0;

/// The aggregate of one clustering run: per-phase wall time and call
/// counts, counters, gauge statistics, per-phase and per-gauge
/// log-linear latency histograms (p50/p90/p99 with ~2 significant
/// digits), and per-thread item counts.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RunReport {
    phase_nanos: [u64; Phase::ALL.len()],
    phase_calls: [u64; Phase::ALL.len()],
    phase_hist: [LogHistogram; Phase::ALL.len()],
    counters: [u64; Counter::ALL.len()],
    gauges: [GaugeStats; Gauge::ALL.len()],
    gauge_hist: [LogHistogram; Gauge::ALL.len()],
    thread_items: Vec<u64>,
}

impl RunReport {
    /// Total wall time spent in `phase`, in nanoseconds (sums over all
    /// spans of that phase).
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    /// Number of spans recorded for `phase`.
    #[must_use]
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.phase_calls[phase.index()]
    }

    /// The value of `counter`.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Aggregated statistics of `gauge`.
    #[must_use]
    pub fn gauge(&self, gauge: Gauge) -> GaugeStats {
        self.gauges[gauge.index()]
    }

    /// The log-linear histogram of individual span durations of `phase`
    /// (one sample per span, in nanoseconds).
    #[must_use]
    pub fn phase_histogram(&self, phase: Phase) -> &LogHistogram {
        &self.phase_hist[phase.index()]
    }

    /// The `q`-quantile of individual span durations of `phase`, in
    /// nanoseconds with ~2 significant digits (0 when the phase never
    /// ran). `phase_quantile_nanos(p, 0.5)` is the median span.
    #[must_use]
    pub fn phase_quantile_nanos(&self, phase: Phase, q: f64) -> u64 {
        self.phase_hist[phase.index()].quantile(q)
    }

    /// The log-linear histogram of `gauge` samples, in fixed-point
    /// thousandths (see [`gauge_quantile`](Self::gauge_quantile) for the
    /// descaled view).
    #[must_use]
    pub fn gauge_histogram(&self, gauge: Gauge) -> &LogHistogram {
        &self.gauge_hist[gauge.index()]
    }

    /// The `q`-quantile of `gauge` samples with ~2 significant digits,
    /// or `NaN` when the gauge was never observed (serialized as `null`
    /// in JSON).
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // quantile summaries, not exact arithmetic
    pub fn gauge_quantile(&self, gauge: Gauge, q: f64) -> f64 {
        let hist = &self.gauge_hist[gauge.index()];
        if hist.is_empty() {
            f64::NAN
        } else {
            hist.quantile(q) as f64 / GAUGE_HIST_SCALE
        }
    }

    /// Work items per worker thread, indexed by thread id. Empty when no
    /// parallel stage ran.
    #[must_use]
    pub fn thread_items(&self) -> &[u64] {
        &self.thread_items
    }

    /// Load imbalance of the parallel stages: `max / mean` of the
    /// per-thread item counts.
    ///
    /// Convention: **`0.0` means "no data"** — no parallel stage
    /// recorded thread items at all. Any recorded distribution yields a
    /// value `>= 1.0`: `1.0` is perfectly balanced, and that includes
    /// the degenerate all-idle case (every thread recorded zero items —
    /// a uniform distribution, not an unmeasured one). Callers can
    /// therefore distinguish "perfect balance" (`== 1.0`) from "nothing
    /// measured" (`== 0.0`).
    #[must_use]
    pub fn load_imbalance(&self) -> f64 {
        let busy = &self.thread_items;
        if busy.is_empty() {
            return 0.0;
        }
        let max = busy.iter().copied().max().unwrap_or(0) as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Serializes the report as a single-line JSON object with stable
    /// keys (`phases`, `counters`, `gauges`, `thread_items`). Each phase
    /// carries its totals plus `p50_nanos`/`p90_nanos`/`p99_nanos`
    /// per-span quantiles; each gauge its range plus `p50`/`p90`/`p99`
    /// (all `null` — never a bare `NaN` — when unobserved).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\"phases\":{");
        let mut first = true;
        for p in Phase::ALL {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\"{}\":{{\"nanos\":{},\"calls\":{},\
                 \"p50_nanos\":{},\"p90_nanos\":{},\"p99_nanos\":{}}}",
                p.name(),
                self.phase_nanos(p),
                self.phase_calls(p),
                self.phase_quantile_nanos(p, 0.5),
                self.phase_quantile_nanos(p, 0.9),
                self.phase_quantile_nanos(p, 0.99),
            ));
        }
        s.push_str("},\"counters\":{");
        first = true;
        for c in Counter::ALL {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{}\":{}", c.name(), self.counter(c)));
        }
        s.push_str("},\"gauges\":{");
        first = true;
        for g in Gauge::ALL {
            if !first {
                s.push(',');
            }
            first = false;
            let st = self.gauge(g);
            s.push_str(&format!(
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                g.name(),
                st.count,
                json_f64(st.min),
                json_f64(st.max),
                json_f64(st.mean()),
                json_f64(self.gauge_quantile(g, 0.5)),
                json_f64(self.gauge_quantile(g, 0.9)),
                json_f64(self.gauge_quantile(g, 0.99)),
            ));
        }
        s.push_str("},\"thread_items\":[");
        for (i, items) in self.thread_items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&items.to_string());
        }
        s.push_str("]}");
        s
    }

    fn merge_event(&mut self, event: &TelemetryEvent) {
        match *event {
            TelemetryEvent::Phase(p, nanos) => {
                self.phase_nanos[p.index()] += nanos;
                self.phase_calls[p.index()] += 1;
                self.phase_hist[p.index()].record(nanos);
            }
            TelemetryEvent::Counter(c, value) => self.counters[c.index()] += value,
            TelemetryEvent::Gauge(g, value) => {
                self.gauges[g.index()].observe(value);
                if value.is_finite() {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    // negative samples clamp to the zero bucket
                    let scaled = (value * GAUGE_HIST_SCALE).round().max(0.0) as u64;
                    self.gauge_hist[g.index()].record(scaled);
                }
            }
            TelemetryEvent::ThreadItems(thread, items) => {
                if self.thread_items.len() <= thread {
                    self.thread_items.resize(thread + 1, 0);
                }
                self.thread_items[thread] += items;
            }
        }
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` is the shortest representation that round-trips.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

impl fmt::Display for RunReport {
    /// A human-readable table: phases with time, call counts, and
    /// per-span p50/p99 latencies, then non-zero counters, gauges (with
    /// p50/p90/p99), and the per-thread item counts.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<18} {:>12} {:>8} {:>12} {:>12}", "phase", "time", "calls", "p50", "p99")?;
        for p in Phase::ALL {
            if self.phase_calls(p) == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<18} {:>12} {:>8} {:>12} {:>12}",
                p.name(),
                format_nanos(self.phase_nanos(p)),
                self.phase_calls(p),
                format_nanos(self.phase_quantile_nanos(p, 0.5)),
                format_nanos(self.phase_quantile_nanos(p, 0.99)),
            )?;
        }
        writeln!(f, "{:<18} {:>12}", "counter", "value")?;
        for c in Counter::ALL {
            if self.counter(c) == 0 {
                continue;
            }
            writeln!(f, "{:<18} {:>12}", c.name(), self.counter(c))?;
        }
        for g in Gauge::ALL {
            let st = self.gauge(g);
            if st.count == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<18} {} samples, min {:.1}, p50 {:.1}, p90 {:.1}, p99 {:.1}, max {:.1}",
                g.name(),
                st.count,
                st.min,
                self.gauge_quantile(g, 0.5),
                self.gauge_quantile(g, 0.9),
                self.gauge_quantile(g, 0.99),
                st.max,
            )?;
        }
        if !self.thread_items.is_empty() {
            let items: Vec<String> = self.thread_items.iter().map(u64::to_string).collect();
            writeln!(
                f,
                "{:<18} [{}] (imbalance {:.2})",
                "thread_items",
                items.join(", "),
                self.load_imbalance()
            )?;
        }
        Ok(())
    }
}

fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// One raw telemetry event, as delivered to a [`Recorder`]. Public so
/// external sinks (e.g. the bench harness's event log) can buffer the
/// exact stream instead of redefining it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TelemetryEvent {
    /// One completed span: `(phase, nanoseconds)`.
    Phase(Phase, u64),
    /// A counter increment: `(counter, delta)`.
    Counter(Counter, u64),
    /// One gauge sample: `(gauge, value)`.
    Gauge(Gauge, f64),
    /// Work items attributed to a worker: `(thread index, items)`.
    ThreadItems(usize, u64),
}

/// A [`Recorder`] that aggregates every event into a [`RunReport`].
///
/// Aggregation happens eagerly under a mutex; the per-event critical
/// section is a few array writes. The pipeline batches its hot-loop
/// counters (one `add` per phase, not per merge), so contention is
/// negligible.
#[derive(Default)]
pub struct RunRecorder {
    report: Mutex<RunReport>,
}

impl RunRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    ///
    /// Telemetry recovers from a poisoned mutex (a panicking worker must
    /// not cascade into the reporting path), so this never panics.
    pub fn report(&self) -> RunReport {
        self.lock().clone()
    }

    /// Locks the report, recovering from poisoning: the aggregate state
    /// is a set of monotone counters, so a partial update from a
    /// panicked worker is still meaningful.
    fn lock(&self) -> std::sync::MutexGuard<'_, RunReport> {
        self.report.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl fmt::Debug for RunRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunRecorder").finish_non_exhaustive()
    }
}

impl Recorder for RunRecorder {
    fn record_phase(&self, phase: Phase, nanos: u64) {
        self.lock().merge_event(&TelemetryEvent::Phase(phase, nanos));
    }

    fn add(&self, counter: Counter, value: u64) {
        self.lock().merge_event(&TelemetryEvent::Counter(counter, value));
    }

    fn observe(&self, gauge: Gauge, value: f64) {
        self.lock().merge_event(&TelemetryEvent::Gauge(gauge, value));
    }

    fn thread_items(&self, thread: usize, items: u64) {
        self.lock().merge_event(&TelemetryEvent::ThreadItems(thread, items));
    }
}

/// How a facade collects telemetry: off, an internal [`RunRecorder`]
/// exposed via the result's `report()`, or a caller-supplied sink.
#[derive(Clone, Default)]
pub enum TelemetrySink {
    /// No telemetry (the default).
    #[default]
    Off,
    /// Aggregate into a [`RunReport`] attached to the result.
    Stats,
    /// Forward events to a caller-supplied recorder; the result carries
    /// no report.
    Custom(
        /// The sink.
        Arc<dyn Recorder>,
    ),
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetrySink::Off => write!(f, "Off"),
            TelemetrySink::Stats => write!(f, "Stats"),
            TelemetrySink::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl TelemetrySink {
    /// Builds the handle to thread through a run, plus the internal
    /// recorder to read the report from afterwards (for
    /// [`TelemetrySink::Stats`]).
    #[must_use]
    pub fn build(&self) -> (Telemetry, Option<Arc<RunRecorder>>) {
        match self {
            TelemetrySink::Off => (Telemetry::disabled(), None),
            TelemetrySink::Stats => {
                let recorder = Arc::new(RunRecorder::new());
                (Telemetry::new(recorder.clone()), Some(recorder))
            }
            TelemetrySink::Custom(recorder) => (Telemetry::new(recorder.clone()), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_is_cheap() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let span = t.span(Phase::Sweep);
        assert!(span.active.is_none(), "disabled spans must not read the clock");
        drop(span);
        t.add(Counter::MergesApplied, 10);
        t.observe(Gauge::ChunkSize, 5.0);
        t.thread_items(0, 100);
    }

    #[test]
    fn run_recorder_aggregates_all_event_kinds() {
        let rec = Arc::new(RunRecorder::new());
        let t = Telemetry::new(rec.clone());
        assert!(t.is_enabled());
        t.span(Phase::InitPass1).finish();
        t.span(Phase::InitPass1).finish();
        t.add(Counter::PairsK1, 7);
        t.add(Counter::PairsK1, 3);
        t.observe(Gauge::ChunkSize, 2.0);
        t.observe(Gauge::ChunkSize, 6.0);
        t.thread_items(1, 5);
        t.thread_items(0, 10);
        t.thread_items(1, 5);
        let r = rec.report();
        assert_eq!(r.phase_calls(Phase::InitPass1), 2);
        assert_eq!(r.counter(Counter::PairsK1), 10);
        let g = r.gauge(Gauge::ChunkSize);
        assert_eq!(g.count, 2);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 6.0);
        assert_eq!(g.mean(), 4.0);
        assert_eq!(r.thread_items(), &[10, 10]);
        assert_eq!(r.load_imbalance(), 1.0);
    }

    #[test]
    fn span_times_accumulate() {
        let rec = Arc::new(RunRecorder::new());
        let t = Telemetry::new(rec.clone());
        {
            let _outer = t.span(Phase::Sweep);
            let _inner = t.span(Phase::CoarseEpoch);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let r = rec.report();
        assert!(r.phase_nanos(Phase::Sweep) >= 2_000_000);
        assert!(r.phase_nanos(Phase::CoarseEpoch) >= 2_000_000);
    }

    #[test]
    fn json_has_stable_shape() {
        let rec = RunRecorder::new();
        rec.add(Counter::MergesApplied, 42);
        rec.record_phase(Phase::Sort, 1500);
        rec.observe(Gauge::ChunkSize, 3.5);
        rec.thread_items(0, 9);
        let json = rec.report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"merges_applied\":42"));
        assert!(json.contains("\"sort\":{\"nanos\":1500,\"calls\":1,"));
        assert!(json.contains("\"p50_nanos\":1500"));
        assert!(json.contains("\"chunk_size\":{\"count\":1,\"min\":3.5,\"max\":3.5,\"mean\":3.5,"));
        assert!(json.contains("\"p50\":3.5"));
        assert!(json.contains("\"thread_items\":[9]"));
        trace::validate_json(&json).unwrap();
        // Every name appears exactly once.
        for p in Phase::ALL {
            assert_eq!(json.matches(&format!("\"{}\"", p.name())).count(), 1);
        }
        for c in Counter::ALL {
            assert_eq!(json.matches(&format!("\"{}\"", c.name())).count(), 1);
        }
    }

    #[test]
    fn table_hides_empty_rows() {
        let rec = RunRecorder::new();
        rec.add(Counter::Rollbacks, 2);
        rec.record_phase(Phase::Sweep, 5_000_000);
        let table = rec.report().to_string();
        assert!(table.contains("rollbacks"));
        assert!(table.contains("sweep"));
        assert!(table.contains("5.000ms"));
        assert!(!table.contains("init_pass1"));
        assert!(!table.contains("chunk_size"));
    }

    #[test]
    fn sink_modes_build_correctly() {
        let (t, r) = TelemetrySink::Off.build();
        assert!(!t.is_enabled() && r.is_none());
        let (t, r) = TelemetrySink::Stats.build();
        assert!(t.is_enabled() && r.is_some());
        let (t, r) = TelemetrySink::Custom(Arc::new(NoopRecorder)).build();
        assert!(t.is_enabled() && r.is_none());
    }

    #[test]
    fn report_exposes_span_quantiles() {
        let rec = RunRecorder::new();
        for nanos in [100u64, 200, 300, 400, 1_000_000] {
            rec.record_phase(Phase::PoolQueueWait, nanos);
        }
        let r = rec.report();
        let hist = r.phase_histogram(Phase::PoolQueueWait);
        assert_eq!(hist.count(), 5);
        let p50 = r.phase_quantile_nanos(Phase::PoolQueueWait, 0.5);
        assert!((290..=310).contains(&p50), "p50 was {p50}");
        let p99 = r.phase_quantile_nanos(Phase::PoolQueueWait, 0.99);
        assert!((984_375..=1_015_625).contains(&p99), "p99 was {p99}");
        // Unobserved phases report zero quantiles.
        assert_eq!(r.phase_quantile_nanos(Phase::Sweep, 0.5), 0);
    }

    #[test]
    fn gauge_quantiles_skip_non_finite_samples() {
        let rec = RunRecorder::new();
        rec.observe(Gauge::ChunkSize, f64::NAN);
        rec.observe(Gauge::ChunkSize, f64::INFINITY);
        rec.observe(Gauge::ChunkSize, 8.0);
        let r = rec.report();
        // The lossy min/max stats see every sample; the histogram only
        // the finite one.
        assert_eq!(r.gauge(Gauge::ChunkSize).count, 3);
        assert_eq!(r.gauge_histogram(Gauge::ChunkSize).count(), 1);
        assert!((r.gauge_quantile(Gauge::ChunkSize, 0.5) - 8.0).abs() < 1e-9);
        // Unobserved gauges quantile to NaN, which serializes as null.
        assert!(r.gauge_quantile(Gauge::TableOccupancy, 0.5).is_nan());
        let json = r.to_json();
        assert!(json.contains("\"table_occupancy\":{\"count\":0,\"min\":0.0,\"max\":0.0,\"mean\":0.0,\"p50\":null,\"p90\":null,\"p99\":null}"));
        trace::validate_json(&json).unwrap();
    }

    #[test]
    fn load_imbalance_distinguishes_no_data_from_all_idle() {
        // No parallel stage ran: 0.0 means "no data".
        assert_eq!(RunReport::default().load_imbalance(), 0.0);
        // Threads recorded but uniformly idle: balanced, so 1.0.
        let rec = RunRecorder::new();
        rec.thread_items(0, 0);
        rec.thread_items(1, 0);
        assert_eq!(rec.report().load_imbalance(), 1.0);
        // A skewed distribution exceeds 1.0.
        let rec = RunRecorder::new();
        rec.thread_items(0, 30);
        rec.thread_items(1, 10);
        assert_eq!(rec.report().load_imbalance(), 1.5);
    }

    #[test]
    fn traced_span_lands_on_recorder_and_timeline() {
        let rec = Arc::new(RunRecorder::new());
        let collector = Arc::new(trace::TraceCollector::new());
        let t = Telemetry::new(rec.clone()).with_tracer(Arc::clone(&collector));
        assert!(t.is_enabled() && t.is_tracing());
        t.span(Phase::Sort).finish();
        {
            let _task = t.trace_task(7);
        }
        assert_eq!(rec.report().phase_calls(Phase::Sort), 1);
        let events = collector.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.label == TraceLabel::Phase(Phase::Sort)));
        assert!(events.iter().any(|e| e.label == TraceLabel::PoolTask { seq: 7 }));
        // Tracing without a recorder still traces; queue-wait style
        // cross-thread timings stay off the timeline by design.
        let t = Telemetry::disabled().with_tracer(Arc::clone(&collector));
        assert!(!t.is_enabled() && t.is_tracing());
        t.record_phase_nanos(Phase::PoolQueueWait, 5);
        t.span(Phase::Sweep).finish();
        assert_eq!(collector.events().len(), 3);
    }

    #[test]
    fn format_nanos_units() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(1_500), "1.500µs");
        assert_eq!(format_nanos(2_500_000), "2.500ms");
        assert_eq!(format_nanos(3_000_000_000), "3.000s");
    }
}
