//! Per-thread event tracing with Chrome trace-event export.
//!
//! A [`TraceCollector`] records timestamped begin/end events — pipeline
//! [`Phase`] spans and worker-pool task executions — into
//! fixed-capacity **per-thread ring buffers** and drains them at run end
//! into Chrome trace-event JSON ([`TraceCollector::to_chrome_json`])
//! viewable in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! # Hot-path design
//!
//! The recording path takes **no locks and performs no allocation**:
//!
//! * Each recording thread owns one ring (`ThreadRing`) — three
//!   `u64` slot arrays (label, start, duration) plus a single atomic
//!   write cursor. The owning thread is the only writer, so a push is
//!   three relaxed slot stores followed by one release cursor store; the
//!   draining thread reads the cursor with acquire ordering and sees
//!   fully written slots for every index below it.
//! * A thread finds its ring through a `thread_local` cache keyed by the
//!   collector's unique id; only the *first* event a thread records
//!   against a given collector takes the registry lock (and allocates
//!   the ring).
//! * On overflow the cursor keeps advancing and the slot index wraps:
//!   the **oldest events are overwritten** and counted as dropped
//!   ([`TraceCollector::dropped`]; the facades surface the total as the
//!   `trace_events_dropped` counter). Because events are recorded at
//!   scope *exit* (inner spans before the outer spans that contain
//!   them), keeping the newest suffix can orphan an inner span's parent
//!   but never produces an inner event without its enclosing interval
//!   having existed — nesting of what remains stays consistent, which
//!   [`check_events`] verifies.
//!
//! Timestamps are nanoseconds relative to the collector's creation
//! instant, so traces from one run share a single epoch across threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use super::Phase;

/// Default per-thread ring capacity (events). At 24 bytes per slot this
/// is ~1.5 MiB per recording thread — roomy enough that a coarse run on
/// millions of edges keeps every phase span, while a runaway emitter
/// degrades by dropping its own oldest events instead of growing.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Monotonic source of collector ids for the thread-local ring cache.
static COLLECTOR_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's ring for the most recently used collector:
    /// `(collector id, ring)`. One-entry cache — switching between two
    /// live collectors on one thread re-registers, which is lock-taking
    /// but correct (the registry hands back the existing ring).
    static CACHED_RING: std::cell::RefCell<Option<(u64, Arc<ThreadRing>)>> =
        const { std::cell::RefCell::new(None) };
}

/// What a traced interval was: a pipeline phase span or one worker-pool
/// task execution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TraceLabel {
    /// A [`Phase`] span (the same vocabulary the aggregate report uses).
    Phase(Phase),
    /// Execution of one pool task; `seq` is the submission sequence
    /// number, unique per pool.
    PoolTask {
        /// Pool-wide task submission sequence number.
        seq: u64,
    },
}

/// High bit of the packed label word distinguishes pool tasks from
/// phases.
const LABEL_TASK_BIT: u64 = 1 << 63;

impl TraceLabel {
    /// Packs the label into one `u64` ring slot.
    fn encode(self) -> u64 {
        match self {
            TraceLabel::Phase(p) => p.index() as u64,
            TraceLabel::PoolTask { seq } => LABEL_TASK_BIT | (seq & !LABEL_TASK_BIT),
        }
    }

    /// Inverse of [`encode`](Self::encode); `None` for a word that maps
    /// to no known phase (possible only through memory corruption — the
    /// drain skips such slots rather than panicking).
    fn decode(word: u64) -> Option<Self> {
        if word & LABEL_TASK_BIT != 0 {
            Some(TraceLabel::PoolTask { seq: word & !LABEL_TASK_BIT })
        } else {
            let index = word as usize;
            Phase::ALL.iter().copied().find(|p| p.index() == index).map(TraceLabel::Phase)
        }
    }

    /// The event name used in the Chrome trace (`Phase::name()` for
    /// phases, `"pool_task"` for pool tasks).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceLabel::Phase(p) => p.name(),
            TraceLabel::PoolTask { .. } => "pool_task",
        }
    }
}

/// One drained trace event: a closed interval on one thread's timeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Dense thread id assigned in registration order (0 = first thread
    /// that recorded, typically the caller).
    pub tid: u32,
    /// What the interval was.
    pub label: TraceLabel,
    /// Interval start, nanoseconds since the collector's epoch.
    pub start_nanos: u64,
    /// Interval length in nanoseconds.
    pub dur_nanos: u64,
}

impl TraceEvent {
    /// Interval end, nanoseconds since the collector's epoch (saturating).
    #[must_use]
    pub const fn end_nanos(&self) -> u64 {
        self.start_nanos.saturating_add(self.dur_nanos)
    }
}

/// One thread's fixed-capacity event ring: single writer (the owning
/// thread), drained by the collector with acquire loads of the cursor.
#[derive(Debug)]
struct ThreadRing {
    /// Total events ever pushed; slot index is `cursor % capacity`.
    cursor: AtomicU64,
    labels: Vec<AtomicU64>,
    starts: Vec<AtomicU64>,
    durs: Vec<AtomicU64>,
}

impl ThreadRing {
    fn new(capacity: usize) -> Self {
        let slot = |_| AtomicU64::new(0);
        Self {
            cursor: AtomicU64::new(0),
            labels: (0..capacity).map(slot).collect(),
            starts: (0..capacity).map(slot).collect(),
            durs: (0..capacity).map(slot).collect(),
        }
    }

    /// Pushes one event. Must only be called from the owning thread —
    /// the single-writer discipline is what lets the stores stay
    /// relaxed with one release fence on the cursor.
    fn push(&self, label: u64, start_nanos: u64, dur_nanos: u64) {
        let i = self.cursor.load(Ordering::Relaxed); // ordering: single writer reads own cursor
        let slot = (i % self.labels.len() as u64) as usize;
        // The release store of the cursor below orders the three slot
        // stores before any acquire reader — the trace-ring publish
        // protocol (see DESIGN.md).
        // ordering: relaxed slot stores, published by the release cursor
        self.labels[slot].store(label, Ordering::Relaxed);
        self.starts[slot].store(start_nanos, Ordering::Relaxed);
        self.durs[slot].store(dur_nanos, Ordering::Relaxed); // ordering: as above
        self.cursor.store(i + 1, Ordering::Release); // ordering: publishes the slot stores above
    }

    /// Reads the newest `<= capacity` events (oldest first) and the
    /// number of overwritten (dropped) events.
    fn snapshot(&self) -> (Vec<(u64, u64, u64)>, u64) {
        let capacity = self.labels.len() as u64;
        // ordering: acquire pairs with the writer's release cursor store;
        // every slot store before that release is now visible.
        let total = self.cursor.load(Ordering::Acquire);
        let kept = total.min(capacity);
        let mut out = Vec::with_capacity(kept as usize);
        for i in (total - kept)..total {
            let slot = (i % capacity) as usize;
            out.push((
                // ordering: covered by the acquire cursor load above
                self.labels[slot].load(Ordering::Relaxed),
                self.starts[slot].load(Ordering::Relaxed),
                self.durs[slot].load(Ordering::Relaxed), // ordering: as above
            ));
        }
        (out, total - kept)
    }
}

/// A registered per-thread ring plus the owning thread's name.
#[derive(Debug)]
struct Registration {
    name: String,
    ring: Arc<ThreadRing>,
}

/// Collects per-thread trace events and exports them as Chrome
/// trace-event JSON. See the [module docs](self) for the recording
/// design; construction and draining are cheap, recording is lock-free.
#[derive(Debug)]
pub struct TraceCollector {
    /// Unique id keying the thread-local ring cache.
    id: u64,
    /// Zero point of every timestamp in this trace.
    epoch: Instant,
    capacity: usize,
    /// All registered rings, in registration order (index = tid).
    /// Locked only on first-event-per-thread registration and on drain.
    rings: Mutex<Vec<Registration>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A collector with the [default ring capacity](DEFAULT_RING_CAPACITY).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A collector whose per-thread rings hold `capacity` events each
    /// (clamped to at least 16). Smaller rings drop older events sooner;
    /// see [`dropped`](Self::dropped).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            // ordering: uniqueness needs only RMW atomicity
            id: COLLECTOR_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity: capacity.max(16),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// The instant all trace timestamps are relative to.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records a closed interval that started at `start` (an
    /// [`Instant`]) and lasted `dur_nanos`, on the calling thread's
    /// timeline. Lock-free and allocation-free except for the calling
    /// thread's first event against this collector.
    pub fn record(&self, label: TraceLabel, start: Instant, dur_nanos: u64) {
        #[allow(clippy::cast_possible_truncation)] // ~584 years of nanos fit u64
        let start_nanos =
            start.checked_duration_since(self.epoch).map_or(0, |d| d.as_nanos() as u64);
        let word = label.encode();
        CACHED_RING.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((id, ring)) = cache.as_ref() {
                if *id == self.id {
                    ring.push(word, start_nanos, dur_nanos);
                    return;
                }
            }
            let ring = self.register_current_thread();
            ring.push(word, start_nanos, dur_nanos);
            *cache = Some((self.id, ring));
        });
    }

    /// Returns the calling thread's ring, creating and registering it on
    /// first use (the one lock-taking step of the recording path).
    fn register_current_thread(&self) -> Arc<ThreadRing> {
        let thread = std::thread::current();
        let name = thread.name().map_or_else(|| format!("{:?}", thread.id()), str::to_owned);
        let ring = Arc::new(ThreadRing::new(self.capacity));
        let mut rings = self.rings.lock().unwrap_or_else(PoisonError::into_inner);
        rings.push(Registration { name, ring: Arc::clone(&ring) });
        ring
    }

    /// Registered thread names, indexed by `tid`.
    #[must_use]
    pub fn thread_names(&self) -> Vec<String> {
        let rings = self.rings.lock().unwrap_or_else(PoisonError::into_inner);
        rings.iter().map(|r| r.name.clone()).collect()
    }

    /// Total events overwritten by ring overflow across all threads, as
    /// of the call. The facades add this to the run report as the
    /// `trace_events_dropped` counter.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        let rings = self.rings.lock().unwrap_or_else(PoisonError::into_inner);
        rings.iter().map(|r| r.ring.snapshot().1).sum()
    }

    /// Drains every ring into a flat event list sorted by `(tid, start,
    /// longest-first)` — the order [`check_events`] expects (an
    /// enclosing interval sorts before the intervals it contains).
    /// Recording threads must be quiescent for a complete snapshot;
    /// events pushed concurrently with the drain may or may not appear.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let rings = self.rings.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for (tid, reg) in rings.iter().enumerate() {
            let (slots, _) = reg.ring.snapshot();
            #[allow(clippy::cast_possible_truncation)] // tid count bounded by thread count
            let tid = tid as u32;
            for (word, start_nanos, dur_nanos) in slots {
                if let Some(label) = TraceLabel::decode(word) {
                    out.push(TraceEvent { tid, label, start_nanos, dur_nanos });
                }
            }
        }
        out.sort_by(|a, b| {
            (a.tid, a.start_nanos, std::cmp::Reverse(a.dur_nanos)).cmp(&(
                b.tid,
                b.start_nanos,
                std::cmp::Reverse(b.dur_nanos),
            ))
        });
        out
    }

    /// Serializes the drained events as a Chrome trace-event JSON
    /// document: one `ph: "M"` `thread_name` metadata record per
    /// registered thread, then one `ph: "X"` complete event per
    /// interval, with `ts`/`dur` in microseconds (3 decimals, i.e.
    /// nanosecond-exact). Load the file in <https://ui.perfetto.dev> or
    /// `chrome://tracing`.
    ///
    /// In debug builds the drained events are checked for per-thread
    /// timeline consistency first
    /// ([`debug_check_trace_events`](crate::invariants::debug_check_trace_events)).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        crate::invariants::debug_check_trace_events(&events);
        let names = self.thread_names();
        let mut s = String::with_capacity(events.len() * 110 + names.len() * 80 + 128);
        s.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in names.iter().enumerate() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ));
        }
        for e in events {
            if !first {
                s.push(',');
            }
            first = false;
            let ts = nanos_to_micros(e.start_nanos);
            let dur = nanos_to_micros(e.dur_nanos);
            let (cat, args) = match e.label {
                TraceLabel::Phase(_) => ("phase", String::new()),
                TraceLabel::PoolTask { seq } => ("pool", format!(",\"args\":{{\"seq\":{seq}}}")),
            };
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{ts},\"dur\":{dur}{args}}}",
                e.label.name(),
                e.tid,
            ));
        }
        s.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"events_dropped\":{},\
             \"ring_capacity\":{}}}}}",
            self.dropped(),
            self.capacity,
        ));
        s
    }
}

/// Formats nanoseconds as microseconds with 3 decimals — nanosecond
/// precision in the unit Chrome traces use.
fn nanos_to_micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Structural validation of a drained event list (the acceptance bar
/// for a trace): per thread, event starts must be monotone
/// non-decreasing and intervals must be **properly nested** — an event
/// beginning inside an earlier interval must end inside it too, so the
/// per-thread timeline renders as a clean flame graph with no partial
/// overlap. Expects the `(tid, start, longest-first)` order
/// [`TraceCollector::events`] produces.
///
/// # Errors
///
/// Returns a description of the first violated constraint.
pub fn check_events(events: &[TraceEvent]) -> Result<(), String> {
    let mut stack: Vec<TraceEvent> = Vec::new();
    let mut prev: Option<TraceEvent> = None;
    for e in events {
        if let Some(p) = prev {
            if p.tid == e.tid && p.start_nanos > e.start_nanos {
                return Err(format!(
                    "tid {}: event starts not monotone ({} after {})",
                    e.tid, e.start_nanos, p.start_nanos
                ));
            }
        }
        if prev.is_none_or(|p| p.tid != e.tid) {
            stack.clear();
        }
        while let Some(top) = stack.last() {
            if top.end_nanos() <= e.start_nanos {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            // e starts strictly inside top: it must also end inside it.
            if e.end_nanos() > top.end_nanos() {
                return Err(format!(
                    "tid {}: partial overlap — [{}, {}) crosses the end of enclosing [{}, {})",
                    e.tid,
                    e.start_nanos,
                    e.end_nanos(),
                    top.start_nanos,
                    top.end_nanos(),
                ));
            }
        }
        stack.push(*e);
        prev = Some(*e);
    }
    Ok(())
}

/// Minimal JSON well-formedness check (RFC 8259 grammar, no semantics):
/// used by the tests to prove the hand-rolled writers never emit
/// unparseable output — e.g. a bare `NaN` from a non-finite gauge.
///
/// # Errors
///
/// Returns `Err` with a byte offset and reason for the first syntax
/// error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(format!("trailing data at byte {pos}"))
    }
}

/// Recursion guard for [`parse_value`]; deeper documents are rejected
/// rather than overflowing the stack.
const MAX_JSON_DEPTH: usize = 512;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_JSON_DEPTH {
        return Err(format!("nesting deeper than {MAX_JSON_DEPTH} at byte {}", *pos));
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte {b:#04x} at {}", *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key string at byte {}", *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening '"'
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match bytes.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = bytes
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("invalid \\u escape at byte {}", *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("invalid escape at byte {}", *pos)),
            },
            0x00..=0x1f => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let d0 = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > d0
    };
    // Integer part: a lone 0, or a nonzero-led digit run.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            digits(bytes, pos);
        }
        _ => return Err(format!("invalid number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(tid: u32, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            tid,
            label: TraceLabel::Phase(Phase::Sweep),
            start_nanos: start,
            dur_nanos: dur,
        }
    }

    #[test]
    fn label_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(
                TraceLabel::decode(TraceLabel::Phase(p).encode()),
                Some(TraceLabel::Phase(p))
            );
        }
        for seq in [0u64, 1, 7, u64::MAX >> 1] {
            let l = TraceLabel::PoolTask { seq };
            assert_eq!(TraceLabel::decode(l.encode()), Some(l));
        }
        // An out-of-range phase word decodes to None instead of panicking.
        assert_eq!(TraceLabel::decode(999), None);
    }

    #[test]
    fn records_and_drains_in_order() {
        let c = TraceCollector::new();
        let t0 = c.epoch();
        c.record(TraceLabel::Phase(Phase::InitPass1), t0, 100);
        c.record(TraceLabel::Phase(Phase::Sort), t0 + Duration::from_nanos(200), 50);
        let events = c.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].label, TraceLabel::Phase(Phase::InitPass1));
        assert_eq!(events[0].start_nanos, 0);
        assert_eq!(events[0].dur_nanos, 100);
        assert_eq!(events[1].start_nanos, 200);
        assert_eq!(c.dropped(), 0);
        check_events(&events).unwrap();
    }

    #[test]
    fn start_before_epoch_clamps_to_zero() {
        let c = TraceCollector::new();
        let early = c.epoch() - Duration::from_secs(1);
        c.record(TraceLabel::Phase(Phase::Sweep), early, 10);
        assert_eq!(c.events()[0].start_nanos, 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let c = TraceCollector::with_capacity(16);
        let t0 = c.epoch();
        for i in 0..40u64 {
            c.record(TraceLabel::PoolTask { seq: i }, t0 + Duration::from_nanos(i * 10), 5);
        }
        let events = c.events();
        assert_eq!(events.len(), 16);
        assert_eq!(c.dropped(), 24);
        // The newest 16 survive: seqs 24..40.
        assert_eq!(events[0].label, TraceLabel::PoolTask { seq: 24 });
        assert_eq!(events[15].label, TraceLabel::PoolTask { seq: 39 });
    }

    #[test]
    fn multi_thread_rings_are_independent() {
        let c = Arc::new(TraceCollector::new());
        let t0 = c.epoch();
        c.record(TraceLabel::Phase(Phase::Sweep), t0, 10);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::Builder::new()
                    .name(format!("ring-test-{i}"))
                    .spawn(move || {
                        for j in 0..100u64 {
                            c.record(
                                TraceLabel::PoolTask { seq: i * 1000 + j },
                                t0 + Duration::from_nanos(j * 3),
                                2,
                            );
                        }
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = c.events();
        assert_eq!(events.len(), 401);
        let names = c.thread_names();
        assert_eq!(names.len(), 5);
        assert!(names.iter().filter(|n| n.starts_with("ring-test-")).count() == 4);
        // Per-tid event counts: 1 for the caller, 100 per spawned thread.
        for tid in 1..5u32 {
            assert_eq!(events.iter().filter(|e| e.tid == tid).count(), 100);
        }
        check_events(&events).unwrap();
    }

    #[test]
    fn check_events_accepts_proper_nesting() {
        // outer [0, 100) contains [10, 40) which contains [15, 20),
        // then sibling [50, 90).
        let events = [ev(0, 0, 100), ev(0, 10, 30), ev(0, 15, 5), ev(0, 50, 40), ev(1, 0, 10)];
        check_events(&events).unwrap();
        // Touching boundaries are nesting, not overlap.
        let events = [ev(0, 0, 100), ev(0, 0, 100), ev(0, 100, 50)];
        check_events(&events).unwrap();
    }

    #[test]
    fn check_events_rejects_partial_overlap_and_disorder() {
        let overlap = [ev(0, 0, 100), ev(0, 50, 100)];
        assert!(check_events(&overlap).unwrap_err().contains("partial overlap"));
        let disorder = [ev(0, 50, 10), ev(0, 0, 10)];
        assert!(check_events(&disorder).unwrap_err().contains("monotone"));
        // Disorder across different tids is fine (timelines are independent).
        let cross = [ev(0, 50, 10), ev(1, 0, 10)];
        check_events(&cross).unwrap();
    }

    #[test]
    fn chrome_json_is_well_formed_and_structured() {
        let c = TraceCollector::new();
        let t0 = c.epoch();
        c.record(TraceLabel::Phase(Phase::InitPass1), t0, 1500);
        c.record(TraceLabel::PoolTask { seq: 3 }, t0 + Duration::from_nanos(2000), 700);
        let json = c.to_chrome_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"init_pass1\""));
        assert!(json.contains("\"ts\":2.000,\"dur\":0.700"));
        assert!(json.contains("\"seq\":3"));
        assert!(json.contains("\"events_dropped\":0"));
    }

    #[test]
    fn empty_collector_emits_valid_json() {
        let c = TraceCollector::new();
        let json = c.to_chrome_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "null",
            " true ",
            "-0.5e+10",
            "[]",
            "{}",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\u00e9\\n\"}",
            "3",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("rejected {ok:?}: {e}"));
        }
        for bad in [
            "",
            "NaN",
            "nul",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "01",
            "1.",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
