//! Classic disjoint-set union-find (path compression + union by rank),
//! plus a lock-free concurrent variant for the parallel sweep engine.
//!
//! [`UnionFind`] is used by the MST baseline
//! ([`baseline::mst`](crate::baseline::mst)) and as an ablation comparator
//! for the paper's chain array `C` ([`ClusterArray`](crate::ClusterArray)):
//! union-find achieves near-O(1) amortized finds but does not preserve the
//! "min index is the cluster id" labelling that the paper's dendrogram
//! output relies on, so we track the minimum element per set explicitly.
//!
//! [`ConcurrentUnionFind`] is the CAS-based variant backing the boundary
//! stitch of the `ufsweep` engine (Anderson–Woll style: rank and parent
//! packed into one atomic word so the link CAS validates both, with path
//! splitting during finds). It intentionally does *not* track per-set
//! minima — the sweep engine recovers the paper's min-labelled merge
//! records in a separate exact serial replay over the surviving unions.

use std::sync::atomic::{AtomicU64, Ordering};

/// A disjoint-set forest over `n` elements, tracking each set's minimum
/// element (the cluster id convention of the paper).
///
/// # Examples
///
/// ```
/// use linkclust_core::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// assert!(uf.union(1, 4));
/// assert!(!uf.union(4, 1)); // already joined
/// assert_eq!(uf.min_of(4), 1);
/// assert_eq!(uf.set_count(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    min: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            min: (0..n as u32).collect(),
            sets: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `i`'s set (with path compression).
    pub fn find(&mut self, i: usize) -> u32 {
        let mut root = i;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = i;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root as u32
    }

    /// The smallest element in `i`'s set — the paper's cluster id.
    pub fn min_of(&mut self, i: usize) -> u32 {
        let r = self.find(i);
        self.min[r as usize]
    }

    /// Joins the sets of `a` and `b`. Returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        let m = self.min[hi as usize].min(self.min[lo as usize]);
        self.min[hi as usize] = m;
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The number of disjoint sets.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Resolves every element to its set's minimum element (comparable
    /// with [`ClusterArray::assignments`](crate::ClusterArray::assignments)).
    pub fn assignments(&mut self) -> Vec<u32> {
        (0..self.len()).map(|i| self.min_of(i)).collect()
    }
}

/// A lock-free disjoint-set forest shared across threads by `&self`.
///
/// Each element stores `(rank, parent)` packed into a single
/// [`AtomicU64`]. Linking is a compare-exchange on the *child root's
/// whole word*, which simultaneously validates "still a root" and "rank
/// unchanged"; because ranks of roots only ever grow and a node's parent
/// never reverts to itself, two racing `unite` calls can never install a
/// parent cycle (the classic unpacked-rank hazard). Finds perform path
/// splitting: every visited node is CAS-pointed at its grandparent, so
/// chains halve on traversal without coordination.
///
/// Unlike [`UnionFind`] this structure does not track per-set minima —
/// concurrent min maintenance would need a second linked CAS. The sweep
/// engine that uses it derives min-labelled merge records afterwards by
/// replaying the surviving unions through a serial [`UnionFind`].
///
/// # Examples
///
/// ```
/// use linkclust_core::unionfind::ConcurrentUnionFind;
///
/// let uf = ConcurrentUnionFind::new(5);
/// assert!(uf.unite(1, 4));
/// assert!(!uf.unite(4, 1)); // already joined
/// assert!(uf.same_set(1, 4));
/// assert_eq!(uf.set_count(), 4);
/// ```
#[derive(Debug)]
pub struct ConcurrentUnionFind {
    /// `word = rank << 32 | parent`. Rank is only meaningful while the
    /// node is a root; it freezes once the node is linked under another.
    node: Vec<AtomicU64>,
}

const fn pack(parent: u32, rank: u32) -> u64 {
    ((rank as u64) << 32) | parent as u64
}

const fn parent_of(word: u64) -> u32 {
    word as u32 // cast: deliberate truncation — the low half is the parent
}

const fn rank_of(word: u64) -> u32 {
    (word >> 32) as u32 // cast: the high half is the rank; shift makes it exact
}

impl ConcurrentUnionFind {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (element ids are 32-bit, matching
    /// the workspace-wide edge-id width).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "ConcurrentUnionFind holds at most u32::MAX elements");
        ConcurrentUnionFind {
            node: (0..n as u32).map(|i| AtomicU64::new(pack(i, 0))).collect(), // cast: n <= u32::MAX asserted above
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// Returns `true` if there are no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node.is_empty()
    }

    /// The representative of `i`'s set at some point during the call
    /// (with path splitting). Concurrent `unite`s may change the
    /// representative immediately after; within a quiescent phase the
    /// value is stable.
    #[must_use]
    pub fn find(&self, i: u32) -> u32 {
        let mut cur = i;
        loop {
            // cast: u32 id to index, lossless on 64-bit.
            // ordering: Acquire pairs with the link CAS in `unite`.
            let w = self.node[cur as usize].load(Ordering::Acquire);
            let p = parent_of(w);
            if p == cur {
                return cur;
            }
            // ordering: same Acquire pairing for the grandparent hop.
            // cast: u32 id to index, lossless on 64-bit.
            let gw = self.node[p as usize].load(Ordering::Acquire);
            let gp = parent_of(gw);
            if gp != p {
                // Path splitting: point `cur` at its grandparent. Failure
                // means someone else already re-pointed it — ignore.
                // cast: u32 id to index, lossless on 64-bit.
                let _ = self.node[cur as usize].compare_exchange_weak(
                    w,
                    pack(gp, rank_of(w)),
                    // ordering: AcqRel republishes the pointer we
                    // just Acquired on success.
                    Ordering::AcqRel,
                    // ordering: Relaxed on failure, value discarded.
                    Ordering::Relaxed,
                );
            }
            cur = p;
        }
    }

    /// Joins the sets of `a` and `b`. Returns `true` in exactly one
    /// caller per merged pair of sets: every `true` reduces the number of
    /// disjoint sets by one, so the total count of `true` results across
    /// all threads equals `n - set_count()` once quiescent.
    #[must_use]
    pub fn unite(&self, a: u32, b: u32) -> bool {
        let (mut a, mut b) = (a, b);
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return false;
            }
            // Re-read both candidate roots' words: the link CAS below
            // validates the child's word, and the `parent_of` checks here
            // make the direction decision from genuine root snapshots
            // (stale non-root words could invert the rank comparison).
            // ordering: Acquire pairs with the link CAS so a stale root
            // is reliably detected as non-root. cast: u32 id to index.
            let wa = self.node[ra as usize].load(Ordering::Acquire);
            // ordering: see above. cast: u32 id to index.
            let wb = self.node[rb as usize].load(Ordering::Acquire);
            if parent_of(wa) != ra || parent_of(wb) != rb {
                a = ra;
                b = rb;
                continue;
            }
            let (ka, kb) = (rank_of(wa), rank_of(wb));
            // Union by rank; ties link the larger id under the smaller.
            // The CAS on the child's full word validates (root, rank)
            // together, which is what makes racing opposite-direction
            // links impossible (one of them must observe a changed word).
            let (child, child_word, root) =
                if ka < kb || (ka == kb && ra > rb) { (ra, wa, rb) } else { (rb, wb, ra) };
            // cast: u32 id to index, lossless on 64-bit.
            if self.node[child as usize]
                .compare_exchange(
                    child_word,
                    pack(root, rank_of(child_word)),
                    // ordering: the Release half publishes the link
                    // (paired with the Acquire loads in `find`).
                    Ordering::AcqRel,
                    // ordering: Acquire on failure so the retry's
                    // re-reads start from the freshest words.
                    Ordering::Acquire,
                )
                .is_ok()
            {
                if ka == kb {
                    // Best-effort rank bump on the surviving root; a
                    // failure means the root was concurrently linked or
                    // bumped, and approximate ranks only cost balance,
                    // never correctness.
                    // cast: u32 id to index, lossless on 64-bit.
                    let _ = self.node[root as usize].compare_exchange(
                        pack(root, ka),
                        pack(root, ka + 1),
                        // ordering: AcqRel for the same publish pairing
                        // as the link CAS.
                        Ordering::AcqRel,
                        // ordering: Relaxed on failure, value discarded.
                        Ordering::Relaxed,
                    );
                }
                return true;
            }
            a = ra;
            b = rb;
        }
    }

    /// Returns `true` if `a` and `b` are in the same set. A `false`
    /// answer is witnessed by a representative of `a` that was still a
    /// root after `b`'s set was resolved, so under quiescence the answer
    /// is exact.
    #[must_use]
    pub fn same_set(&self, a: u32, b: u32) -> bool {
        let (mut a, mut b) = (a, b);
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // If no one linked `ra` since we resolved it, the two sets
            // were genuinely distinct at that instant.
            // ordering: Acquire pairs with the link CAS in `unite`.
            // cast: u32 id to index, lossless on 64-bit.
            if parent_of(self.node[ra as usize].load(Ordering::Acquire)) == ra {
                return false;
            }
            a = ra;
            b = rb;
        }
    }

    /// The number of disjoint sets. Intended for quiescent use (between
    /// parallel phases); concurrent `unite`s make the answer a snapshot.
    #[must_use]
    pub fn set_count(&self) -> usize {
        (0..self.node.len())
            // ordering: Acquire for the same link-publish pairing as
            // `find`. cast: u32 parent to index, lossless on 64-bit.
            .filter(|&i| parent_of(self.node[i].load(Ordering::Acquire)) as usize == i)
            .count()
    }

    /// Resolves every element to its set's minimum element, giving the
    /// same labelling as [`UnionFind::assignments`] /
    /// [`ClusterArray::assignments`](crate::ClusterArray::assignments).
    /// Intended for quiescent use.
    #[must_use]
    pub fn assignments(&self) -> Vec<u32> {
        let n = self.node.len();
        let mut min_of_root: Vec<u32> = (0..n as u32).collect(); // cast: n <= u32::MAX by construction
        let mut root_of: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n {
            let r = self.find(i as u32); // cast: i < n <= u32::MAX
            root_of.push(r);
            let slot = &mut min_of_root[r as usize];
            *slot = (*slot).min(i as u32); // cast: i < n <= u32::MAX
        }
        root_of.iter().map(|&r| min_of_root[r as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i) as usize, i);
            assert_eq!(uf.min_of(i) as usize, i);
        }
    }

    #[test]
    fn union_tracks_minimum() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 4);
        assert_eq!(uf.min_of(5), 3);
        uf.union(4, 1);
        assert_eq!(uf.min_of(5), 1);
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn connected_after_transitive_unions() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(!uf.connected(1, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn assignments_match_cluster_array_semantics() {
        use crate::ClusterArray;
        let ops = [(0usize, 1usize), (2, 3), (3, 4), (1, 4), (6, 7)];
        let mut uf = UnionFind::new(8);
        let mut ca = ClusterArray::new(8);
        for &(a, b) in &ops {
            uf.union(a, b);
            ca.merge(a, b);
        }
        assert_eq!(uf.assignments(), ca.assignments());
        assert_eq!(uf.set_count(), ca.cluster_count());
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.assignments().is_empty());
    }

    #[test]
    fn concurrent_matches_serial_single_threaded() {
        let ops = [(0u32, 1u32), (2, 3), (3, 4), (1, 4), (6, 7), (0, 2)];
        let cuf = ConcurrentUnionFind::new(8);
        let mut uf = UnionFind::new(8);
        for &(a, b) in &ops {
            assert_eq!(cuf.unite(a, b), uf.union(a as usize, b as usize));
        }
        assert_eq!(cuf.set_count(), uf.set_count());
        assert_eq!(cuf.assignments(), uf.assignments());
        assert!(cuf.same_set(0, 4));
        assert!(!cuf.same_set(0, 5));
    }

    #[test]
    fn concurrent_empty_and_singletons() {
        let empty = ConcurrentUnionFind::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.set_count(), 0);
        assert!(empty.assignments().is_empty());
        let uf = ConcurrentUnionFind::new(3);
        assert_eq!(uf.len(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
        assert_eq!(uf.assignments(), vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_path_splitting_preserves_sets() {
        // Build a deliberate chain 0 <- 1 <- 2 <- ... and make sure finds
        // from the tail still resolve and the forest stays consistent.
        let n: u32 = 64;
        let uf = ConcurrentUnionFind::new(n as usize);
        for i in 1..n {
            let _ = uf.unite(i - 1, i);
        }
        assert_eq!(uf.set_count(), 1);
        for i in 0..n {
            assert!(uf.same_set(0, i));
        }
        assert!(uf.assignments().iter().all(|&m| m == 0));
    }

    #[test]
    fn packed_word_round_trips() {
        let w = pack(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!(parent_of(w), 0xDEAD_BEEF);
        assert_eq!(rank_of(w), 0x1234_5678);
    }
}
