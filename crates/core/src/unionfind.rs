//! Classic disjoint-set union-find (path compression + union by rank).
//!
//! Used by the MST baseline ([`baseline::mst`](crate::baseline::mst)) and
//! as an ablation comparator for the paper's chain array `C`
//! ([`ClusterArray`](crate::ClusterArray)): union-find achieves near-O(1)
//! amortized finds but does not preserve the "min index is the cluster
//! id" labelling that the paper's dendrogram output relies on, so we track
//! the minimum element per set explicitly.

/// A disjoint-set forest over `n` elements, tracking each set's minimum
/// element (the cluster id convention of the paper).
///
/// # Examples
///
/// ```
/// use linkclust_core::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// assert!(uf.union(1, 4));
/// assert!(!uf.union(4, 1)); // already joined
/// assert_eq!(uf.min_of(4), 1);
/// assert_eq!(uf.set_count(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    min: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            min: (0..n as u32).collect(),
            sets: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `i`'s set (with path compression).
    pub fn find(&mut self, i: usize) -> u32 {
        let mut root = i;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = i;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root as u32
    }

    /// The smallest element in `i`'s set — the paper's cluster id.
    pub fn min_of(&mut self, i: usize) -> u32 {
        let r = self.find(i);
        self.min[r as usize]
    }

    /// Joins the sets of `a` and `b`. Returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        let m = self.min[hi as usize].min(self.min[lo as usize]);
        self.min[hi as usize] = m;
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The number of disjoint sets.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Resolves every element to its set's minimum element (comparable
    /// with [`ClusterArray::assignments`](crate::ClusterArray::assignments)).
    pub fn assignments(&mut self) -> Vec<u32> {
        (0..self.len()).map(|i| self.min_of(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i) as usize, i);
            assert_eq!(uf.min_of(i) as usize, i);
        }
    }

    #[test]
    fn union_tracks_minimum() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 4);
        assert_eq!(uf.min_of(5), 3);
        uf.union(4, 1);
        assert_eq!(uf.min_of(5), 1);
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn connected_after_transitive_unions() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(!uf.connected(1, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn assignments_match_cluster_array_semantics() {
        use crate::ClusterArray;
        let ops = [(0usize, 1usize), (2, 3), (3, 4), (1, 4), (6, 7)];
        let mut uf = UnionFind::new(8);
        let mut ca = ClusterArray::new(8);
        for &(a, b) in &ops {
            uf.union(a, b);
            ca.merge(a, b);
        }
        assert_eq!(uf.assignments(), ca.assignments());
        assert_eq!(uf.set_count(), ca.cluster_count());
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.assignments().is_empty());
    }
}
