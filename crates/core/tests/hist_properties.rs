//! Property tests for [`LogHistogram`] covering the edge cases the
//! metrics exposition path hits: quantile monotonicity in `q`, bucket
//! views that stay consistent with the recorded count, and saturation
//! at the top octave.

use linkclust_core::telemetry::LogHistogram;
use proptest::prelude::*;

/// Sample values spanning the exact linear region, mid octaves, and the
/// saturated top of the `u64` range.
fn sample_strategy() -> impl Strategy<Value = u64> {
    (0u64..4, 0u64..u64::MAX).prop_map(|(kind, raw)| match kind {
        0 => raw % 64,                // exact linear region
        1 => raw % 1_000_000,         // small octaves
        2 => u64::MAX - (raw % 1024), // top-octave saturation
        _ => raw,                     // anywhere
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_are_monotone_in_q(samples in proptest::collection::vec(sample_strategy(), 1..200)) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let values: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles regressed: {values:?} from {samples:?}");
        }
        // Every quantile stays inside the observed range.
        for &v in &values {
            prop_assert!(h.min() <= v && v <= h.max(), "quantile {v} outside [{}, {}]", h.min(), h.max());
        }
    }

    #[test]
    fn bucket_view_is_ascending_and_complete(samples in proptest::collection::vec(sample_strategy(), 0..200)) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        prop_assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "bounds not ascending: {buckets:?}");
        prop_assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        if let Some(&(last_le, _)) = buckets.last() {
            prop_assert!(last_le >= h.max(), "max {} beyond last bound {last_le}", h.max());
        }
    }
}
