//! Property tests for the hand-rolled JSON emitters: whatever a run
//! records — including NaN/infinite gauge observations and hostile
//! thread names — `RunReport::to_json()` and the Chrome trace writer
//! must produce parseable JSON (checked with the crate's own
//! recursive-descent validator), and non-finite quantiles must
//! serialize as `null`, never as bare `NaN`/`inf` tokens.

use std::sync::Arc;
use std::time::Instant;

use linkclust_core::telemetry::trace::validate_json;
use linkclust_core::telemetry::{
    Counter, Gauge, Phase, Recorder, RunRecorder, TraceCollector, TraceLabel,
};
use proptest::prelude::*;

/// One recorder call, generated from plain integers so shrinking stays
/// readable.
#[derive(Clone, Debug)]
enum Op {
    Phase(usize, u64),
    Counter(usize, u64),
    Gauge(usize, f64),
    ThreadItems(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Values bounded so 200 accumulating `+=` ops cannot overflow a u64.
    (0usize..4, 0usize..16, 0u64..(u64::MAX >> 10), 0usize..8).prop_map(|(kind, idx, v, sel)| {
        match kind {
            0 => Op::Phase(idx % Phase::ALL.len(), v),
            1 => Op::Counter(idx % Counter::ALL.len(), v),
            2 => {
                let value = match sel {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => -0.0,
                    4 => f64::MAX,
                    // Ordinary magnitudes, both signs.
                    #[allow(clippy::cast_precision_loss)]
                    _ => (v as f64) / 1e6 - 1e6,
                };
                Op::Gauge(idx % Gauge::ALL.len(), value)
            }
            _ => Op::ThreadItems(idx % 8, v),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn run_report_json_is_always_parseable(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let rec = RunRecorder::new();
        for op in &ops {
            match *op {
                Op::Phase(p, n) => rec.record_phase(Phase::ALL[p], n),
                Op::Counter(c, v) => rec.add(Counter::ALL[c], v),
                Op::Gauge(g, v) => rec.observe(Gauge::ALL[g], v),
                Op::ThreadItems(t, v) => rec.thread_items(t, v),
            }
        }
        let report = rec.report();
        let json = report.to_json();
        prop_assert!(validate_json(&json).is_ok(), "invalid JSON: {}\nfrom {:?}", json, ops);
        // Non-finite numbers must never leak as bare tokens — RFC 8259
        // has no NaN/Infinity literals.
        prop_assert!(!json.contains("NaN"), "bare NaN in {json}");
        prop_assert!(!json.contains("inf"), "bare infinity in {json}");
        // The Display table must also render without panicking.
        let _ = report.to_string();
    }

    #[test]
    fn trace_json_is_always_parseable(
        durs in proptest::collection::vec((0u64..3, 0u64..u64::from(u32::MAX)), 0..64),
        capacity in 1usize..64,
    ) {
        let collector = TraceCollector::with_capacity(capacity);
        let epoch = collector.epoch();
        for &(label, dur) in &durs {
            let label = match label {
                0 => TraceLabel::Phase(Phase::Sort),
                1 => TraceLabel::Phase(Phase::Sweep),
                _ => TraceLabel::PoolTask { seq: dur },
            };
            collector.record(label, epoch, dur);
        }
        let json = collector.to_chrome_json();
        prop_assert!(validate_json(&json).is_ok(), "invalid JSON: {json}");
        prop_assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn trace_json_escapes_hostile_thread_names(name in "[ -~]{0,24}") {
        // Thread names flow into the `thread_name` metadata events
        // verbatim; quotes, backslashes and control characters must all
        // be escaped by the writer.
        let collector = Arc::new(TraceCollector::new());
        let inner = Arc::clone(&collector);
        let handle = std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || {
                inner.record(TraceLabel::Phase(Phase::Sort), Instant::now(), 10);
            })
            .expect("spawning a named thread");
        handle.join().expect("named thread runs to completion");
        let json = collector.to_chrome_json();
        prop_assert!(validate_json(&json).is_ok(), "name {:?} broke the writer: {}", name, json);
    }
}

/// The specific shape satellite 3 calls out: a gauge with zero finite
/// observations (so every quantile is NaN) must serialize its quantiles
/// as `null`.
#[test]
fn non_finite_gauge_quantiles_serialize_as_null() {
    let rec = RunRecorder::new();
    rec.observe(Gauge::TableOccupancy, f64::NAN);
    rec.observe(Gauge::TableOccupancy, f64::INFINITY);
    let json = rec.report().to_json();
    assert!(validate_json(&json).is_ok(), "invalid JSON: {json}");
    assert!(json.contains("\"p50\":null"), "expected null quantiles in {json}");
    assert!(!json.contains("NaN") && !json.contains("inf"), "bare non-finite token in {json}");
}
