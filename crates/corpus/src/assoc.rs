//! Word-association-network construction (Eq. 3 of the paper).
//!
//! Given a corpus `D` of processed documents, every candidate word becomes
//! a feature variable `X_f`, and an edge joins words `f_i, f_j` when
//!
//! ```text
//! w_ij = p(X_i=1, X_j=1) · log( p(X_i=1, X_j=1) / (p(X_i=1) · p(X_j=1)) ) > 0
//! ```
//!
//! i.e. when the two words co-occur in the same message more often than
//! independence would predict. Probabilities are empirical document
//! frequencies. Following §VII, candidate words are sorted by appearance
//! count (non-ascending) and only the top fraction **α** become vertices —
//! α is the knob that controls graph size throughout the evaluation.

use std::collections::HashMap;

use linkclust_graph::{GraphBuilder, VertexId, WeightedGraph};

use crate::doc::Document;
use crate::error::CorpusError;

/// Builder for [`AssocNetwork`].
///
/// # Examples
///
/// ```
/// use linkclust_corpus::{AssocNetworkBuilder, Document};
///
/// let docs = vec![
///     Document::new(vec!["storm".into(), "rain".into()]),
///     Document::new(vec!["storm".into(), "rain".into(), "wind".into()]),
///     Document::new(vec!["sun".into(), "beach".into()]),
/// ];
/// let net = AssocNetworkBuilder::new().build(&docs)?;
/// // "storm" and "rain" always co-occur -> positive PMI edge
/// let s = net.vertex_of("storm").unwrap();
/// let r = net.vertex_of("rain").unwrap();
/// assert!(net.graph().has_edge(s, r));
/// # Ok::<(), linkclust_corpus::CorpusError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AssocNetworkBuilder {
    fraction: f64,
    top_words: Option<usize>,
    min_document_count: usize,
}

impl Default for AssocNetworkBuilder {
    fn default() -> Self {
        AssocNetworkBuilder { fraction: 1.0, top_words: None, min_document_count: 1 }
    }
}

impl AssocNetworkBuilder {
    /// Creates a builder with α = 1.0 (all candidate words kept).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the vocabulary fraction α ∈ (0, 1]: only the ⌈α·n⌉ most
    /// frequent of the n candidate words become vertices.
    #[must_use]
    pub fn fraction(mut self, alpha: f64) -> Self {
        self.fraction = alpha;
        self
    }

    /// Keeps exactly the `n` most frequent candidate words (clamped to
    /// the candidate count; takes precedence over
    /// [`fraction`](Self::fraction)). This is how the benchmark harness
    /// scales the paper's α sweep: the paper's candidate pool has
    /// millions of rare words that never enter any graph, so `α·pool` is
    /// realized directly as a top-`n` cut.
    #[must_use]
    pub fn top_words(mut self, n: usize) -> Self {
        self.top_words = Some(n.max(1));
        self
    }

    /// Requires candidate words to appear in at least `count` documents
    /// (default 1).
    #[must_use]
    pub fn min_document_count(mut self, count: usize) -> Self {
        self.min_document_count = count.max(1);
        self
    }

    /// Builds the association network from `documents`.
    ///
    /// # Errors
    ///
    /// * [`CorpusError::InvalidFraction`] if α ∉ (0, 1].
    /// * [`CorpusError::EmptyCorpus`] if there are no documents or no
    ///   tokens at all.
    /// * [`CorpusError::NoCandidateWords`] if the document-count threshold
    ///   eliminates every word.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the co-occurrence pairs fed to the
    /// graph builder are canonical, deduplicated, and positive-weight by
    /// construction.
    pub fn build(&self, documents: &[Document]) -> Result<AssocNetwork, CorpusError> {
        if !(self.fraction > 0.0 && self.fraction <= 1.0) {
            return Err(CorpusError::InvalidFraction { fraction: self.fraction });
        }
        if documents.iter().all(|d| d.is_empty()) {
            return Err(CorpusError::EmptyCorpus);
        }

        // Document frequency of every word.
        let mut doc_count: HashMap<&str, u32> = HashMap::new();
        for doc in documents {
            let mut uniq: Vec<&str> = doc.tokens().iter().map(String::as_str).collect();
            uniq.sort_unstable();
            uniq.dedup();
            for w in uniq {
                *doc_count.entry(w).or_default() += 1;
            }
        }

        // Candidate words, sorted by count (non-ascending), then
        // lexicographically for determinism.
        let mut candidates: Vec<(&str, u32)> = doc_count
            .iter()
            .filter(|&(_, &c)| c as usize >= self.min_document_count)
            .map(|(&w, &c)| (w, c))
            .collect();
        if candidates.is_empty() {
            return Err(CorpusError::NoCandidateWords {
                min_document_count: self.min_document_count,
            });
        }
        candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let keep = match self.top_words {
            Some(n) => n.min(candidates.len()),
            None => ((self.fraction * candidates.len() as f64).ceil() as usize)
                .clamp(1, candidates.len()),
        };
        candidates.truncate(keep);

        let words: Vec<String> = candidates.iter().map(|&(w, _)| w.to_owned()).collect();
        let index: HashMap<&str, u32> =
            candidates.iter().enumerate().map(|(i, &(w, _))| (w, i as u32)).collect();
        let selected_count: Vec<u32> = candidates.iter().map(|&(_, c)| c).collect();

        // Joint document frequencies over selected words.
        let mut joint: HashMap<(u32, u32), u32> = HashMap::new();
        for doc in documents {
            let mut present: Vec<u32> =
                doc.tokens().iter().filter_map(|t| index.get(t.as_str()).copied()).collect();
            present.sort_unstable();
            present.dedup();
            for (a, &i) in present.iter().enumerate() {
                for &j in &present[a + 1..] {
                    *joint.entry((i, j)).or_default() += 1;
                }
            }
        }

        let m = documents.len() as f64;
        let mut builder = GraphBuilder::with_vertices(words.len());
        // Deterministic edge order: sort the co-occurring pairs.
        let mut pairs: Vec<((u32, u32), u32)> = joint.into_iter().collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        for ((i, j), c) in pairs {
            let p_ij = c as f64 / m;
            let p_i = selected_count[i as usize] as f64 / m;
            let p_j = selected_count[j as usize] as f64 / m;
            let w = p_ij * (p_ij / (p_i * p_j)).ln();
            if w > 0.0 {
                builder
                    .add_edge(VertexId::new(i as usize), VertexId::new(j as usize), w)
                    .expect("pairs are unique, canonical, and weights positive");
            }
        }

        Ok(AssocNetwork { graph: builder.build(), words, doc_counts: selected_count })
    }
}

/// A word association network: a weighted graph plus the vertex ↔ word
/// mapping.
#[derive(Clone, PartialEq, Debug)]
pub struct AssocNetwork {
    graph: WeightedGraph,
    words: Vec<String>,
    doc_counts: Vec<u32>,
}

impl AssocNetwork {
    /// The underlying weighted graph (vertices are words, weights are the
    /// mutual-information scores of Eq. 3).
    #[must_use]
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// Consumes the network, returning the graph.
    #[must_use]
    pub fn into_graph(self) -> WeightedGraph {
        self.graph
    }

    /// The word at vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn word(&self, v: VertexId) -> &str {
        &self.words[v.index()]
    }

    /// The vertex of `word`, if it was selected into the vocabulary.
    pub fn vertex_of(&self, word: &str) -> Option<VertexId> {
        self.words.iter().position(|w| w == word).map(VertexId::new)
    }

    /// Number of selected vocabulary words (= vertex count).
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.words.len()
    }

    /// The number of documents containing the word at vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn document_count(&self, v: VertexId) -> u32 {
        self.doc_counts[v.index()]
    }

    /// The vocabulary in frequency-rank order (vertex order).
    #[must_use]
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(words: &[&str]) -> Document {
        Document::new(words.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn positive_pmi_creates_edge_negative_does_not() {
        // "hot"+"sun" always together; "hot"+"ice" never together.
        let docs = vec![
            doc(&["hot", "sun"]),
            doc(&["hot", "sun"]),
            doc(&["ice", "snow"]),
            doc(&["ice", "snow"]),
        ];
        let net = AssocNetworkBuilder::new().build(&docs).unwrap();
        let hot = net.vertex_of("hot").unwrap();
        let sun = net.vertex_of("sun").unwrap();
        let ice = net.vertex_of("ice").unwrap();
        assert!(net.graph().has_edge(hot, sun));
        assert!(!net.graph().has_edge(hot, ice));
    }

    #[test]
    fn independent_words_have_no_edge() {
        // a and b co-occur exactly as often as independence predicts:
        // p(a)=p(b)=1/2, p(ab)=1/4 -> w = 0, no edge.
        let docs = vec![doc(&["a", "b"]), doc(&["a", "x"]), doc(&["b", "y"]), doc(&["z"])];
        let net = AssocNetworkBuilder::new().build(&docs).unwrap();
        let a = net.vertex_of("a").unwrap();
        let b = net.vertex_of("b").unwrap();
        assert!(!net.graph().has_edge(a, b));
    }

    #[test]
    fn fraction_selects_most_frequent() {
        let docs =
            vec![doc(&["top", "mid"]), doc(&["top", "mid"]), doc(&["top", "rare"]), doc(&["top"])];
        let net = AssocNetworkBuilder::new().fraction(0.5).build(&docs).unwrap();
        // 3 candidates (top: 4, mid: 2, rare: 1); ceil(0.5*3) = 2 kept.
        assert_eq!(net.vocabulary_size(), 2);
        assert!(net.vertex_of("top").is_some());
        assert!(net.vertex_of("mid").is_some());
        assert!(net.vertex_of("rare").is_none());
        assert_eq!(net.document_count(net.vertex_of("top").unwrap()), 4);
    }

    #[test]
    fn vertices_ordered_by_frequency_rank() {
        let docs = vec![doc(&["b", "a"]), doc(&["b"]), doc(&["a", "b", "c"])];
        let net = AssocNetworkBuilder::new().build(&docs).unwrap();
        assert_eq!(net.words()[0], "b"); // 3 docs
        assert_eq!(net.words()[1], "a"); // 2 docs
        assert_eq!(net.words()[2], "c"); // 1 doc
    }

    #[test]
    fn duplicate_tokens_in_doc_count_once() {
        let docs = vec![doc(&["w", "w", "w", "v"]), doc(&["v"])];
        let net = AssocNetworkBuilder::new().build(&docs).unwrap();
        let w = net.vertex_of("w").unwrap();
        assert_eq!(net.document_count(w), 1);
    }

    #[test]
    fn top_words_overrides_fraction() {
        let docs =
            vec![doc(&["top", "mid"]), doc(&["top", "mid"]), doc(&["top", "rare"]), doc(&["top"])];
        let net = AssocNetworkBuilder::new().fraction(1.0).top_words(2).build(&docs).unwrap();
        assert_eq!(net.vocabulary_size(), 2);
        assert_eq!(net.words(), &["top".to_string(), "mid".to_string()]);
        // Clamped when asking for more than exist.
        let net = AssocNetworkBuilder::new().top_words(99).build(&docs).unwrap();
        assert_eq!(net.vocabulary_size(), 3);
    }

    #[test]
    fn min_document_count_filters() {
        let docs = vec![doc(&["common", "rare"]), doc(&["common"])];
        let net = AssocNetworkBuilder::new().min_document_count(2).build(&docs).unwrap();
        assert_eq!(net.vocabulary_size(), 1);
        let err = AssocNetworkBuilder::new().min_document_count(10).build(&docs).unwrap_err();
        assert!(matches!(err, CorpusError::NoCandidateWords { .. }));
    }

    #[test]
    fn rejects_bad_fraction_and_empty_corpus() {
        let docs = vec![doc(&["w"])];
        for alpha in [0.0, -0.5, 1.5, f64::NAN] {
            let err = AssocNetworkBuilder::new().fraction(alpha).build(&docs).unwrap_err();
            assert!(matches!(err, CorpusError::InvalidFraction { .. }), "alpha={alpha}");
        }
        let err = AssocNetworkBuilder::new().build(&[]).unwrap_err();
        assert_eq!(err, CorpusError::EmptyCorpus);
        let err = AssocNetworkBuilder::new().build(&[Document::default()]).unwrap_err();
        assert_eq!(err, CorpusError::EmptyCorpus);
    }

    #[test]
    fn build_is_deterministic() {
        let docs: Vec<Document> =
            (0..50).map(|i| doc(&[["u", "v", "w"][i % 3], ["x", "y"][i % 2], "z"])).collect();
        let a = AssocNetworkBuilder::new().build(&docs).unwrap();
        let b = AssocNetworkBuilder::new().build(&docs).unwrap();
        assert_eq!(a, b);
    }
}
