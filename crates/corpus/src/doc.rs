//! Documents and corpora.

/// A single processed document (e.g. one tweet): its surviving word
/// tokens after tokenization, stemming, and stop-word removal.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Document {
    tokens: Vec<String>,
}

impl Document {
    /// Creates a document from its tokens.
    #[must_use]
    pub fn new(tokens: Vec<String>) -> Self {
        Document { tokens }
    }

    /// The tokens of this document, in order.
    #[must_use]
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Number of tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the document has no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

impl FromIterator<String> for Document {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        Document::new(iter.into_iter().collect())
    }
}

/// An ordered collection of [`Document`]s.
///
/// # Examples
///
/// ```
/// use linkclust_corpus::{Corpus, Document};
///
/// let mut corpus = Corpus::new();
/// corpus.push(Document::new(vec!["storm".into(), "coffee".into()]));
/// assert_eq!(corpus.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Corpus {
    documents: Vec<Document>,
}

impl Corpus {
    /// Creates an empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a document.
    pub fn push(&mut self, doc: Document) {
        self.documents.push(doc);
    }

    /// The documents, in insertion order.
    #[must_use]
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Returns `true` if the corpus has no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Total number of tokens across all documents.
    pub fn token_count(&self) -> usize {
        self.documents.iter().map(Document::len).sum()
    }
}

impl FromIterator<Document> for Corpus {
    fn from_iter<T: IntoIterator<Item = Document>>(iter: T) -> Self {
        Corpus { documents: iter.into_iter().collect() }
    }
}

impl Extend<Document> for Corpus {
    fn extend<T: IntoIterator<Item = Document>>(&mut self, iter: T) {
        self.documents.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_basics() {
        let d: Document = vec!["a".to_string(), "b".to_string()].into_iter().collect();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.tokens()[1], "b");
        assert!(Document::default().is_empty());
    }

    #[test]
    fn corpus_collect_and_extend() {
        let mut c: Corpus = (0..3).map(|i| Document::new(vec![format!("w{i}")])).collect();
        c.extend([Document::new(vec!["x".into(), "y".into()])]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.token_count(), 5);
    }
}
