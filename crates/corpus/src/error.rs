//! Error type for corpus processing.

use std::error::Error;
use std::fmt;

/// Errors raised while building corpora or association networks.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum CorpusError {
    /// The vocabulary fraction α must lie in `(0, 1]`.
    InvalidFraction {
        /// The offending fraction.
        fraction: f64,
    },
    /// The corpus contains no documents (or no tokens survive filtering).
    EmptyCorpus,
    /// The minimum document-frequency threshold left no candidate words.
    NoCandidateWords {
        /// The threshold that filtered everything out.
        min_document_count: usize,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CorpusError::InvalidFraction { fraction } => {
                write!(f, "vocabulary fraction {fraction} must lie in (0, 1]")
            }
            CorpusError::EmptyCorpus => write!(f, "corpus contains no usable documents"),
            CorpusError::NoCandidateWords { min_document_count } => {
                write!(f, "no words appear in at least {min_document_count} documents")
            }
        }
    }
}

impl Error for CorpusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(CorpusError::InvalidFraction { fraction: 2.0 }.to_string().contains("(0, 1]"));
        assert!(CorpusError::EmptyCorpus.to_string().contains("no usable"));
        assert!(CorpusError::NoCandidateWords { min_document_count: 3 }
            .to_string()
            .contains("at least 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CorpusError>();
    }
}
