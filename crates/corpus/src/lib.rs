//! Synthetic social-media corpus and word-association-network builder.
//!
//! The evaluation of Yan (ICDCS 2017) builds a *word association network*
//! from a month of tweets (§III, §VII): each node is a frequent word, and
//! an edge joins two words whose pointwise mutual information is positive
//! (Eq. 3 of the paper), weighted by
//! `w_ij = p(X_i=1, X_j=1) · log(p(X_i=1, X_j=1) / (p(X_i=1) p(X_j=1)))`.
//!
//! The original Twitter corpus is proprietary, so this crate substitutes a
//! *synthetic* tweet stream ([`synth`]) whose generative model (Zipfian
//! global word frequencies mixed with topic-local vocabularies) reproduces
//! the property the paper's evaluation relies on: **frequent words co-occur
//! in the same message more often**, so the association graph's density
//! falls as the vocabulary fraction α grows (1.0 → ~0.1 across the α
//! sweep of Fig. 4(1)).
//!
//! The text pipeline mirrors the paper's: tokenization ([`token`]), Porter
//! stemming ([`porter`] — the full 1980 algorithm, replacing nltk), and
//! stop-word removal ([`stopwords`]).
//!
//! # Examples
//!
//! ```
//! use linkclust_corpus::synth::{SynthCorpus, SynthCorpusConfig};
//! use linkclust_corpus::assoc::AssocNetworkBuilder;
//!
//! let corpus = SynthCorpus::generate(&SynthCorpusConfig {
//!     documents: 500,
//!     vocabulary: 300,
//!     topics: 6,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let net = AssocNetworkBuilder::new().fraction(0.5).build(corpus.documents())?;
//! assert!(net.graph().edge_count() > 0);
//! # Ok::<(), linkclust_corpus::CorpusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod assoc;
pub mod doc;
pub mod pipeline;
pub mod porter;
pub mod reader;
pub mod stats;
pub mod stopwords;
pub mod synth;
pub mod token;

pub use assoc::{AssocNetwork, AssocNetworkBuilder};
pub use doc::{Corpus, Document};
pub use error::CorpusError;
pub use pipeline::TextPipeline;
