//! End-to-end text preprocessing: tokenize → stop-filter → stem.
//!
//! Mirrors the paper's preprocessing of English tweets (§VII): nltk
//! tokenization and Porter stemming plus stop-word removal, reimplemented
//! natively.

use crate::doc::{Corpus, Document};
use crate::porter::stem;
use crate::stopwords::is_stop_word;
use crate::token::tokenize;

/// A reusable text-preprocessing pipeline.
///
/// # Examples
///
/// ```
/// use linkclust_corpus::TextPipeline;
///
/// let doc = TextPipeline::new().process("The clusters are forming!");
/// assert_eq!(doc.tokens(), ["cluster", "form"]);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TextPipeline {
    keep_stop_words: bool,
    skip_stemming: bool,
}

impl TextPipeline {
    /// Creates the default pipeline (stop words removed, stemming on).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Keeps stop words instead of removing them.
    #[must_use]
    pub fn keep_stop_words(mut self) -> Self {
        self.keep_stop_words = true;
        self
    }

    /// Disables Porter stemming.
    #[must_use]
    pub fn skip_stemming(mut self) -> Self {
        self.skip_stemming = true;
        self
    }

    /// Processes one raw message into a [`Document`].
    #[must_use]
    pub fn process(&self, text: &str) -> Document {
        tokenize(text)
            .into_iter()
            .filter(|t| self.keep_stop_words || !is_stop_word(t))
            .map(|t| if self.skip_stemming { t } else { stem(&t) })
            .collect()
    }

    /// Processes a batch of raw messages into a [`Corpus`].
    pub fn process_all<I, S>(&self, texts: I) -> Corpus
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        texts.into_iter().map(|t| self.process(t.as_ref())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_filters_and_stems() {
        let doc = TextPipeline::new().process("The RUNNING dogs are barking loudly");
        assert_eq!(doc.tokens(), ["run", "dog", "bark", "loudli"]);
    }

    #[test]
    fn keep_stop_words_option() {
        let doc = TextPipeline::new().keep_stop_words().process("the dog");
        assert_eq!(doc.tokens(), ["the", "dog"]);
    }

    #[test]
    fn skip_stemming_option() {
        let doc = TextPipeline::new().skip_stemming().process("running dogs");
        assert_eq!(doc.tokens(), ["running", "dogs"]);
    }

    #[test]
    fn process_all_batches() {
        let corpus = TextPipeline::new().process_all(["a storm hit", "storms hitting"]);
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.documents()[0].tokens(), ["storm", "hit"]);
        assert_eq!(corpus.documents()[1].tokens(), ["storm", "hit"]);
    }

    #[test]
    fn tweet_noise_removed() {
        let doc = TextPipeline::new().process("@bob check https://x.io #clusters!!");
        assert_eq!(doc.tokens(), ["check", "cluster"]);
    }
}
