//! The Porter stemming algorithm (M. F. Porter, 1980).
//!
//! A faithful Rust implementation of the five-step suffix-stripping
//! algorithm the paper applies to every tweet word via nltk (§VII).
//! Operates on lowercase ASCII; words containing other characters are
//! returned unchanged.

/// Stems `word` with the Porter algorithm.
///
/// Words shorter than 3 characters and words containing non-ASCII or
/// non-lowercase-alphabetic characters are returned unchanged (the
/// [`tokenize`](crate::token::tokenize) output always satisfies the
/// alphabetic constraint).
///
/// # Examples
///
/// ```
/// use linkclust_corpus::porter::stem;
///
/// assert_eq!(stem("caresses"), "caress");
/// assert_eq!(stem("motoring"), "motor");
/// assert_eq!(stem("relational"), "relat");
/// assert_eq!(stem("sky"), "sky");
/// ```
pub fn stem(word: &str) -> String {
    if word.len() < 3 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut s = Stemmer { b: word.as_bytes().to_vec() };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // The stemmer only ever holds ASCII bytes, so a direct byte-to-char
    // mapping reconstructs the string without a fallible UTF-8 decode.
    s.b.into_iter().map(char::from).collect()
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is the letter at index `i` a consonant?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The measure m of the stem `self.b[..len]`: the number of VC
    /// sequences in the decomposition [C](VC)^m[V].
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // skip initial consonants
        while i < len && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // skip vowels
            while i < len && !self.is_consonant(i) {
                i += 1;
            }
            if i >= len {
                return m;
            }
            // skip consonants: one full VC block
            while i < len && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// Does the stem `self.b[..len]` contain a vowel?
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_consonant(i))
    }

    /// Does the stem end with a double consonant?
    fn ends_double_consonant(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_consonant(len - 1)
    }

    /// Does the stem `self.b[..len]` end consonant-vowel-consonant, where
    /// the final consonant is not w, x, or y?
    fn ends_cvc(&self, len: usize) -> bool {
        if len < 3 {
            return false;
        }
        let c = self.b[len - 1];
        self.is_consonant(len - 3)
            && !self.is_consonant(len - 2)
            && self.is_consonant(len - 1)
            && c != b'w'
            && c != b'x'
            && c != b'y'
    }

    fn ends_with(&self, suffix: &[u8]) -> bool {
        self.b.len() >= suffix.len() && &self.b[self.b.len() - suffix.len()..] == suffix
    }

    /// Length of the stem after removing `suffix` (caller must have
    /// checked `ends_with`).
    fn stem_len(&self, suffix: &[u8]) -> usize {
        self.b.len() - suffix.len()
    }

    /// Replace `suffix` with `replacement` if the measure of the stem
    /// exceeds `min_measure`. Returns true if the suffix matched
    /// (regardless of whether the replacement fired).
    fn replace_if_measure(
        &mut self,
        suffix: &[u8],
        replacement: &[u8],
        min_measure: usize,
    ) -> bool {
        if !self.ends_with(suffix) {
            return false;
        }
        let len = self.stem_len(suffix);
        if self.measure(len) > min_measure {
            self.b.truncate(len);
            self.b.extend_from_slice(replacement);
        }
        true
    }

    fn step1a(&mut self) {
        if self.ends_with(b"sses") {
            self.b.truncate(self.b.len() - 2); // sses -> ss
        } else if self.ends_with(b"ies") {
            self.b.truncate(self.b.len() - 2); // ies -> i
        } else if self.ends_with(b"ss") {
            // ss -> ss (no change)
        } else if self.ends_with(b"s") {
            self.b.truncate(self.b.len() - 1); // s -> ""
        }
    }

    fn step1b(&mut self) {
        if self.ends_with(b"eed") {
            let len = self.stem_len(b"eed");
            if self.measure(len) > 0 {
                self.b.truncate(self.b.len() - 1); // eed -> ee
            }
            return;
        }
        let stripped = if self.ends_with(b"ed") && self.has_vowel(self.stem_len(b"ed")) {
            self.b.truncate(self.stem_len(b"ed"));
            true
        } else if self.ends_with(b"ing") && self.has_vowel(self.stem_len(b"ing")) {
            self.b.truncate(self.stem_len(b"ing"));
            true
        } else {
            false
        };
        if !stripped {
            return;
        }
        if self.ends_with(b"at") || self.ends_with(b"bl") || self.ends_with(b"iz") {
            self.b.push(b'e'); // at -> ate, bl -> ble, iz -> ize
        } else if self.ends_double_consonant(self.b.len()) {
            if let Some(&last) = self.b.last() {
                if last != b'l' && last != b's' && last != b'z' {
                    self.b.pop(); // hopping -> hop
                }
            }
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e'); // fil -> file
        }
    }

    fn step1c(&mut self) {
        if self.ends_with(b"y") && self.has_vowel(self.b.len() - 1) {
            let n = self.b.len();
            self.b[n - 1] = b'i'; // happy -> happi
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"abli", b"able"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
        ];
        for &(suffix, replacement) in RULES {
            if self.replace_if_measure(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for &(suffix, replacement) in RULES {
            if self.replace_if_measure(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const SUFFIXES: &[&[u8]] = &[
            b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
            b"ent", b"ion", b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
        ];
        for &suffix in SUFFIXES {
            if !self.ends_with(suffix) {
                continue;
            }
            let len = self.stem_len(suffix);
            if suffix == b"ion" {
                // (m>1 and (*S or *T)) ion -> ""
                if len > 0
                    && (self.b[len - 1] == b's' || self.b[len - 1] == b't')
                    && self.measure(len) > 1
                {
                    self.b.truncate(len);
                }
            } else if self.measure(len) > 1 {
                self.b.truncate(len);
            }
            return;
        }
    }

    fn step5a(&mut self) {
        if !self.ends_with(b"e") {
            return;
        }
        let len = self.b.len() - 1;
        let m = self.measure(len);
        if m > 1 || (m == 1 && !self.ends_cvc(len)) {
            self.b.truncate(len);
        }
    }

    fn step5b(&mut self) {
        let len = self.b.len();
        if self.measure(len) > 1 && self.ends_double_consonant(len) && self.b[len - 1] == b'l' {
            self.b.truncate(len - 1); // controll -> control
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical pairs from Porter's 1980 paper and the reference
    /// implementation's vocabulary sample.
    #[test]
    fn canonical_vocabulary_sample() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("by"), "by");
        assert_eq!(stem(""), "");
    }

    #[test]
    fn non_lowercase_unchanged() {
        assert_eq!(stem("Running"), "Running");
        assert_eq!(stem("year2026"), "year2026");
    }

    #[test]
    fn inflections_converge_to_same_stem() {
        // The synthetic corpus emits inflected forms; the pipeline must
        // merge them back into one vocabulary entry.
        let base = stem("cluster");
        assert_eq!(stem("clusters"), base);
        assert_eq!(stem("clustered"), base);
        assert_eq!(stem("clustering"), base);
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["motor", "cat", "hop", "file", "depend", "relat"] {
            assert_eq!(stem(&stem(w)), stem(w), "stem not idempotent for {w}");
        }
    }
}
