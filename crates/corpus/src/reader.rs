//! Reading real corpora from disk.
//!
//! The paper's workload is "the tweets collected during December 2011";
//! users with their own message dumps can load them here. The supported
//! format is the simplest interoperable one: **one message per line**,
//! UTF-8, blank lines skipped. Processing (tokenize → stop-filter →
//! stem) is applied on the fly.

use std::io::BufRead;
use std::path::Path;

use crate::doc::Corpus;
use crate::pipeline::TextPipeline;

/// Reads a one-message-per-line corpus from a reader, processing each
/// line with `pipeline`. Blank lines are skipped; lines producing no
/// tokens yield empty documents (kept, so document indices line up with
/// input lines minus blanks).
///
/// # Errors
///
/// Propagates I/O errors from the reader.
///
/// # Examples
///
/// ```
/// use linkclust_corpus::{reader::read_messages, TextPipeline};
///
/// let text = "The cats are sleeping\n\nBig storms coming!\n";
/// let corpus = read_messages(text.as_bytes(), &TextPipeline::new())?;
/// assert_eq!(corpus.len(), 2);
/// assert_eq!(corpus.documents()[0].tokens(), ["cat", "sleep"]);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn read_messages<R: BufRead>(reader: R, pipeline: &TextPipeline) -> std::io::Result<Corpus> {
    let mut corpus = Corpus::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        corpus.push(pipeline.process(&line));
    }
    Ok(corpus)
}

/// Reads a one-message-per-line corpus from a file path.
///
/// # Errors
///
/// Propagates filesystem and I/O errors.
pub fn read_messages_file<P: AsRef<Path>>(
    path: P,
    pipeline: &TextPipeline,
) -> std::io::Result<Corpus> {
    let file = std::fs::File::open(path)?;
    read_messages(std::io::BufReader::new(file), pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_processes_lines() {
        let text = "Running fast!\n@bob check https://x.io #clusters\n\nthe the the\n";
        let corpus = read_messages(text.as_bytes(), &TextPipeline::new()).unwrap();
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.documents()[0].tokens(), ["run", "fast"]);
        assert_eq!(corpus.documents()[1].tokens(), ["check", "cluster"]);
        assert!(corpus.documents()[2].is_empty()); // all stop words
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("linkclust_reader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tweets.txt");
        std::fs::write(&path, "storms ahead\nsunny days\n").unwrap();
        let corpus = read_messages_file(&path, &TextPipeline::new()).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.documents()[0].tokens(), ["storm", "ahead"]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(read_messages_file("/definitely/not/here.txt", &TextPipeline::new()).is_err());
    }

    #[test]
    fn empty_input_gives_empty_corpus() {
        let corpus = read_messages("".as_bytes(), &TextPipeline::new()).unwrap();
        assert!(corpus.is_empty());
    }
}
