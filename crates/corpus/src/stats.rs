//! Corpus statistics: rank-frequency and vocabulary-growth diagnostics.
//!
//! The harness uses these to validate that the synthetic corpus has the
//! word-frequency shape (Zipf law) and vocabulary growth (Heaps law) the
//! paper's Twitter workload relies on. Both checks appear in the
//! EXPERIMENTS report.

use std::collections::{HashMap, HashSet};

use crate::doc::Document;

/// Rank-frequency statistics over a corpus.
#[derive(Clone, PartialEq, Debug)]
pub struct FrequencyStats {
    /// Token counts, sorted non-increasing (rank order).
    pub counts: Vec<u64>,
    /// Total token count.
    pub total_tokens: u64,
    /// Number of distinct words.
    pub distinct_words: usize,
}

impl FrequencyStats {
    /// Computes token frequencies for `documents`.
    #[must_use]
    pub fn compute(documents: &[Document]) -> Self {
        let mut counts: HashMap<&str, u64> = HashMap::new();
        let mut total = 0u64;
        for d in documents {
            for t in d.tokens() {
                *counts.entry(t.as_str()).or_default() += 1;
                total += 1;
            }
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        FrequencyStats { distinct_words: sorted.len(), counts: sorted, total_tokens: total }
    }

    /// Least-squares estimate of the Zipf exponent `s` from the
    /// rank-frequency curve `f(r) ∝ r^(−s)`, fitted over the top
    /// `max_rank` ranks (log-log regression).
    ///
    /// Returns `None` with fewer than 4 usable ranks.
    #[must_use]
    pub fn zipf_exponent(&self, max_rank: usize) -> Option<f64> {
        let ranks = self.counts.iter().take(max_rank).filter(|&&c| c > 0).count();
        if ranks < 4 {
            return None;
        }
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0, 0.0, 0.0);
        for (i, &c) in self.counts.iter().take(ranks).enumerate() {
            let x = ((i + 1) as f64).ln();
            let y = (c as f64).ln();
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let n = ranks as f64;
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        Some(-slope)
    }

    /// The fraction of all tokens carried by the top `k` ranks.
    #[must_use]
    pub fn head_mass(&self, k: usize) -> f64 {
        if self.total_tokens == 0 {
            return 0.0;
        }
        let head: u64 = self.counts.iter().take(k).sum();
        head as f64 / self.total_tokens as f64
    }
}

/// The vocabulary-growth curve: distinct words seen after each document
/// (Heaps' law predicts `V(n) ∝ n^β` with β < 1).
#[must_use]
pub fn vocabulary_growth(documents: &[Document]) -> Vec<usize> {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut curve = Vec::with_capacity(documents.len());
    for d in documents {
        for t in d.tokens() {
            seen.insert(t.as_str());
        }
        curve.push(seen.len());
    }
    curve
}

/// Heaps exponent β fitted from a vocabulary-growth curve by log-log
/// regression of distinct words against tokens seen. Returns `None` for
/// degenerate curves.
#[must_use]
pub fn heaps_exponent(documents: &[Document]) -> Option<f64> {
    let growth = vocabulary_growth(documents);
    if growth.len() < 8 {
        return None;
    }
    let mut tokens = 0u64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0, 0.0, 0.0);
    let mut n = 0.0;
    for (d, &v) in documents.iter().zip(&growth) {
        tokens += d.len() as u64;
        if tokens == 0 || v == 0 {
            continue;
        }
        let x = (tokens as f64).ln();
        let y = (v as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        n += 1.0;
    }
    if n < 8.0 {
        return None;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthCorpus, SynthCorpusConfig};

    fn doc(words: &[&str]) -> Document {
        Document::new(words.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn frequency_counts() {
        let docs = vec![doc(&["a", "b", "a"]), doc(&["a", "c"])];
        let s = FrequencyStats::compute(&docs);
        assert_eq!(s.total_tokens, 5);
        assert_eq!(s.distinct_words, 3);
        assert_eq!(s.counts, vec![3, 1, 1]);
        assert!((s.head_mass(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zipf_exponent_recovers_synthetic_law() {
        // Build an exactly-Zipfian corpus: word r appears ⌊1000/r⌋ times.
        let mut docs = Vec::new();
        for r in 1..=60usize {
            let count = 1000 / r;
            let word = format!("w{r}");
            for _ in 0..count {
                docs.push(doc(&[&word]));
            }
        }
        let s = FrequencyStats::compute(&docs);
        let exp = s.zipf_exponent(60).unwrap();
        assert!((exp - 1.0).abs() < 0.05, "expected s near 1.0, got {exp}");
    }

    #[test]
    fn synth_corpus_is_zipf_like() {
        let sc = SynthCorpus::generate(&SynthCorpusConfig {
            documents: 5_000,
            vocabulary: 800,
            topics: 8,
            seed: 11,
            ..Default::default()
        });
        let s = FrequencyStats::compute(sc.documents());
        let exp = s.zipf_exponent(200).expect("enough ranks");
        assert!((0.5..=1.8).contains(&exp), "synthetic corpus should be Zipf-like, exponent {exp}");
        // Heavy head: top 20 words carry a large share.
        assert!(s.head_mass(20) > 0.15, "head mass {}", s.head_mass(20));
    }

    #[test]
    fn vocabulary_growth_is_monotone_and_sublinear() {
        let sc = SynthCorpus::generate(&SynthCorpusConfig {
            documents: 3_000,
            vocabulary: 600,
            topics: 6,
            seed: 5,
            ..Default::default()
        });
        let growth = vocabulary_growth(sc.documents());
        assert!(growth.windows(2).all(|w| w[0] <= w[1]));
        let beta = heaps_exponent(sc.documents()).expect("curve is long enough");
        assert!(
            beta > 0.0 && beta < 1.0,
            "vocabulary growth should be sublinear (Heaps), beta = {beta}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(FrequencyStats::compute(&[]).total_tokens, 0);
        assert_eq!(FrequencyStats::compute(&[]).head_mass(5), 0.0);
        assert!(FrequencyStats::compute(&[]).zipf_exponent(10).is_none());
        assert!(heaps_exponent(&[]).is_none());
    }
}
