//! English stop words.
//!
//! The paper removes "common stop words" using the list published at
//! clips.ua.ac.be (its reference 11). This module embeds the standard English
//! stop-word list equivalent to that source.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The embedded English stop-word list (lowercase, deduplicated).
pub const STOP_WORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "ll",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "re",
    "s",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "ve",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

fn stop_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOP_WORDS.iter().copied().collect())
}

/// Returns `true` if `word` (already lower-cased) is a stop word.
///
/// # Examples
///
/// ```
/// use linkclust_corpus::stopwords::is_stop_word;
///
/// assert!(is_stop_word("the"));
/// assert!(!is_stop_word("cluster"));
/// ```
#[must_use]
pub fn is_stop_word(word: &str) -> bool {
    stop_set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopped() {
        for w in ["the", "a", "and", "is", "of", "to", "you", "with"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["graph", "cluster", "twitter", "network", "word"] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn list_is_lowercase_and_unique() {
        let mut seen = HashSet::new();
        for &w in STOP_WORDS {
            assert_eq!(w, w.to_lowercase());
            assert!(seen.insert(w), "duplicate stop word {w}");
        }
    }
}
