//! Synthetic tweet-corpus generator.
//!
//! Substitutes the paper's proprietary December-2011 Twitter corpus with a
//! deterministic generative model designed to reproduce the structural
//! property the paper's evaluation exploits (§VII): *frequent words
//! co-occur in the same tweet more often than infrequent ones*, so the
//! word-association graph over the top-α vocabulary is nearly complete for
//! tiny α and becomes sparser as α grows (Fig. 4(1): density 1.0 → 0.136).
//!
//! The model:
//!
//! * a vocabulary of `V` pseudo-words whose global frequencies follow a
//!   Zipf law with exponent `s`;
//! * `T` topics, each owning the vocabulary ranks congruent to its index
//!   (so every topic mixes frequent and rare words);
//! * each document samples a topic, then draws each word either from the
//!   global Zipf distribution (probability `global_mix`) or from the
//!   topic's own Zipf-ordered vocabulary.
//!
//! The global component makes top-ranked words co-occur in nearly every
//! message; the topic component gives rare words structured, community-like
//! co-occurrence — which is exactly what link clustering is meant to find.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::doc::{Corpus, Document};
use crate::stopwords::STOP_WORDS;

/// Configuration of the synthetic corpus generator.
///
/// # Examples
///
/// ```
/// use linkclust_corpus::synth::{SynthCorpus, SynthCorpusConfig};
///
/// let corpus = SynthCorpus::generate(&SynthCorpusConfig {
///     documents: 100,
///     vocabulary: 50,
///     topics: 4,
///     seed: 1,
///     ..Default::default()
/// });
/// assert_eq!(corpus.corpus().len(), 100);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SynthCorpusConfig {
    /// Number of documents (tweets) to generate.
    pub documents: usize,
    /// Vocabulary size `V` (number of distinct base words).
    pub vocabulary: usize,
    /// Number of topics `T`.
    pub topics: usize,
    /// Minimum words per document (inclusive).
    pub min_words: usize,
    /// Maximum words per *topical* document (inclusive); chatter
    /// documents run up to twice this length.
    pub max_words: usize,
    /// Probability that a word slot is filled from the global Zipf
    /// distribution rather than the document's topic.
    pub global_mix: f64,
    /// Zipf exponent `s` of the rank-frequency law.
    pub zipf_exponent: f64,
    /// RNG seed; equal seeds give identical corpora.
    pub seed: u64,
}

impl Default for SynthCorpusConfig {
    fn default() -> Self {
        SynthCorpusConfig {
            documents: 20_000,
            vocabulary: 5_000,
            topics: 20,
            min_words: 4,
            max_words: 12,
            global_mix: 0.55,
            zipf_exponent: 1.05,
            seed: 42,
        }
    }
}

/// A generated corpus together with its vocabulary.
#[derive(Clone, PartialEq, Debug)]
pub struct SynthCorpus {
    corpus: Corpus,
    words: Vec<String>,
    config: SynthCorpusConfig,
}

impl SynthCorpus {
    /// Generates a corpus from `config`. Deterministic in `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (zero documents/vocabulary/topics,
    /// `min_words > max_words`, `global_mix` outside `[0, 1]`, or a
    /// non-positive Zipf exponent).
    pub fn generate(config: &SynthCorpusConfig) -> Self {
        assert!(config.documents > 0, "need at least one document");
        assert!(config.vocabulary > 0, "need a non-empty vocabulary");
        assert!(config.topics > 0, "need at least one topic");
        assert!(config.min_words <= config.max_words, "min_words must not exceed max_words");
        assert!((0.0..=1.0).contains(&config.global_mix), "global_mix must lie in [0, 1]");
        assert!(config.zipf_exponent > 0.0, "zipf exponent must be positive");

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let words: Vec<String> = (0..config.vocabulary).map(pseudo_word).collect();

        let global = ZipfSampler::new(config.vocabulary, config.zipf_exponent);
        // Topic t owns ranks t, t+T, t+2T, … — Zipf-sampled by local index,
        // so each topic has its own frequent head and rare tail.
        let topic_sizes: Vec<usize> = (0..config.topics)
            .map(|t| (config.vocabulary + config.topics - 1 - t) / config.topics)
            .collect();
        let topic_samplers: Vec<ZipfSampler> =
            topic_sizes.iter().map(|&n| ZipfSampler::new(n.max(1), config.zipf_exponent)).collect();

        // Per-document mixing is bimodal: "chatter" documents draw
        // heavily from the global (frequent) vocabulary, topical ones
        // from their topic. This induces the *positive* correlation
        // between frequent words that real tweet streams exhibit — under
        // a flat mixture, frequent words would be slightly
        // anti-correlated (drawing one crowds out the other within the
        // fixed document length) and the top-α association graph would
        // be empty instead of near-complete (Fig. 4(1)).
        let chatter_mix = (config.global_mix + 0.4).min(0.95);
        let topical_mix = (config.global_mix - 0.45).max(0.05);

        let mut documents = Vec::with_capacity(config.documents);
        for _ in 0..config.documents {
            let topic = rng.gen_range(0..config.topics);
            let chatter = rng.gen_bool(0.5);
            let mix = if chatter { chatter_mix } else { topical_mix };
            // Chatter documents run longer, concentrating co-occurrence
            // mass on the frequent vocabulary.
            let len = if chatter {
                rng.gen_range(config.max_words..=config.max_words * 2)
            } else {
                rng.gen_range(config.min_words..=config.max_words)
            };
            let mut tokens = Vec::with_capacity(len);
            for _ in 0..len {
                let rank = if rng.gen_bool(mix) {
                    global.sample(&mut rng)
                } else {
                    let local = topic_samplers[topic].sample(&mut rng);
                    let rank = topic + local * config.topics;
                    rank.min(config.vocabulary - 1)
                };
                tokens.push(words[rank].clone());
            }
            documents.push(Document::new(tokens));
        }
        SynthCorpus { corpus: documents.into_iter().collect(), words, config: *config }
    }

    /// The processed corpus (documents of base-word tokens, as if already
    /// tokenized, stemmed and stop-filtered).
    #[must_use]
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Shorthand for `self.corpus().documents()`.
    #[must_use]
    pub fn documents(&self) -> &[Document] {
        self.corpus.documents()
    }

    /// The vocabulary, indexed by global frequency rank (0 = most
    /// frequent).
    #[must_use]
    pub fn vocabulary(&self) -> &[String] {
        &self.words
    }

    /// The configuration this corpus was generated from.
    #[must_use]
    pub fn config(&self) -> &SynthCorpusConfig {
        &self.config
    }

    /// Renders each document as raw tweet text: base words are randomly
    /// inflected (`-s`, `-ed`, `-ing`), and stop words, @-mentions, URLs,
    /// and hashtag markers are injected.
    ///
    /// Feeding the result through [`TextPipeline`](crate::TextPipeline)
    /// recovers the processed corpus (inflections stem back to the base
    /// word; the noise is filtered out) — this closes the loop on the
    /// paper's nltk + stop-list preprocessing.
    #[must_use]
    pub fn render_tweets(&self, seed: u64) -> Vec<String> {
        let mut rng = SmallRng::seed_from_u64(seed);
        self.corpus
            .documents()
            .iter()
            .map(|doc| {
                let mut parts: Vec<String> = Vec::new();
                if rng.gen_bool(0.2) {
                    parts.push(format!("@user{}", rng.gen_range(0..1000)));
                }
                for tok in doc.tokens() {
                    if rng.gen_bool(0.35) {
                        parts.push(STOP_WORDS[rng.gen_range(0..STOP_WORDS.len())].to_string());
                    }
                    let inflected = match rng.gen_range(0..5) {
                        0 => format!("{tok}s"),
                        1 => format!("{tok}ed"),
                        2 => format!("{tok}ing"),
                        3 => format!("#{tok}"),
                        _ => tok.clone(),
                    };
                    parts.push(inflected);
                }
                if rng.gen_bool(0.15) {
                    parts.push(format!("https://t.co/{}", rng.gen_range(0..100000)));
                }
                parts.join(" ")
            })
            .collect()
    }
}

/// Builds the pseudo-word for a vocabulary rank: alternating
/// consonant-vowel syllables, unique per rank, stable under Porter
/// stemming (no `e`/`y` endings, no stem-matching suffixes).
fn pseudo_word(rank: usize) -> String {
    const CONSONANTS: &[u8] = b"bdfgklmnprtvz";
    const VOWELS: &[u8] = b"aiou";
    let mut w = String::new();
    let mut r = rank;
    for _ in 0..3 {
        w.push(CONSONANTS[r % CONSONANTS.len()] as char);
        r /= CONSONANTS.len();
        w.push(VOWELS[r % VOWELS.len()] as char);
        r /= VOWELS.len();
    }
    w
}

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Clone, Debug)]
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_config() -> SynthCorpusConfig {
        SynthCorpusConfig {
            documents: 2_000,
            vocabulary: 200,
            topics: 8,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = SynthCorpus::generate(&small_config());
        let b = SynthCorpus::generate(&small_config());
        assert_eq!(a, b);
        let c = SynthCorpus::generate(&SynthCorpusConfig { seed: 4, ..small_config() });
        assert_ne!(a, c);
    }

    #[test]
    fn document_lengths_in_range() {
        let sc = SynthCorpus::generate(&small_config());
        let cfg = sc.config();
        for d in sc.documents() {
            assert!(d.len() >= cfg.min_words && d.len() <= 2 * cfg.max_words);
        }
    }

    #[test]
    fn frequencies_follow_rank_order_roughly() {
        let sc = SynthCorpus::generate(&small_config());
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for d in sc.documents() {
            for t in d.tokens() {
                *counts.entry(t.as_str()).or_default() += 1;
            }
        }
        let top = counts.get(sc.vocabulary()[0].as_str()).copied().unwrap_or(0);
        let mid = counts.get(sc.vocabulary()[100].as_str()).copied().unwrap_or(0);
        assert!(top > 5 * mid.max(1), "rank 0 ({top}) should dominate rank 100 ({mid})");
    }

    #[test]
    fn pseudo_words_are_unique_and_stemmer_stable() {
        use crate::porter::stem;
        let mut seen = std::collections::HashSet::new();
        for r in 0..2000 {
            let w = pseudo_word(r);
            assert!(seen.insert(w.clone()), "duplicate pseudo word {w}");
            assert_eq!(stem(&w), w, "pseudo word {w} must be a fixed point of the stemmer");
        }
    }

    #[test]
    fn zipf_sampler_is_heavily_skewed() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut head = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1 and n=1000, the top 10 ranks carry ~39% of the mass.
        let frac = head as f64 / N as f64;
        assert!(frac > 0.3 && frac < 0.5, "head fraction {frac}");
    }

    #[test]
    fn rendered_tweets_roundtrip_through_pipeline() {
        use crate::pipeline::TextPipeline;
        let sc = SynthCorpus::generate(&SynthCorpusConfig {
            documents: 50,
            vocabulary: 40,
            topics: 4,
            seed: 9,
            ..Default::default()
        });
        let tweets = sc.render_tweets(17);
        let pipeline = TextPipeline::new();
        for (raw, original) in tweets.iter().zip(sc.documents()) {
            let doc = pipeline.process(raw);
            assert_eq!(doc.tokens(), original.tokens(), "raw: {raw}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one document")]
    fn rejects_zero_documents() {
        SynthCorpus::generate(&SynthCorpusConfig { documents: 0, ..Default::default() });
    }
}
