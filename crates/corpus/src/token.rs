//! Tweet-style tokenization.
//!
//! The paper tokenizes English tweets before stemming and stop-word
//! removal (§VII). This tokenizer handles the artifacts typical of that
//! domain: URLs, @-mentions, and #-hashtags are dropped or unwrapped, text
//! is lower-cased, and only alphabetic tokens of length ≥ 2 survive.

/// Splits `text` into normalized word tokens.
///
/// Rules, in order:
///
/// 1. whitespace-delimited chunks are examined one at a time;
/// 2. chunks starting with `http://`, `https://`, or `www.` (URLs) and
///    chunks starting with `@` (mentions) are dropped;
/// 3. a leading `#` is stripped (the hashtag's word is kept);
/// 4. the chunk is lower-cased and split at every non-alphabetic
///    character;
/// 5. pieces shorter than 2 characters are dropped.
///
/// # Examples
///
/// ```
/// use linkclust_corpus::token::tokenize;
///
/// let toks = tokenize("Check THIS out @bob: #Rust2026 rocks! https://x.io");
/// assert_eq!(toks, vec!["check", "this", "out", "rust", "rocks"]);
/// ```
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in text.split_whitespace() {
        if is_url(chunk) || chunk.starts_with('@') {
            continue;
        }
        let chunk = chunk.strip_prefix('#').unwrap_or(chunk);
        let mut word = String::new();
        for ch in chunk.chars() {
            if ch.is_ascii_alphabetic() {
                word.push(ch.to_ascii_lowercase());
            } else {
                push_word(&mut out, &mut word);
            }
        }
        push_word(&mut out, &mut word);
    }
    out
}

fn push_word(out: &mut Vec<String>, word: &mut String) {
    if word.len() >= 2 {
        out.push(std::mem::take(word));
    } else {
        word.clear();
    }
}

fn is_url(chunk: &str) -> bool {
    let lower = chunk.to_ascii_lowercase();
    lower.starts_with("http://") || lower.starts_with("https://") || lower.starts_with("www.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(tokenize("Hello World"), vec!["hello", "world"]);
    }

    #[test]
    fn drops_urls_and_mentions() {
        assert_eq!(
            tokenize("see https://a.b/c and WWW.example.com @alice hi"),
            vec!["see", "and", "hi"]
        );
    }

    #[test]
    fn unwraps_hashtags() {
        assert_eq!(tokenize("#winning #Rust"), vec!["winning", "rust"]);
    }

    #[test]
    fn splits_on_punctuation_and_digits() {
        assert_eq!(tokenize("don't stop2think"), vec!["don", "stop", "think"]);
    }

    #[test]
    fn drops_short_tokens() {
        assert_eq!(tokenize("a I to x yz"), vec!["to", "yz"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
        assert!(tokenize("@only @mentions https://urls.only").is_empty());
    }

    #[test]
    fn non_ascii_is_a_separator() {
        assert_eq!(tokenize("caf\u{e9} news"), vec!["caf", "news"]);
    }
}
