//! Property tests for the text pipeline: the stemmer and tokenizer must
//! be total (no panics), bounded, and consistent on arbitrary input.

use linkclust_corpus::porter::stem;
use linkclust_corpus::token::tokenize;
use linkclust_corpus::TextPipeline;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stem_never_panics_and_is_bounded(word in "[a-z]{0,24}") {
        let s = stem(&word);
        // Porter only ever removes suffixes or swaps them for shorter or
        // equal ones, except the `+e` restorations (at->ate, bl->ble,
        // iz->ize, cvc+e) which net at most one char over a *stripped*
        // stem — never over the input.
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}");
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()) || s.is_empty());
    }

    #[test]
    fn stem_of_non_lowercase_is_identity(word in "[A-Za-z0-9]{1,16}") {
        if !word.bytes().all(|b| b.is_ascii_lowercase()) {
            prop_assert_eq!(stem(&word), word);
        }
    }

    #[test]
    fn tokenize_never_panics_and_tokens_are_clean(text in ".{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(t.len() >= 2);
            prop_assert!(t.bytes().all(|b| b.is_ascii_lowercase()), "dirty token {t:?}");
        }
    }

    #[test]
    fn pipeline_is_deterministic(text in ".{0,200}") {
        let p = TextPipeline::new();
        prop_assert_eq!(p.process(&text), p.process(&text));
    }

    #[test]
    fn pipeline_filters_stop_words_before_stemming(text in "[a-zA-Z ,.!#@]{0,200}") {
        // Stop words are removed on the *surface* form (stemming can
        // coincidentally create stop-word strings, e.g. "ase" -> "as").
        let unstemmed = TextPipeline::new().skip_stemming().process(&text);
        for t in unstemmed.tokens() {
            prop_assert!(!linkclust_corpus::stopwords::is_stop_word(t), "stop word {t} leaked");
        }
        // And the stemmed output is exactly the stem of the unstemmed one.
        let stemmed = TextPipeline::new().process(&text);
        let expected: Vec<String> =
            unstemmed.tokens().iter().map(|t| stem(t)).collect();
        prop_assert_eq!(stemmed.tokens(), &expected[..]);
    }
}

#[test]
fn stemmer_handles_pathological_repeats() {
    for w in ["ssssssss", "eeeeeeee", "bbbbbbbb", "inginginging", "sses", "ies", "ed", "ing"] {
        let _ = stem(w); // must not panic
    }
    assert_eq!(stem("sses"), "ss");
    assert_eq!(stem("ies"), "i");
}
