//! Basic graph algorithms used around the clustering pipeline.

use std::collections::VecDeque;

use crate::{VertexId, WeightedGraph};

/// Labels each vertex with its connected component (components are
/// numbered 0.. in order of their smallest vertex).
///
/// # Examples
///
/// ```
/// use linkclust_graph::{GraphBuilder, algo::connected_components};
///
/// let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)])?.build();
/// assert_eq!(connected_components(&g), vec![0, 0, 1, 1]);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[must_use]
pub fn connected_components(g: &WeightedGraph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for nb in g.neighbors(VertexId::new(v)) {
                let u = nb.vertex.index();
                if labels[u] == usize::MAX {
                    labels[u] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    labels
}

/// Number of connected components (isolated vertices count as their own
/// component).
#[must_use]
pub fn component_count(g: &WeightedGraph) -> usize {
    connected_components(g).iter().copied().max().map_or(0, |m| m + 1)
}

/// Unweighted breadth-first distances from `source` (`None` for
/// unreachable vertices).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
#[must_use]
pub fn bfs_distances(g: &WeightedGraph, source: VertexId) -> Vec<Option<u32>> {
    let n = g.vertex_count();
    assert!(source.index() < n, "source vertex out of bounds");
    let mut dist = vec![None; n];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source.index()]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v].expect("queued vertices have distances");
        for nb in g.neighbors(VertexId::new(v)) {
            let u = nb.vertex.index();
            if dist[u].is_none() {
                dist[u] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The weighted local clustering coefficient is not needed by the paper;
/// the plain (unweighted) one is handy for sanity-checking generated
/// workloads. Returns 0.0 for degree < 2.
#[must_use]
pub fn clustering_coefficient(g: &WeightedGraph, v: VertexId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, a) in nbrs.iter().enumerate() {
        for b in &nbrs[i + 1..] {
            if g.has_edge(a.vertex, b.vertex) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{complete, ring, WeightMode};
    use crate::GraphBuilder;

    #[test]
    fn components_of_disconnected_graph() {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (4, 5, 1.0)]).unwrap().build();
        assert_eq!(connected_components(&g), vec![0, 0, 0, 1, 2, 2]);
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn complete_graph_is_one_component() {
        let g = complete(8, WeightMode::Unit, 0);
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn bfs_distances_on_ring() {
        let g = ring(6, WeightMode::Unit, 0);
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(2), Some(1)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0)]).unwrap().build();
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn clustering_coefficients() {
        let g = complete(5, WeightMode::Unit, 0);
        for v in g.vertices() {
            assert!((clustering_coefficient(&g, v) - 1.0).abs() < 1e-12);
        }
        let r = ring(6, WeightMode::Unit, 0);
        for v in r.vertices() {
            assert_eq!(clustering_coefficient(&r, v), 0.0);
        }
        let star = crate::generate::star(5, WeightMode::Unit, 0);
        assert_eq!(clustering_coefficient(&star, VertexId::new(0)), 0.0);
        assert_eq!(clustering_coefficient(&star, VertexId::new(1)), 0.0);
    }

    #[test]
    fn empty_graph_component_count() {
        let g = GraphBuilder::new().build();
        assert_eq!(component_count(&g), 0);
        assert!(connected_components(&g).is_empty());
    }
}
