//! The versioned binary on-disk graph format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"LNKCLSTG"
//!      8     4  format version (currently 1)
//!     12     4  flags (reserved, must be 0)
//!     16     8  vertex count n (u64)
//!     24     8  edge count m (u64)
//!     32  16*m  edge records: u32 source, u32 target, f64 weight
//! ```
//!
//! A record is 16 bytes, so a 10⁷-edge graph is a 160 MB file that
//! [`GraphFile::read_streamed`] loads through a fixed ~1 MB chunk
//! buffer straight into [`CsrGraph`] arrays — the reader never holds
//! the raw file in memory. Records are validated (endpoints in range
//! and distinct, weights finite and positive); duplicate edges are
//! **not** detected, since writers only emit deduplicated graphs and a
//! set probe per edge would dominate the load.

use std::io::{Read, Write};

use crate::view::GraphView;
use crate::{CsrGraph, GraphError, VertexId};

/// The 8-byte magic at offset 0.
pub const MAGIC: [u8; 8] = *b"LNKCLSTG";

/// The current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Edges per streaming chunk (~1 MB of records).
const CHUNK_EDGES: usize = 64 * 1024;

/// Bytes per edge record.
const RECORD_BYTES: usize = 16;

/// Header length in bytes.
const HEADER_BYTES: usize = 32;

/// Errors raised while reading the binary graph format.
#[derive(Debug)]
#[non_exhaustive]
pub enum BinGraphError {
    /// An I/O failure from the underlying reader.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// The reserved flags field is non-zero.
    UnsupportedFlags(u32),
    /// The header declares a graph too large for `u32` ids.
    TooLarge {
        /// Declared vertex count.
        vertices: u64,
        /// Declared edge count.
        edges: u64,
    },
    /// The stream ended before the declared edge count was read.
    Truncated {
        /// Edges the header declared.
        declared: u64,
        /// Edges actually read.
        read: u64,
    },
    /// Bytes remain after the declared edge count.
    TrailingData,
    /// An edge record is structurally invalid.
    InvalidEdge {
        /// 0-based record index.
        index: u64,
        /// The underlying validation failure.
        source: GraphError,
    },
}

impl std::fmt::Display for BinGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinGraphError::Io(e) => write!(f, "i/o error while reading binary graph: {e}"),
            BinGraphError::BadMagic => write!(f, "not a binary graph file (bad magic)"),
            BinGraphError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v} (reader supports {FORMAT_VERSION})")
            }
            BinGraphError::UnsupportedFlags(flags) => {
                write!(f, "reserved flags field is non-zero: {flags:#x}")
            }
            BinGraphError::TooLarge { vertices, edges } => {
                write!(f, "graph too large for u32 ids: {vertices} vertices, {edges} edges")
            }
            BinGraphError::Truncated { declared, read } => {
                write!(f, "file truncated: header declares {declared} edges, read {read}")
            }
            BinGraphError::TrailingData => {
                write!(f, "trailing bytes after the declared edge records")
            }
            BinGraphError::InvalidEdge { index, source } => {
                write!(f, "edge record {index}: {source}")
            }
        }
    }
}

impl std::error::Error for BinGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinGraphError::Io(e) => Some(e),
            BinGraphError::InvalidEdge { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BinGraphError {
    fn from(e: std::io::Error) -> Self {
        BinGraphError::Io(e)
    }
}

/// Reader/writer for the binary graph format.
///
/// # Examples
///
/// ```
/// use linkclust_graph::{GraphBuilder, GraphFile, GraphView};
///
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 0.5)])?.build();
/// let mut bytes = Vec::new();
/// GraphFile::write(&g, &mut bytes)?;
/// let csr = GraphFile::read_streamed(bytes.as_slice()).unwrap();
/// assert_eq!(csr.vertex_count(), 3);
/// assert_eq!(csr.edge_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct GraphFile;

impl GraphFile {
    /// Writes `g` in the binary format, buffering a fixed-size chunk of
    /// records between writes.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write<G: GraphView + ?Sized, W: Write>(g: &G, mut writer: W) -> std::io::Result<()> {
        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&0u32.to_le_bytes());
        header[16..24].copy_from_slice(&(g.vertex_count() as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(g.edge_count() as u64).to_le_bytes());
        writer.write_all(&header)?;

        let mut buf = Vec::with_capacity(CHUNK_EDGES.min(g.edge_count().max(1)) * RECORD_BYTES);
        for e in 0..g.edge_count() {
            let id = crate::EdgeId::new(e);
            let (s, t) = g.edge_endpoints(id);
            buf.extend_from_slice(&(s.index() as u32).to_le_bytes());
            buf.extend_from_slice(&(t.index() as u32).to_le_bytes());
            buf.extend_from_slice(&g.edge_weight(id).to_le_bytes());
            if buf.len() >= CHUNK_EDGES * RECORD_BYTES {
                writer.write_all(&buf)?;
                buf.clear();
            }
        }
        writer.write_all(&buf)?;
        writer.flush()
    }

    /// Reads a binary graph into a [`CsrGraph`], streaming the records
    /// through a fixed-size chunk buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BinGraphError`] on I/O failure, a bad or unsupported
    /// header, a short or overlong stream, or an invalid edge record.
    pub fn read_streamed<R: Read>(mut reader: R) -> Result<CsrGraph, BinGraphError> {
        let mut header = [0u8; HEADER_BYTES];
        reader.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                BinGraphError::BadMagic
            } else {
                BinGraphError::Io(e)
            }
        })?;
        if header[..8] != MAGIC {
            return Err(BinGraphError::BadMagic);
        }
        let version = le_u32(&header[8..12]);
        if version != FORMAT_VERSION {
            return Err(BinGraphError::UnsupportedVersion(version));
        }
        let flags = le_u32(&header[12..16]);
        if flags != 0 {
            return Err(BinGraphError::UnsupportedFlags(flags));
        }
        let n = le_u64(&header[16..24]);
        let m = le_u64(&header[24..32]);
        if n > u64::from(u32::MAX) || m.saturating_mul(2) > u64::from(u32::MAX) {
            return Err(BinGraphError::TooLarge { vertices: n, edges: m });
        }
        let (n, m) = (n as usize, m as usize);

        let mut source = Vec::with_capacity(m);
        let mut target = Vec::with_capacity(m);
        let mut weight = Vec::with_capacity(m);
        let mut buf = vec![0u8; CHUNK_EDGES.min(m.max(1)) * RECORD_BYTES];
        let mut read_edges = 0usize;
        while read_edges < m {
            let chunk = CHUNK_EDGES.min(m - read_edges);
            let bytes = &mut buf[..chunk * RECORD_BYTES];
            reader.read_exact(bytes).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    BinGraphError::Truncated { declared: m as u64, read: read_edges as u64 }
                } else {
                    BinGraphError::Io(e)
                }
            })?;
            for (i, record) in bytes.chunks_exact(RECORD_BYTES).enumerate() {
                let index = (read_edges + i) as u64;
                let u = le_u32(&record[..4]);
                let v = le_u32(&record[4..8]);
                let w = f64::from_bits(le_u64(&record[8..16]));
                let invalid = |source: GraphError| BinGraphError::InvalidEdge { index, source };
                if u as usize >= n || v as usize >= n {
                    let bad = if u as usize >= n { u } else { v };
                    return Err(invalid(GraphError::UnknownVertex {
                        vertex: VertexId::new(bad as usize),
                        vertex_count: n,
                    }));
                }
                if u == v {
                    return Err(invalid(GraphError::SelfLoop {
                        vertex: VertexId::new(u as usize),
                    }));
                }
                if !w.is_finite() || w <= 0.0 {
                    return Err(invalid(GraphError::InvalidWeight { weight: w }));
                }
                source.push(u);
                target.push(v);
                weight.push(w);
            }
            read_edges += chunk;
        }
        if reader.read(&mut [0u8; 1])? != 0 {
            return Err(BinGraphError::TrailingData);
        }
        Ok(CsrGraph::from_edge_arrays(n, &source, &target, &weight))
    }
}

/// Little-endian u32 from the first 4 bytes of `b` (zero-extended if
/// shorter — callers always pass exactly 4).
#[inline]
fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    for (dst, src) in a.iter_mut().zip(b) {
        *dst = *src;
    }
    u32::from_le_bytes(a)
}

/// Little-endian u64 from the first 8 bytes of `b` (zero-extended if
/// shorter — callers always pass exactly 8).
#[inline]
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    for (dst, src) in a.iter_mut().zip(b) {
        *dst = *src;
    }
    u64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{barabasi_albert, gnm, WeightMode};
    use crate::GraphBuilder;

    fn roundtrip(g: &crate::WeightedGraph) -> CsrGraph {
        let mut bytes = Vec::new();
        GraphFile::write(g, &mut bytes).unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES + g.edge_count() * RECORD_BYTES);
        GraphFile::read_streamed(bytes.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph_bit_exactly() {
        for seed in 0..3 {
            let g = gnm(50, 200, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            assert_eq!(roundtrip(&g), CsrGraph::from_weighted(&g));
        }
        let g = barabasi_albert(70, 3, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 1);
        assert_eq!(roundtrip(&g), CsrGraph::from_weighted(&g));
    }

    #[test]
    fn roundtrip_spans_multiple_chunks() {
        // More edges than one chunk holds, to cross the chunk boundary.
        let g = gnm(600, CHUNK_EDGES + 1000, WeightMode::Unit, 7);
        assert_eq!(roundtrip(&g), CsrGraph::from_weighted(&g));
    }

    #[test]
    fn csr_roundtrips_too() {
        let g = gnm(40, 150, WeightMode::Uniform { lo: 0.3, hi: 1.7 }, 5);
        let csr = CsrGraph::from_weighted(&g);
        let mut bytes = Vec::new();
        GraphFile::write(&csr, &mut bytes).unwrap();
        assert_eq!(GraphFile::read_streamed(bytes.as_slice()).unwrap(), csr);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        assert_eq!(roundtrip(&g).vertex_count(), 0);
        let g = GraphBuilder::with_vertices(5).build();
        let back = roundtrip(&g);
        assert_eq!(back.vertex_count(), 5);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            GraphFile::read_streamed(&b"not a graph file at all..........."[..]),
            Err(BinGraphError::BadMagic)
        ));
        // Shorter than a header.
        assert!(matches!(GraphFile::read_streamed(&b"LNKCL"[..]), Err(BinGraphError::BadMagic)));
    }

    fn valid_bytes() -> Vec<u8> {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 0.5)]).unwrap().build();
        let mut bytes = Vec::new();
        GraphFile::write(&g, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn corrupt_header_fields_are_rejected() {
        let mut bad_version = valid_bytes();
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            GraphFile::read_streamed(bad_version.as_slice()),
            Err(BinGraphError::UnsupportedVersion(99))
        ));

        let mut bad_flags = valid_bytes();
        bad_flags[12..16].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            GraphFile::read_streamed(bad_flags.as_slice()),
            Err(BinGraphError::UnsupportedFlags(7))
        ));

        let mut too_large = valid_bytes();
        too_large[16..24].copy_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes());
        assert!(matches!(
            GraphFile::read_streamed(too_large.as_slice()),
            Err(BinGraphError::TooLarge { .. })
        ));
    }

    #[test]
    fn truncated_body_is_rejected() {
        let bytes = valid_bytes();
        let cut = bytes.len() - 5;
        match GraphFile::read_streamed(&bytes[..cut]).unwrap_err() {
            BinGraphError::Truncated { declared: 2, read } => assert!(read < 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = valid_bytes();
        bytes.push(0xAB);
        assert!(matches!(
            GraphFile::read_streamed(bytes.as_slice()),
            Err(BinGraphError::TrailingData)
        ));
    }

    #[test]
    fn invalid_records_are_rejected_with_index() {
        let write_record = |bytes: &mut Vec<u8>, u: u32, v: u32, w: f64| {
            bytes.extend_from_slice(&u.to_le_bytes());
            bytes.extend_from_slice(&v.to_le_bytes());
            bytes.extend_from_slice(&w.to_le_bytes());
        };
        let header = |m: u64| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&3u64.to_le_bytes());
            bytes.extend_from_slice(&m.to_le_bytes());
            bytes
        };

        let mut self_loop = header(2);
        write_record(&mut self_loop, 0, 1, 1.0);
        write_record(&mut self_loop, 2, 2, 1.0);
        match GraphFile::read_streamed(self_loop.as_slice()).unwrap_err() {
            BinGraphError::InvalidEdge { index: 1, source: GraphError::SelfLoop { .. } } => {}
            other => panic!("unexpected error {other}"),
        }

        let mut out_of_range = header(1);
        write_record(&mut out_of_range, 0, 9, 1.0);
        assert!(matches!(
            GraphFile::read_streamed(out_of_range.as_slice()).unwrap_err(),
            BinGraphError::InvalidEdge { index: 0, source: GraphError::UnknownVertex { .. } }
        ));

        let mut bad_weight = header(1);
        write_record(&mut bad_weight, 0, 1, -1.0);
        assert!(matches!(
            GraphFile::read_streamed(bad_weight.as_slice()).unwrap_err(),
            BinGraphError::InvalidEdge { index: 0, source: GraphError::InvalidWeight { .. } }
        ));
    }

    #[test]
    fn error_messages_render() {
        let e = BinGraphError::Truncated { declared: 10, read: 3 };
        assert!(e.to_string().contains("truncated"));
        assert!(BinGraphError::BadMagic.to_string().contains("magic"));
        assert!(BinGraphError::UnsupportedVersion(9).to_string().contains('9'));
        let e = BinGraphError::InvalidEdge {
            index: 4,
            source: GraphError::InvalidWeight { weight: f64::NAN },
        };
        assert!(e.to_string().contains("record 4"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
