//! Incremental construction of [`WeightedGraph`]s.

use std::collections::HashSet;

use crate::graph::{Edge, Neighbor};
use crate::{EdgeId, GraphError, VertexId, Weight, WeightedGraph};

/// Builder for [`WeightedGraph`] and [`CsrGraph`](crate::CsrGraph).
///
/// Vertices are added first (densely numbered in insertion order), then
/// edges. Edges are validated eagerly: endpoints must exist, self-loops and
/// duplicates are rejected, weights must be finite and positive.
///
/// Construction is two-stage: the accumulation stage (`add_vertex` /
/// `add_edge`) is backend-agnostic, and the finalization stage picks the
/// backend — [`build`](Self::build) for the adjacency-list
/// [`WeightedGraph`], [`build_csr`](Self::build_csr) for the compact
/// CSR backend. Both finalizers assign identical edge ids and identical
/// id-sorted neighbor slabs, so downstream algorithms behave
/// bit-identically on either. Code migrating from `build()` can switch
/// to `build_csr()` wherever it only needs
/// [`GraphView`](crate::GraphView) access.
///
/// # Examples
///
/// ```
/// use linkclust_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::with_vertices(4);
/// let vs: Vec<_> = b.vertices().collect();
/// b.add_edge(vs[0], vs[1], 1.0)?;
/// b.add_edge(vs[1], vs[2], 0.25)?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    vertex_count: usize,
    edges: Vec<Edge>,
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` vertices.
    #[must_use]
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder { vertex_count: n, ..Self::default() }
    }

    /// Builds a graph directly from an edge list over `n` vertices.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] raised by any edge (unknown
    /// endpoint, self-loop, duplicate, or invalid weight).
    pub fn from_edges(n: usize, edges: &[(usize, usize, Weight)]) -> Result<Self, GraphError> {
        let mut b = Self::with_vertices(n);
        for &(u, v, w) in edges {
            b.add_edge(VertexId::new(u), VertexId::new(v), w)?;
        }
        Ok(b)
    }

    /// Adds a vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::new(self.vertex_count);
        self.vertex_count += 1;
        id
    }

    /// Adds `n` vertices and returns the id of the first one added.
    pub fn add_vertices(&mut self, n: usize) -> VertexId {
        let first = VertexId::new(self.vertex_count);
        self.vertex_count += n;
        first
    }

    /// Returns the number of vertices added so far.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Returns the number of edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the ids of all vertices added so far.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> {
        (0..self.vertex_count).map(VertexId::new)
    }

    /// Adds the undirected edge `{u, v}` with weight `w`, returning its id.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownVertex`] if either endpoint is out of bounds.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::DuplicateEdge`] if the edge was already added.
    /// * [`GraphError::InvalidWeight`] if `w` is not finite or `w <= 0`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<EdgeId, GraphError> {
        for &x in &[u, v] {
            if x.index() >= self.vertex_count {
                return Err(GraphError::UnknownVertex {
                    vertex: x,
                    vertex_count: self.vertex_count,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::InvalidWeight { weight: w });
        }
        let (s, t) = if u < v { (u, v) } else { (v, u) };
        if !self.seen.insert((s.into(), t.into())) {
            return Err(GraphError::DuplicateEdge { source: s, target: t });
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { source: s, target: t, weight: w });
        Ok(id)
    }

    /// Returns `true` if the edge `{u, v}` has already been added.
    #[must_use]
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (s, t) = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&(s.into(), t.into()))
    }

    /// Finalizes the builder into an immutable [`WeightedGraph`].
    ///
    /// Edge ids assigned by [`add_edge`](Self::add_edge) are preserved.
    /// Adjacency lists are sorted by neighbor id.
    #[must_use]
    pub fn build(self) -> WeightedGraph {
        let n = self.vertex_count;
        let mut degree = vec![0usize; n];
        for e in &self.edges {
            degree[e.source.index()] += 1;
            degree[e.target.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let placeholder = Neighbor { vertex: VertexId::new(0), weight: 0.0, edge: EdgeId::new(0) };
        let mut adj = vec![placeholder; 2 * self.edges.len()];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId::new(i);
            let s = e.source.index();
            let t = e.target.index();
            adj[cursor[s]] = Neighbor { vertex: e.target, weight: e.weight, edge: id };
            cursor[s] += 1;
            adj[cursor[t]] = Neighbor { vertex: e.source, weight: e.weight, edge: id };
            cursor[t] += 1;
        }
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable_by_key(|nb| nb.vertex);
        }
        WeightedGraph { offsets, adj, edges: self.edges }
    }

    /// Finalizes the builder into a compact [`CsrGraph`](crate::CsrGraph)
    /// — same edge ids and neighbor slabs as [`build`](Self::build), in
    /// `u32`-offset struct-of-arrays storage.
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds `u32` adjacency capacity
    /// (`2 · edge_count > u32::MAX`).
    #[must_use]
    pub fn build_csr(self) -> crate::CsrGraph {
        let m = self.edges.len();
        let mut source = Vec::with_capacity(m);
        let mut target = Vec::with_capacity(m);
        let mut weight = Vec::with_capacity(m);
        for e in &self.edges {
            source.push(e.source.index() as u32);
            target.push(e.target.index() as u32);
            weight.push(e.weight);
        }
        crate::CsrGraph::from_edge_arrays(self.vertex_count, &source, &target, &weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::with_vertices(2);
        let v = VertexId::new(1);
        assert_eq!(b.add_edge(v, v, 1.0), Err(GraphError::SelfLoop { vertex: v }));
    }

    #[test]
    fn rejects_duplicate_in_either_orientation() {
        let mut b = GraphBuilder::with_vertices(2);
        let (u, v) = (VertexId::new(0), VertexId::new(1));
        b.add_edge(u, v, 1.0).unwrap();
        assert!(matches!(b.add_edge(v, u, 2.0), Err(GraphError::DuplicateEdge { .. })));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = GraphBuilder::with_vertices(2);
        let (u, v) = (VertexId::new(0), VertexId::new(1));
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(b.add_edge(u, v, w), Err(GraphError::InvalidWeight { .. })));
        }
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut b = GraphBuilder::with_vertices(1);
        let err = b.add_edge(VertexId::new(0), VertexId::new(5), 1.0).unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertex { .. }));
    }

    #[test]
    fn edge_ids_follow_insertion_order() {
        let mut b = GraphBuilder::with_vertices(3);
        let e0 = b.add_edge(VertexId::new(0), VertexId::new(1), 1.0).unwrap();
        let e1 = b.add_edge(VertexId::new(2), VertexId::new(1), 1.0).unwrap();
        assert_eq!(e0.index(), 0);
        assert_eq!(e1.index(), 1);
        let g = b.build();
        // edge 1 was inserted as (2, 1) but is canonicalized to (1, 2)
        let e = g.edge(e1);
        assert!(e.source < e.target);
    }

    #[test]
    fn contains_edge_checks_both_orientations() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0).unwrap();
        assert!(b.contains_edge(VertexId::new(1), VertexId::new(0)));
        assert!(b.contains_edge(VertexId::new(0), VertexId::new(1)));
    }

    #[test]
    fn add_vertices_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_vertices(10);
        assert_eq!(first.index(), 0);
        let next = b.add_vertex();
        assert_eq!(next.index(), 10);
        assert_eq!(b.vertex_count(), 11);
    }

    #[test]
    fn adjacency_sorted_after_build() {
        let g = GraphBuilder::from_edges(5, &[(0, 4, 1.0), (0, 2, 1.0), (0, 1, 1.0), (0, 3, 1.0)])
            .unwrap()
            .build();
        let order: Vec<_> =
            g.neighbors(VertexId::new(0)).iter().map(|n| n.vertex.index()).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_edges_propagates_errors() {
        assert!(GraphBuilder::from_edges(2, &[(0, 0, 1.0)]).is_err());
        assert!(GraphBuilder::from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]).is_err());
    }
}
