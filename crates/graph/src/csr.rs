//! The compact CSR graph backend for million-edge workloads.
//!
//! [`CsrGraph`] stores the same logical graph as
//! [`WeightedGraph`](crate::WeightedGraph) — identical id-sorted
//! neighbor slabs, identical insertion-order edge ids — but with `u32`
//! offsets and struct-of-arrays edge storage, cutting per-edge memory
//! and keeping the arrays the Phase-I/II hot loops stream over
//! contiguous. Because the slabs and ids match exactly, every algorithm
//! generic over [`GraphView`] produces bit-identical output on either
//! backend (the property tests in `tests/csr_equivalence.rs` enforce
//! this).
//!
//! Build one with [`GraphBuilder::build_csr`](crate::GraphBuilder::build_csr),
//! convert an existing graph with [`CsrGraph::from_weighted`], or load
//! the binary on-disk format with
//! [`GraphFile::read_streamed`](crate::GraphFile::read_streamed).

use crate::view::GraphView;
use crate::{EdgeId, Neighbor, VertexId, Weight, WeightedGraph};

/// A weighted undirected graph in compressed-sparse-row form with `u32`
/// offsets and struct-of-arrays edge storage.
///
/// # Examples
///
/// ```
/// use linkclust_graph::{CsrGraph, GraphBuilder, GraphView, VertexId};
///
/// let mut b = GraphBuilder::with_vertices(3);
/// b.add_edge(VertexId::new(0), VertexId::new(1), 1.0)?;
/// b.add_edge(VertexId::new(1), VertexId::new(2), 0.5)?;
/// let g: CsrGraph = b.build_csr();
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.degree(VertexId::new(1)), 2);
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CsrGraph {
    /// Slab boundaries: the adjacency of vertex `v` is
    /// `adj[offsets[v]..offsets[v + 1]]`. Length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbor slabs, each sorted by neighbor vertex id. Length `2m`.
    adj: Vec<Neighbor>,
    /// Canonical smaller endpoint per edge id.
    edge_source: Vec<u32>,
    /// Canonical larger endpoint per edge id.
    edge_target: Vec<u32>,
    /// Weight per edge id.
    edge_weight: Vec<f64>,
}

impl CsrGraph {
    /// Converts an adjacency-list graph, preserving slab order and edge
    /// ids exactly.
    #[must_use]
    pub fn from_weighted(g: &WeightedGraph) -> Self {
        let n = g.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut adj = Vec::with_capacity(2 * g.edge_count());
        for v in 0..n {
            adj.extend_from_slice(g.neighbors(VertexId::new(v)));
            offsets.push(adj.len() as u32);
        }
        let mut edge_source = Vec::with_capacity(g.edge_count());
        let mut edge_target = Vec::with_capacity(g.edge_count());
        let mut edge_weight = Vec::with_capacity(g.edge_count());
        for (_, e) in g.edges() {
            edge_source.push(e.source.index() as u32);
            edge_target.push(e.target.index() as u32);
            edge_weight.push(e.weight);
        }
        CsrGraph { offsets, adj, edge_source, edge_target, edge_weight }
    }

    /// Builds CSR storage from parallel edge arrays by counting sort —
    /// the same degree-count / prefix-sum / cursor-placement scheme as
    /// [`GraphBuilder::build`](crate::GraphBuilder::build), so the
    /// resulting slabs are identical to the adjacency-list backend's.
    ///
    /// Endpoints are canonicalized; edges are assumed validated (in
    /// range, no self-loops, no duplicates, positive finite weights).
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds `u32` capacity (`2m > u32::MAX`).
    pub(crate) fn from_edge_arrays(
        n: usize,
        source: &[u32],
        target: &[u32],
        weight: &[f64],
    ) -> Self {
        let m = source.len();
        debug_assert_eq!(target.len(), m);
        debug_assert_eq!(weight.len(), m);
        assert!(2 * m <= u32::MAX as usize, "graph exceeds u32 adjacency capacity");
        let mut edge_source = Vec::with_capacity(m);
        let mut edge_target = Vec::with_capacity(m);
        for (&u, &v) in source.iter().zip(target) {
            let (s, t) = if u < v { (u, v) } else { (v, u) };
            edge_source.push(s);
            edge_target.push(t);
        }

        let mut offsets = vec![0u32; n + 1];
        for (&s, &t) in edge_source.iter().zip(&edge_target) {
            offsets[s as usize + 1] += 1;
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let placeholder = Neighbor { vertex: VertexId::new(0), weight: 0.0, edge: EdgeId::new(0) };
        let mut adj = vec![placeholder; 2 * m];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (e, ((&s, &t), &w)) in edge_source.iter().zip(&edge_target).zip(weight).enumerate() {
            let edge = EdgeId::new(e);
            adj[cursor[s as usize] as usize] =
                Neighbor { vertex: VertexId::new(t as usize), weight: w, edge };
            cursor[s as usize] += 1;
            adj[cursor[t as usize] as usize] =
                Neighbor { vertex: VertexId::new(s as usize), weight: w, edge };
            cursor[t as usize] += 1;
        }
        for v in 0..n {
            adj[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable_by_key(|nb| nb.vertex);
        }
        CsrGraph { offsets, adj, edge_source, edge_target, edge_weight: weight.to_vec() }
    }

    /// The heap footprint of this graph in bytes (the number the scale
    /// benchmark reports per rung).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.adj.len() * std::mem::size_of::<Neighbor>()
            + self.edge_source.len() * std::mem::size_of::<u32>()
            + self.edge_target.len() * std::mem::size_of::<u32>()
            + self.edge_weight.len() * std::mem::size_of::<f64>()
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_weight.len()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[Neighbor] {
        let i = v.index();
        &self.adj[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let i = e.index();
        (VertexId::new(self.edge_source[i] as usize), VertexId::new(self.edge_target[i] as usize))
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.edge_weight[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{barabasi_albert, gnm, WeightMode};
    use crate::GraphBuilder;

    /// Both backends must agree on every accessor the trait exposes.
    fn assert_same_view<A: GraphView, B: GraphView>(a: &A, b: &B) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.vertices() {
            assert_eq!(a.degree(v), b.degree(v));
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        for e in 0..a.edge_count() {
            let e = EdgeId::new(e);
            assert_eq!(a.edge_endpoints(e), b.edge_endpoints(e));
            assert_eq!(a.edge_weight(e).to_bits(), b.edge_weight(e).to_bits());
        }
    }

    #[test]
    fn from_weighted_matches_adjacency_backend() {
        for seed in 0..3 {
            let g = gnm(60, 240, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            assert_same_view(&CsrGraph::from_weighted(&g), &g);
        }
        let g = barabasi_albert(80, 3, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 4);
        assert_same_view(&CsrGraph::from_weighted(&g), &g);
    }

    #[test]
    fn build_csr_matches_from_weighted() {
        let edges: &[(usize, usize, f64)] =
            &[(0, 1, 1.0), (3, 1, 2.0), (2, 4, 0.5), (1, 2, 1.5), (0, 4, 3.0)];
        let via_build = GraphBuilder::from_edges(5, edges).unwrap().build();
        let via_csr = GraphBuilder::from_edges(5, edges).unwrap().build_csr();
        assert_eq!(via_csr, CsrGraph::from_weighted(&via_build));
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = CsrGraph::from_weighted(&GraphBuilder::new().build());
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        let g = CsrGraph::from_weighted(&GraphBuilder::with_vertices(4).build());
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.degree(VertexId::new(3)), 0);
        assert!(g.neighbors(VertexId::new(0)).is_empty());
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap().build_csr();
        // 4 offsets + 4 adjacency entries + 2 edges of (src, tgt, weight)
        assert_eq!(g.memory_bytes(), 4 * 4 + 4 * std::mem::size_of::<Neighbor>() + 2 * 16);
    }
}
