//! Graphviz DOT export for debugging and figures.

use std::fmt::Write as _;

use crate::WeightedGraph;

/// Renders `g` in Graphviz DOT syntax.
///
/// Vertices are labelled `v0, v1, …`; edges carry their weight (three
/// significant digits) as a label.
///
/// # Examples
///
/// ```
/// use linkclust_graph::{GraphBuilder, dot::to_dot};
///
/// let g = GraphBuilder::from_edges(2, &[(0, 1, 0.5)])?.build();
/// let dot = to_dot(&g, "example");
/// assert!(dot.contains("graph example {"));
/// assert!(dot.contains("v0 -- v1"));
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[must_use]
pub fn to_dot(g: &WeightedGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in g.vertices() {
        let _ = writeln!(out, "    {v};");
    }
    for (_, e) in g.edges() {
        let _ = writeln!(out, "    {} -- {} [label=\"{:.3}\"];", e.source, e.target, e.weight);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.5)]).unwrap().build();
        let dot = to_dot(&g, "g");
        for tok in ["v0;", "v1;", "v2;", "v0 -- v1", "v1 -- v2", "2.500"] {
            assert!(dot.contains(tok), "missing {tok} in {dot}");
        }
    }

    #[test]
    fn dot_of_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(to_dot(&g, "empty"), "graph empty {\n}\n");
    }
}
