//! Error type for graph construction.

use std::error::Error;
use std::fmt;

use crate::VertexId;

/// Errors raised while building a [`WeightedGraph`](crate::WeightedGraph).
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint does not name an existing vertex.
    UnknownVertex {
        /// The offending vertex id.
        vertex: VertexId,
        /// The number of vertices currently in the builder.
        vertex_count: usize,
    },
    /// Both endpoints of the edge are the same vertex.
    SelfLoop {
        /// The vertex at both ends.
        vertex: VertexId,
    },
    /// The edge was already added (undirected edges are unique).
    DuplicateEdge {
        /// The smaller endpoint.
        source: VertexId,
        /// The larger endpoint.
        target: VertexId,
    },
    /// The weight is not finite or not positive.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::UnknownVertex { vertex, vertex_count } => {
                write!(
                    f,
                    "vertex {vertex} is out of bounds for a graph with {vertex_count} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not allowed")
            }
            GraphError::DuplicateEdge { source, target } => {
                write!(f, "edge ({source}, {target}) was already added")
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} must be finite and positive")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::SelfLoop { vertex: VertexId::new(1) };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::InvalidWeight { weight: f64::NAN };
        assert!(e.to_string().contains("finite"));
        let e = GraphError::UnknownVertex { vertex: VertexId::new(9), vertex_count: 3 };
        assert!(e.to_string().contains("out of bounds"));
        let e = GraphError::DuplicateEdge { source: VertexId::new(0), target: VertexId::new(1) };
        assert!(e.to_string().contains("already added"));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
