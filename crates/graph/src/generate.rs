//! Deterministic graph generators.
//!
//! The paper's appendix analyses the sweeping algorithm on k-regular and
//! complete graphs (Corollary 1); the generators here let the benchmark
//! harness instantiate exactly those families, plus standard random-graph
//! models for tests and property checks.
//!
//! All generators are deterministic given their seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{GraphBuilder, VertexId, Weight, WeightedGraph};

/// How edge weights are assigned by a generator.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum WeightMode {
    /// Every edge gets weight 1.0.
    #[default]
    Unit,
    /// Weights drawn uniformly from the half-open interval `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound (must be positive and finite).
        lo: Weight,
        /// Exclusive upper bound (must exceed `lo`).
        hi: Weight,
    },
}

impl WeightMode {
    fn sample(self, rng: &mut SmallRng) -> Weight {
        match self {
            WeightMode::Unit => 1.0,
            WeightMode::Uniform { lo, hi } => rng.gen_range(lo..hi),
        }
    }
}

/// Generates the complete graph `K_n`.
///
/// # Panics
///
/// Panics if `WeightMode::Uniform` bounds are invalid.
#[must_use]
pub fn complete(n: usize, weights: WeightMode, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n {
        for j in i + 1..n {
            let w = weights.sample(&mut rng);
            b.add_edge(VertexId::new(i), VertexId::new(j), w)
                .expect("complete generator produces valid edges");
        }
    }
    b.build()
}

/// Generates an Erdős–Rényi graph `G(n, p)`: each of the `C(n,2)` possible
/// edges is present independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
#[must_use]
pub fn erdos_renyi(n: usize, p: f64, weights: WeightMode, seed: u64) -> WeightedGraph {
    assert!((0.0..=1.0).contains(&p), "edge probability {p} must lie in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                let w = weights.sample(&mut rng);
                b.add_edge(VertexId::new(i), VertexId::new(j), w)
                    .expect("erdos_renyi generator produces valid edges");
            }
        }
    }
    b.build()
}

/// Generates a `G(n, m)` random graph: exactly `m` distinct edges chosen
/// uniformly among all vertex pairs.
///
/// # Panics
///
/// Panics if `m > C(n, 2)`.
#[must_use]
pub fn gnm(n: usize, m: usize, weights: WeightMode, seed: u64) -> WeightedGraph {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max, "requested {m} edges but only {max} vertex pairs exist");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    let mut added = 0usize;
    while added < m {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let (u, v) = (VertexId::new(i.min(j)), VertexId::new(i.max(j)));
        if b.contains_edge(u, v) {
            continue;
        }
        let w = weights.sample(&mut rng);
        b.add_edge(u, v, w).expect("gnm generator produces valid edges");
        added += 1;
    }
    b.build()
}

/// Generates a k-regular circulant graph: vertex `i` is adjacent to
/// `i ± 1, …, i ± k/2 (mod n)`, plus the antipodal vertex when `k` is odd
/// (which then requires `n` to be even).
///
/// This is the family the paper's appendix uses to show the sweeping
/// algorithm beats SLINK by a `√|V|` factor.
///
/// # Panics
///
/// Panics if `k >= n`, or if `k` is odd and `n` is odd (no such regular
/// graph exists).
#[must_use]
pub fn k_regular(n: usize, k: usize, weights: WeightMode, seed: u64) -> WeightedGraph {
    assert!(k < n, "degree {k} must be smaller than vertex count {n}");
    assert!(
        k.is_multiple_of(2) || n.is_multiple_of(2),
        "a {k}-regular graph on {n} vertices does not exist (both odd)"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n {
        for off in 1..=k / 2 {
            let j = (i + off) % n;
            let (u, v) = (VertexId::new(i.min(j)), VertexId::new(i.max(j)));
            if !b.contains_edge(u, v) {
                let w = weights.sample(&mut rng);
                b.add_edge(u, v, w).expect("k_regular generator produces valid edges");
            }
        }
        if k % 2 == 1 {
            let j = (i + n / 2) % n;
            let (u, v) = (VertexId::new(i.min(j)), VertexId::new(i.max(j)));
            if !b.contains_edge(u, v) {
                let w = weights.sample(&mut rng);
                b.add_edge(u, v, w).expect("k_regular generator produces valid edges");
            }
        }
    }
    b.build()
}

/// Generates a Barabási–Albert preferential-attachment graph: starts from
/// a small clique of `m + 1` vertices, then each new vertex attaches to
/// `m` existing vertices chosen proportionally to their degree.
///
/// Produces the heavy-tailed degree distributions typical of word
/// association networks (K₂ dominated by hub vertices).
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
#[must_use]
pub fn barabasi_albert(n: usize, m: usize, weights: WeightMode, seed: u64) -> WeightedGraph {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "vertex count {n} must exceed attachment count {m}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::new();
    for i in 0..=m {
        for j in i + 1..=m {
            let w = weights.sample(&mut rng);
            b.add_edge(VertexId::new(i), VertexId::new(j), w)
                .expect("barabasi_albert seed clique is valid");
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for i in m + 1..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != i && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * (m + 1) {
                // Fall back to uniform choice to guarantee termination on
                // adversarial degree distributions.
                for cand in 0..i {
                    if chosen.len() == m {
                        break;
                    }
                    if !chosen.contains(&cand) {
                        chosen.push(cand);
                    }
                }
            }
        }
        for t in chosen {
            let w = weights.sample(&mut rng);
            b.add_edge(VertexId::new(i), VertexId::new(t), w)
                .expect("barabasi_albert attachment edges are valid");
            endpoints.push(i);
            endpoints.push(t);
        }
    }
    b.build()
}

/// A planted-partition description returned by [`planted_partition`]:
/// the graph plus the ground-truth community of every vertex and edge.
#[derive(Clone, PartialEq, Debug)]
pub struct PlantedPartition {
    /// The generated graph.
    pub graph: WeightedGraph,
    /// Ground-truth community per vertex.
    pub vertex_community: Vec<u32>,
    /// Ground-truth community per edge; inter-community bridges get
    /// [`BRIDGE`](Self::BRIDGE).
    pub edge_community: Vec<u32>,
}

impl PlantedPartition {
    /// The label assigned to inter-community bridge edges.
    pub const BRIDGE: u32 = u32::MAX;
}

/// Generates a planted-partition graph: `communities` groups of `size`
/// vertices, where intra-community vertex pairs are joined with
/// probability `p_in` (strong weights in `[0.8, 1.2)`) and
/// inter-community pairs with probability `p_out` (weak weights in
/// `[0.05, 0.15)`). Every community is additionally wired as a spanning
/// ring so it is guaranteed connected.
///
/// The ground truth makes this the standard recovery benchmark for
/// community detection; link clustering should reassemble the
/// intra-community edge sets.
///
/// # Panics
///
/// Panics if `communities == 0`, `size < 3`, or the probabilities are
/// outside `[0, 1]`.
#[must_use]
pub fn planted_partition(
    communities: usize,
    size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> PlantedPartition {
    assert!(communities > 0, "need at least one community");
    assert!(size >= 3, "communities need at least 3 vertices");
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = communities * size;
    let mut b = GraphBuilder::with_vertices(n);
    let mut edge_community = Vec::new();
    let vertex_community: Vec<u32> = (0..n).map(|v| (v / size) as u32).collect();
    for c in 0..communities {
        let base = c * size;
        // spanning ring for guaranteed connectivity
        for i in 0..size {
            let (u, v) = (base + i, base + (i + 1) % size);
            let (u, v) = (u.min(v), u.max(v));
            if !b.contains_edge(VertexId::new(u), VertexId::new(v)) {
                b.add_edge(VertexId::new(u), VertexId::new(v), rng.gen_range(0.8..1.2))
                    .expect("ring edges are valid");
                edge_community.push(c as u32);
            }
        }
        for i in 0..size {
            for j in i + 1..size {
                let (u, v) = (base + i, base + j);
                if rng.gen_bool(p_in) && !b.contains_edge(VertexId::new(u), VertexId::new(v)) {
                    b.add_edge(VertexId::new(u), VertexId::new(v), rng.gen_range(0.8..1.2))
                        .expect("intra edges are valid");
                    edge_community.push(c as u32);
                }
            }
        }
    }
    for cu in 0..communities {
        for cv in cu + 1..communities {
            for i in 0..size {
                for j in 0..size {
                    let (u, v) = (cu * size + i, cv * size + j);
                    if rng.gen_bool(p_out) {
                        b.add_edge(VertexId::new(u), VertexId::new(v), rng.gen_range(0.05..0.15))
                            .expect("bridge edges are valid");
                        edge_community.push(PlantedPartition::BRIDGE);
                    }
                }
            }
        }
    }
    PlantedPartition { graph: b.build(), vertex_community, edge_community }
}

/// Generates an LFR-style planted-community benchmark graph in O(m):
/// community sizes are drawn from a truncated power law (exponent ≈ 2,
/// the regime of Lancichinetti–Fortunato–Radicchi benchmarks), each
/// community is wired as a spanning ring plus random intra pairs, and a
/// fraction `mu` of the edge budget becomes inter-community bridges —
/// `mu` is the LFR *mixing parameter*: 0 gives perfectly separated
/// communities, larger values blur them.
///
/// The total edge budget is `n · avg_degree / 2`, split `(1 − mu)` intra
/// / `mu` inter. Intra edges carry strong weights in `[0.8, 1.2)`,
/// bridges weak weights in `[0.05, 0.15)` and the
/// [`BRIDGE`](PlantedPartition::BRIDGE) label, mirroring
/// [`planted_partition`]. Unlike that generator — which enumerates all
/// `C(n, 2)` pairs and so cannot scale — this one samples pairs
/// directly, making million-edge instances practical for the scale
/// benchmark ladder.
///
/// The realized edge count is approximately the budget: sampling skips
/// duplicate pairs, and very dense communities may saturate before
/// reaching their intra quota.
///
/// # Panics
///
/// Panics if `n < 8`, `avg_degree < 2`, `avg_degree >= n`, or
/// `mu ∉ [0, 1)`.
#[must_use]
pub fn lfr_like(n: usize, avg_degree: usize, mu: f64, seed: u64) -> PlantedPartition {
    assert!(n >= 8, "LFR-style graphs need at least 8 vertices");
    assert!((2..n).contains(&avg_degree), "avg_degree {avg_degree} must lie in [2, {n})");
    assert!((0.0..1.0).contains(&mu), "mixing parameter {mu} must lie in [0, 1)");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Community sizes from a power law P(s) ∝ s⁻² truncated to
    // [min_size, max_size], via inverse-transform sampling.
    let min_size = (avg_degree / 2).clamp(4, n);
    let max_size = (min_size * 8).min(n);
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let u: f64 = rng.gen();
        let (a, b) = (min_size as f64, max_size as f64);
        let s = ((a * b / (b - u * (b - a))) as usize).clamp(min_size, max_size);
        let s = s.min(n - covered);
        sizes.push(s);
        covered += s;
    }
    // A trailing remnant smaller than min_size merges into its
    // predecessor so every community supports a ring.
    if sizes.len() > 1 && *sizes.last().expect("nonempty") < min_size {
        let last = sizes.pop().expect("nonempty");
        *sizes.last_mut().expect("nonempty") += last;
    }

    let mut base_of = Vec::with_capacity(sizes.len());
    let mut vertex_community = Vec::with_capacity(n);
    let mut base = 0usize;
    for (c, &s) in sizes.iter().enumerate() {
        base_of.push(base);
        vertex_community.extend(std::iter::repeat_n(c as u32, s));
        base += s;
    }

    let budget = n * avg_degree / 2;
    let inter_budget = (budget as f64 * mu).round() as usize;
    let intra_budget = budget - inter_budget;

    let mut b = GraphBuilder::with_vertices(n);
    let mut edge_community = Vec::with_capacity(budget);

    // Ring backbones first: guaranteed connectivity per community.
    for (c, &s) in sizes.iter().enumerate() {
        let base = base_of[c];
        for i in 0..s {
            let (u, v) = (base + i, base + (i + 1) % s);
            let (u, v) = (u.min(v), u.max(v));
            if !b.contains_edge(VertexId::new(u), VertexId::new(v)) {
                b.add_edge(VertexId::new(u), VertexId::new(v), rng.gen_range(0.8..1.2))
                    .expect("ring edges are valid");
                edge_community.push(c as u32);
            }
        }
    }

    // Random intra pairs, community chosen size-proportionally by
    // sampling a vertex uniformly and keeping its community. Rejection
    // guard bounds the loop on saturated (near-clique) communities.
    let mut intra = b.edge_count();
    let mut attempts = 0usize;
    let max_attempts = 8 * budget + 64;
    while intra < intra_budget && attempts < max_attempts {
        attempts += 1;
        let x = rng.gen_range(0..n);
        let c = vertex_community[x] as usize;
        let (base, s) = (base_of[c], sizes[c]);
        let y = base + rng.gen_range(0..s);
        if x == y {
            continue;
        }
        let (u, v) = (VertexId::new(x.min(y)), VertexId::new(x.max(y)));
        if b.contains_edge(u, v) {
            continue;
        }
        b.add_edge(u, v, rng.gen_range(0.8..1.2)).expect("intra edges are valid");
        edge_community.push(c as u32);
        intra += 1;
    }

    // Inter-community bridges.
    let mut inter = 0usize;
    attempts = 0;
    while inter < inter_budget && attempts < max_attempts {
        attempts += 1;
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if vertex_community[x] == vertex_community[y] {
            continue;
        }
        let (u, v) = (VertexId::new(x.min(y)), VertexId::new(x.max(y)));
        if b.contains_edge(u, v) {
            continue;
        }
        b.add_edge(u, v, rng.gen_range(0.05..0.15)).expect("bridge edges are valid");
        edge_community.push(PlantedPartition::BRIDGE);
        inter += 1;
    }

    PlantedPartition { graph: b.build(), vertex_community, edge_community }
}

/// An overlapping planted structure returned by [`overlapping_planted`]:
/// consecutive communities share `overlap` vertices, so ground-truth
/// communities are vertex *sets* (a cover), not a partition.
#[derive(Clone, PartialEq, Debug)]
pub struct OverlappingPlanted {
    /// The generated graph.
    pub graph: WeightedGraph,
    /// Ground-truth communities as vertex-index sets.
    pub communities: Vec<Vec<u32>>,
}

/// Generates `communities` overlapping cliques arranged in a chain:
/// community `c` owns `size` vertices, the last `overlap` of which are
/// also the first `overlap` vertices of community `c+1`. All
/// intra-community pairs are connected with strong weights.
///
/// This is the canonical workload for *link* clustering: the shared
/// vertices belong to two communities, which no vertex-partitioning
/// method can express but an edge partition can.
///
/// # Panics
///
/// Panics if `communities == 0`, `size < 3`, or `overlap >= size - 1`.
#[must_use]
pub fn overlapping_planted(
    communities: usize,
    size: usize,
    overlap: usize,
    seed: u64,
) -> OverlappingPlanted {
    assert!(communities > 0, "need at least one community");
    assert!(size >= 3, "communities need at least 3 vertices");
    assert!(overlap < size - 1, "overlap must leave at least 2 private vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let stride = size - overlap;
    let n = stride * communities + overlap;
    let mut b = GraphBuilder::with_vertices(n);
    let mut member_sets = Vec::with_capacity(communities);
    for c in 0..communities {
        let base = c * stride;
        let members: Vec<u32> = (base..base + size).map(|v| v as u32).collect();
        for i in 0..size {
            for j in i + 1..size {
                let (u, v) = (VertexId::new(base + i), VertexId::new(base + j));
                if !b.contains_edge(u, v) {
                    b.add_edge(u, v, rng.gen_range(0.8..1.2)).expect("clique edges are valid");
                }
            }
        }
        member_sets.push(members);
    }
    OverlappingPlanted { graph: b.build(), communities: member_sets }
}

/// Like [`overlapping_planted`], but each intra-community edge is
/// *rewired* with probability `mu` to a uniformly random non-member
/// endpoint (keeping its strong weight) — the mixing parameter of
/// LFR-style benchmarks. `mu = 0` reproduces [`overlapping_planted`];
/// larger `mu` makes recovery harder, letting tests measure graceful
/// degradation.
///
/// # Panics
///
/// Same conditions as [`overlapping_planted`], plus `mu ∉ [0, 1]`.
#[must_use]
pub fn overlapping_planted_with_mixing(
    communities: usize,
    size: usize,
    overlap: usize,
    mu: f64,
    seed: u64,
) -> OverlappingPlanted {
    assert!((0.0..=1.0).contains(&mu), "mixing parameter must lie in [0, 1]");
    let base = overlapping_planted(communities, size, overlap, seed);
    if mu == 0.0 {
        return base;
    }
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(0x5eed));
    let n = base.graph.vertex_count();
    let mut b = GraphBuilder::with_vertices(n);
    for (_, e) in base.graph.edges() {
        let (mut u, mut v) = (e.source, e.target);
        if rng.gen_bool(mu) {
            // Rewire v to a random vertex outside the edge.
            for _ in 0..16 {
                let cand = VertexId::new(rng.gen_range(0..n));
                if cand != u && cand != v && !b.contains_edge(u, cand) {
                    v = cand;
                    break;
                }
            }
        }
        if u > v {
            std::mem::swap(&mut u, &mut v);
        }
        if !b.contains_edge(u, v) {
            b.add_edge(u, v, e.weight).expect("rewired edges are valid");
        }
    }
    OverlappingPlanted { graph: b.build(), communities: base.communities }
}

/// Generates the cycle graph `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize, weights: WeightMode, seed: u64) -> WeightedGraph {
    assert!(n >= 3, "a ring needs at least 3 vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n {
        let j = (i + 1) % n;
        let w = weights.sample(&mut rng);
        b.add_edge(VertexId::new(i.min(j)), VertexId::new(i.max(j)), w)
            .expect("ring generator produces valid edges");
    }
    b.build()
}

/// Generates a Watts–Strogatz small-world graph: a `k`-regular ring
/// lattice whose edges are each rewired with probability `p` to a
/// uniformly random endpoint. `p = 0` gives a pure lattice (high
/// clustering coefficient, long paths); `p = 1` approaches a random
/// graph — a workload family with a *tunable* triangle density, the
/// structure link clustering keys on.
///
/// # Panics
///
/// Panics if `k` is odd or `k >= n`, or `p ∉ [0, 1]`.
#[must_use]
pub fn watts_strogatz(n: usize, k: usize, p: f64, weights: WeightMode, seed: u64) -> WeightedGraph {
    assert!(k.is_multiple_of(2), "lattice degree must be even");
    assert!(k < n, "degree {k} must be smaller than vertex count {n}");
    assert!((0.0..=1.0).contains(&p), "rewiring probability must lie in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n {
        for off in 1..=k / 2 {
            let mut j = (i + off) % n;
            if rng.gen_bool(p) {
                // Rewire to a random non-duplicate endpoint.
                for _ in 0..16 {
                    let cand = rng.gen_range(0..n);
                    if cand != i
                        && !b.contains_edge(VertexId::new(i.min(cand)), VertexId::new(i.max(cand)))
                    {
                        j = cand;
                        break;
                    }
                }
            }
            let (u, v) = (VertexId::new(i.min(j)), VertexId::new(i.max(j)));
            if u != v && !b.contains_edge(u, v) {
                let w = weights.sample(&mut rng);
                b.add_edge(u, v, w).expect("watts_strogatz edges are valid");
            }
        }
    }
    b.build()
}

/// Generates the path graph `P_n`.
///
/// # Panics
///
/// Never panics in practice: consecutive-index edges are always in
/// range, distinct, and unique.
#[must_use]
pub fn path(n: usize, weights: WeightMode, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n.saturating_sub(1) {
        let w = weights.sample(&mut rng);
        b.add_edge(VertexId::new(i), VertexId::new(i + 1), w)
            .expect("path generator produces valid edges");
    }
    b.build()
}

/// Generates the star graph `K_{1,n-1}` with vertex 0 as the hub.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn star(n: usize, weights: WeightMode, seed: u64) -> WeightedGraph {
    assert!(n >= 2, "a star needs at least 2 vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 1..n {
        let w = weights.sample(&mut rng);
        b.add_edge(VertexId::new(0), VertexId::new(i), w)
            .expect("star generator produces valid edges");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6, WeightMode::Unit, 0);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_regular_has_uniform_degree() {
        for (n, k) in [(10, 4), (12, 3), (8, 2), (20, 6)] {
            let g = k_regular(n, k, WeightMode::Unit, 1);
            for v in g.vertices() {
                assert_eq!(g.degree(v), k, "n={n} k={k} v={v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn k_regular_rejects_odd_odd() {
        let _ = k_regular(7, 3, WeightMode::Unit, 0);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(30, 100, WeightMode::Unit, 7);
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.vertex_count(), 30);
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, WeightMode::Unit, 3).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, WeightMode::Unit, 3).edge_count(), 45);
    }

    #[test]
    fn generators_are_deterministic() {
        let w = WeightMode::Uniform { lo: 0.5, hi: 2.0 };
        let a = gnm(25, 60, w, 42);
        let b = gnm(25, 60, w, 42);
        assert_eq!(a, b);
        let c = gnm(25, 60, w, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(100, 3, WeightMode::Unit, 5);
        assert_eq!(g.vertex_count(), 100);
        // clique C(4,2)=6 edges + 96 vertices * 3 attachments
        assert_eq!(g.edge_count(), 6 + 96 * 3);
        // Heavy tail: some hub should comfortably exceed the mean degree.
        let mean = 2.0 * g.edge_count() as f64 / 100.0;
        assert!(g.max_degree() as f64 > 2.0 * mean);
    }

    #[test]
    fn uniform_weights_in_range() {
        let g = gnm(20, 50, WeightMode::Uniform { lo: 0.25, hi: 0.75 }, 11);
        for (_, e) in g.edges() {
            assert!(e.weight >= 0.25 && e.weight < 0.75);
        }
    }

    #[test]
    fn ring_and_path_and_star() {
        let r = ring(5, WeightMode::Unit, 0);
        assert_eq!(r.edge_count(), 5);
        for v in r.vertices() {
            assert_eq!(r.degree(v), 2);
        }
        let p = path(5, WeightMode::Unit, 0);
        assert_eq!(p.edge_count(), 4);
        let s = star(5, WeightMode::Unit, 0);
        assert_eq!(s.degree(crate::VertexId::new(0)), 4);
    }

    #[test]
    fn planted_partition_ground_truth_is_consistent() {
        let p = planted_partition(4, 8, 0.8, 0.02, 9);
        assert_eq!(p.graph.vertex_count(), 32);
        assert_eq!(p.edge_community.len(), p.graph.edge_count());
        assert_eq!(p.vertex_community.len(), 32);
        // Intra edges connect same-community endpoints; bridges differ.
        for ((_, e), &c) in p.graph.edges().zip(&p.edge_community) {
            let (cu, cv) =
                (p.vertex_community[e.source.index()], p.vertex_community[e.target.index()]);
            if c == PlantedPartition::BRIDGE {
                assert_ne!(cu, cv);
                assert!(e.weight < 0.2, "bridges are weak");
            } else {
                assert_eq!(cu, cv);
                assert_eq!(cu, c);
                assert!(e.weight >= 0.8, "intra edges are strong");
            }
        }
    }

    #[test]
    fn planted_communities_are_connected() {
        use crate::algo::connected_components;
        let p = planted_partition(3, 6, 0.0, 0.0, 4); // rings only
        let labels = connected_components(&p.graph);
        // With p_out = 0 each community is exactly one component.
        for (v, &label) in labels.iter().enumerate() {
            assert_eq!(label, v / 6);
        }
    }

    #[test]
    fn lfr_ground_truth_is_consistent() {
        let p = lfr_like(200, 8, 0.2, 11);
        assert_eq!(p.graph.vertex_count(), 200);
        assert_eq!(p.vertex_community.len(), 200);
        assert_eq!(p.edge_community.len(), p.graph.edge_count());
        for ((_, e), &c) in p.graph.edges().zip(&p.edge_community) {
            let (cu, cv) =
                (p.vertex_community[e.source.index()], p.vertex_community[e.target.index()]);
            if c == PlantedPartition::BRIDGE {
                assert_ne!(cu, cv);
                assert!(e.weight < 0.2, "bridges are weak");
            } else {
                assert_eq!(cu, cv);
                assert_eq!(cu, c);
                assert!(e.weight >= 0.8, "intra edges are strong");
            }
        }
    }

    #[test]
    fn lfr_mixing_controls_bridge_fraction() {
        let clean = lfr_like(400, 10, 0.0, 3);
        assert!(clean.edge_community.iter().all(|&c| c != PlantedPartition::BRIDGE));
        let noisy = lfr_like(400, 10, 0.3, 3);
        let bridges =
            noisy.edge_community.iter().filter(|&&c| c == PlantedPartition::BRIDGE).count();
        let frac = bridges as f64 / noisy.edge_community.len() as f64;
        assert!((0.15..0.45).contains(&frac), "bridge fraction {frac} should track mu=0.3");
    }

    #[test]
    fn lfr_edge_budget_and_determinism() {
        let p = lfr_like(500, 12, 0.1, 8);
        let budget = 500 * 12 / 2;
        // Sampling may fall slightly short of the budget, never exceed
        // it by more than the ring backbones.
        assert!(p.graph.edge_count() >= budget / 2, "{} edges", p.graph.edge_count());
        assert!(p.graph.edge_count() <= budget + 500);
        let q = lfr_like(500, 12, 0.1, 8);
        assert_eq!(p, q);
        let r = lfr_like(500, 12, 0.1, 9);
        assert_ne!(p, r);
    }

    #[test]
    fn lfr_communities_are_connected_rings() {
        use crate::algo::connected_components;
        // mu = 0: every community is one component (ring backbone).
        let p = lfr_like(120, 6, 0.0, 5);
        let labels = connected_components(&p.graph);
        for (v, &label) in labels.iter().enumerate() {
            for (u, &other) in labels.iter().enumerate() {
                if p.vertex_community[v] == p.vertex_community[u] {
                    assert_eq!(label, other, "vertices {u} and {v} share a community");
                }
            }
        }
    }

    #[test]
    fn overlapping_planted_shares_vertices() {
        let p = overlapping_planted(3, 6, 2, 1);
        // stride 4: vertices 0..6, 4..10, 8..14 -> n = 14
        assert_eq!(p.graph.vertex_count(), 14);
        assert_eq!(p.communities.len(), 3);
        // communities 0 and 1 share vertices 4 and 5
        let c0: std::collections::HashSet<u32> = p.communities[0].iter().copied().collect();
        let c1: std::collections::HashSet<u32> = p.communities[1].iter().copied().collect();
        let shared: Vec<u32> = c0.intersection(&c1).copied().collect();
        assert_eq!(shared.len(), 2);
        // each community is a clique
        for members in &p.communities {
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    assert!(p.graph.has_edge(
                        crate::VertexId::new(u as usize),
                        crate::VertexId::new(v as usize)
                    ));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "private vertices")]
    fn overlapping_planted_rejects_excessive_overlap() {
        let _ = overlapping_planted(2, 4, 3, 0);
    }

    #[test]
    fn watts_strogatz_lattice_at_p_zero() {
        let g = watts_strogatz(20, 4, 0.0, WeightMode::Unit, 0);
        assert_eq!(g.edge_count(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        // Lattice has triangles (each vertex closes with its 2-hop ring
        // neighbors).
        assert!(crate::stats::count_triangles(&g) > 0);
    }

    #[test]
    fn watts_strogatz_rewiring_lowers_transitivity() {
        use crate::stats::transitivity;
        let lattice = watts_strogatz(200, 8, 0.0, WeightMode::Unit, 3);
        let random = watts_strogatz(200, 8, 1.0, WeightMode::Unit, 3);
        assert!(
            transitivity(&lattice) > 2.0 * transitivity(&random),
            "lattice {} vs rewired {}",
            transitivity(&lattice),
            transitivity(&random)
        );
    }

    #[test]
    fn mixing_zero_is_identity() {
        let a = overlapping_planted(3, 6, 1, 7);
        let b = overlapping_planted_with_mixing(3, 6, 1, 0.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn mixing_rewires_some_edges() {
        let clean = overlapping_planted(4, 8, 2, 3);
        let noisy = overlapping_planted_with_mixing(4, 8, 2, 0.3, 3);
        assert_eq!(clean.communities, noisy.communities);
        // Count intra-community edges in both; mixing must reduce them.
        let intra = |p: &OverlappingPlanted| -> usize {
            p.graph
                .edges()
                .filter(|(_, e)| {
                    p.communities.iter().any(|c| {
                        c.contains(&u32::from(e.source)) && c.contains(&u32::from(e.target))
                    })
                })
                .count()
        };
        assert!(intra(&noisy) < intra(&clean), "{} vs {}", intra(&noisy), intra(&clean));
    }

    #[test]
    fn invariant_on_random_graphs() {
        for seed in 0..5 {
            let g = gnm(40, 120, WeightMode::Unit, seed);
            assert!(GraphStats::compute(&g).invariant_holds());
        }
    }
}
