//! The immutable weighted undirected graph.

use crate::{EdgeId, VertexId, Weight};

/// An undirected edge with its endpoints and weight.
///
/// The invariant `source < target` is maintained so that every edge has a
/// single canonical representation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Edge {
    /// The smaller endpoint.
    pub source: VertexId,
    /// The larger endpoint.
    pub target: VertexId,
    /// The (finite, positive) weight.
    pub weight: Weight,
}

impl Edge {
    /// Returns the endpoint opposite to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    #[must_use]
    pub fn other(&self, v: VertexId) -> VertexId {
        if v == self.source {
            self.target
        } else if v == self.target {
            self.source
        } else {
            panic!("vertex {v} is not an endpoint of edge ({}, {})", self.source, self.target)
        }
    }

    /// Returns `true` if `v` is an endpoint of this edge.
    #[inline]
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        v == self.source || v == self.target
    }
}

/// An adjacency entry: a neighboring vertex, the connecting edge's weight,
/// and the connecting edge's id.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Neighbor {
    /// The adjacent vertex.
    pub vertex: VertexId,
    /// The weight of the connecting edge.
    pub weight: Weight,
    /// The id of the connecting edge.
    pub edge: EdgeId,
}

/// An immutable weighted undirected graph stored in compressed
/// adjacency-list form.
///
/// Built through [`GraphBuilder`](crate::GraphBuilder). Adjacency lists
/// are sorted by neighbor id. The edge-index map `I` of Algorithm 2 in
/// the paper is realized by [`EdgeIndex`](crate::EdgeIndex); see also
/// the [`GraphView`](crate::GraphView) trait, which this type and the
/// compact [`CsrGraph`](crate::CsrGraph) backend both implement.
///
/// # Examples
///
/// ```
/// use linkclust_graph::{EdgeIndex, GraphBuilder, VertexId};
///
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 0.5)])?.build();
/// let v1 = VertexId::new(1);
/// assert_eq!(g.degree(v1), 2);
/// let index = EdgeIndex::for_graph(&g);
/// assert!(index.edge_between(VertexId::new(0), VertexId::new(2)).is_none());
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WeightedGraph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) adj: Vec<Neighbor>,
    pub(crate) edges: Vec<Edge>,
}

impl WeightedGraph {
    /// Returns the number of vertices, `|V|`.
    #[inline]
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Returns the number of edges, `|E|`.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertex_count() == 0
    }

    /// Returns the degree of `v` (the number of incident edges).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Returns the sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: VertexId) -> &[Neighbor] {
        let i = v.index();
        &self.adj[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Returns the edge record for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Binary search over the smaller adjacency list —
    /// O(log min(d(u), d(v))).
    fn edge_lookup(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v || u.index() >= self.vertex_count() || v.index() >= self.vertex_count() {
            return None;
        }
        let (probe, key) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let list = self.neighbors(probe);
        list.binary_search_by(|n| n.vertex.cmp(&key)).ok().map(|i| list[i].edge)
    }

    /// Returns the id of the edge joining `u` and `v`, if any.
    ///
    /// Lookup is a binary search over the smaller adjacency list, so this
    /// costs O(log min(d(u), d(v))).
    #[deprecated(
        since = "0.2.0",
        note = "per-query scans are superseded in hot paths by a precomputed \
                `EdgeIndex`; for occasional lookups use the `GraphView` trait method"
    )]
    #[must_use]
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.edge_lookup(u, v)
    }

    /// Returns the weight of the edge joining `u` and `v`, if any.
    #[deprecated(
        since = "0.2.0",
        note = "per-query scans are superseded in hot paths by a precomputed \
                `EdgeIndex`; for occasional lookups use the `GraphView` trait method"
    )]
    #[must_use]
    pub fn weight_between(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.edge_lookup(u, v).map(|e| self.edge(e).weight)
    }

    /// Returns `true` if `u` and `v` are adjacent.
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_lookup(u, v).is_some()
    }

    /// Iterates over all vertex ids in increasing order.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone {
        (0..self.vertex_count()).map(VertexId::new)
    }

    /// Iterates over all edges in id order.
    #[must_use]
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter { inner: self.edges.iter().enumerate() }
    }

    /// Iterates over the adjacency of `v` (like [`neighbors`](Self::neighbors)
    /// but as an owning iterator type).
    #[must_use]
    pub fn neighbor_iter(&self, v: VertexId) -> NeighborIter<'_> {
        NeighborIter { inner: self.neighbors(v).iter() }
    }

    /// Returns the sum of all edge weights.
    #[must_use]
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Returns the maximum degree over all vertices (0 for an empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Returns the density `2|E| / (|V| (|V|-1))`, or 0.0 when `|V| < 2`.
    #[must_use]
    pub fn density(&self) -> f64 {
        let n = self.vertex_count();
        if n < 2 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
        }
    }

    /// Extracts the subgraph induced by `vertices` (duplicates ignored).
    /// Returns the new graph and the mapping from new vertex ids to the
    /// originals.
    ///
    /// # Panics
    ///
    /// Never panics in practice: remapped edges inherit validity from
    /// this graph (in range, distinct endpoints, no duplicates).
    #[must_use]
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (WeightedGraph, Vec<VertexId>) {
        let mut keep: Vec<VertexId> = vertices.to_vec();
        keep.sort_unstable();
        keep.dedup();
        let mut new_id = vec![u32::MAX; self.vertex_count()];
        for (i, v) in keep.iter().enumerate() {
            new_id[v.index()] = i as u32;
        }
        let mut b = crate::GraphBuilder::with_vertices(keep.len());
        for e in &self.edges {
            let (s, t) = (new_id[e.source.index()], new_id[e.target.index()]);
            if s != u32::MAX && t != u32::MAX {
                b.add_edge(VertexId::new(s as usize), VertexId::new(t as usize), e.weight)
                    .expect("induced edges are valid");
            }
        }
        (b.build(), keep)
    }

    /// The degree histogram: `histogram[d]` is the number of vertices of
    /// degree `d` (length `max_degree + 1`; empty for an empty graph).
    #[must_use]
    pub fn degree_histogram(&self) -> Vec<usize> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in self.vertices() {
            hist[self.degree(v)] += 1;
        }
        hist
    }
}

impl crate::GraphView for WeightedGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        WeightedGraph::vertex_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        WeightedGraph::edge_count(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        WeightedGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[Neighbor] {
        WeightedGraph::neighbors(self, v)
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let edge = self.edge(e);
        (edge.source, edge.target)
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.edge(e).weight
    }
}

/// Iterator over `(EdgeId, &Edge)` pairs, created by
/// [`WeightedGraph::edges`].
#[derive(Clone, Debug)]
pub struct EdgeIter<'a> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, Edge>>,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (EdgeId, &'a Edge);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(i, e)| (EdgeId::new(i), e))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}

/// Iterator over [`Neighbor`] entries, created by
/// [`WeightedGraph::neighbor_iter`].
#[derive(Clone, Debug)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, Neighbor>,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = &'a Neighbor;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
// The legacy per-query lookups stay covered until removal.
#[allow(deprecated)]
mod tests {
    use crate::{GraphBuilder, VertexId};

    fn triangle() -> crate::WeightedGraph {
        GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap().build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        let n0: Vec<_> = g.neighbors(VertexId::new(0)).iter().map(|n| n.vertex.index()).collect();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn edge_lookup_is_symmetric() {
        let g = triangle();
        let (a, b) = (VertexId::new(0), VertexId::new(2));
        assert_eq!(g.edge_between(a, b), g.edge_between(b, a));
        assert_eq!(g.weight_between(a, b), Some(3.0));
    }

    #[test]
    fn edge_lookup_misses() {
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0)]).unwrap().build();
        let (a, b) = (VertexId::new(2), VertexId::new(3));
        assert!(g.edge_between(a, b).is_none());
        assert!(g.edge_between(a, a).is_none());
        assert!(!g.has_edge(a, b));
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let (e0, edge) = g.edges().next().unwrap();
        assert_eq!(e0.index(), 0);
        assert_eq!(edge.other(edge.source), edge.target);
        assert_eq!(edge.other(edge.target), edge.source);
        assert!(edge.contains(edge.source));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_on_non_endpoint() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0)]).unwrap().build();
        let (_, edge) = g.edges().next().unwrap();
        let _ = edge.other(VertexId::new(2));
    }

    #[test]
    fn totals_and_density() {
        let g = triangle();
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
        assert!((g.density() - 1.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = GraphBuilder::from_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0), (0, 4, 5.0)],
        )
        .unwrap()
        .build();
        let keep = [VertexId::new(1), VertexId::new(2), VertexId::new(3)];
        let (sub, mapping) = g.induced_subgraph(&keep);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2); // (1,2) and (2,3)
        assert_eq!(mapping, keep);
        assert_eq!(sub.weight_between(VertexId::new(0), VertexId::new(1)), Some(2.0));
        // duplicates in the selection are ignored
        let (sub2, _) = g.induced_subgraph(&[keep[0], keep[0], keep[1], keep[2]]);
        assert_eq!(sub, sub2);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = triangle();
        assert_eq!(g.degree_histogram(), vec![0, 0, 3]);
        let empty = GraphBuilder::new().build();
        assert!(empty.degree_histogram().is_empty());
        let star =
            GraphBuilder::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]).unwrap().build();
        assert_eq!(star.degree_histogram(), vec![0, 3, 0, 1]);
    }

    #[test]
    fn edge_iter_is_exact() {
        let g = triangle();
        let it = g.edges();
        assert_eq!(it.len(), 3);
        assert_eq!(g.neighbor_iter(VertexId::new(1)).len(), 2);
    }
}
