//! Typed handles for vertices and edges.

use std::fmt;

/// Identifier of a vertex in a [`WeightedGraph`](crate::WeightedGraph).
///
/// Vertex ids are dense indices `0..vertex_count()` assigned in insertion
/// order by [`GraphBuilder::add_vertex`](crate::GraphBuilder::add_vertex).
///
/// # Examples
///
/// ```
/// use linkclust_graph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from a dense index.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        VertexId(index as u32)
    }

    /// Returns the dense index of this vertex.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        VertexId(value)
    }
}

impl From<VertexId> for u32 {
    fn from(value: VertexId) -> Self {
        value.0
    }
}

/// Identifier of an edge in a [`WeightedGraph`](crate::WeightedGraph).
///
/// Edge ids are dense indices `0..edge_count()` assigned in insertion
/// order. The sweeping algorithm of the paper clusters *edges*, so these
/// ids are the data points of link clustering.
///
/// # Examples
///
/// ```
/// use linkclust_graph::EdgeId;
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

impl From<EdgeId> for u32 {
    fn from(value: EdgeId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(9);
        assert_eq!(e.index(), 9);
        assert_eq!(u32::from(e), 9);
        assert_eq!(EdgeId::from(9u32), e);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VertexId::new(5).to_string(), "v5");
        assert_eq!(EdgeId::new(5).to_string(), "e5");
    }
}
