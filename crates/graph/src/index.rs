//! Precomputed O(1) edge lookup — the edge-index map `I` of the paper's
//! Algorithm 2, materialized.
//!
//! The sweep phases resolve two edges per (pair, common neighbor) event,
//! i.e. 2·K₂ lookups per run. Binary-searching an adjacency slab per
//! query costs O(log d) each and a pointer chase per probe step; the
//! [`EdgeIndex`] replaces that with a single open-addressed hash table
//! built once in O(|E|), keyed by the packed canonical endpoint pair.
//! The table stores the edge weight next to the id, so the Phase-I
//! adjacency correction needs no graph access either.

use crate::view::GraphView;
use crate::{EdgeId, VertexId, Weight};

/// Slot states: `EMPTY` never collides with a packed key because a
/// canonical pair has `source < target`, so the top half of a real key
/// is at most `u32::MAX - 1`.
const EMPTY: u64 = u64::MAX;

/// Load factor 7/8, as in the Phase-I flat accumulator.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// An immutable open-addressed map from canonical vertex pairs to edge
/// id and weight, built once per graph.
///
/// # Examples
///
/// ```
/// use linkclust_graph::{EdgeIndex, GraphBuilder, VertexId};
///
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 2.5), (1, 2, 1.0)])?.build();
/// let index = EdgeIndex::for_graph(&g);
/// let e = index.edge_between(VertexId::new(1), VertexId::new(0)).unwrap();
/// assert_eq!(e.index(), 0);
/// assert_eq!(index.weight_between(VertexId::new(0), VertexId::new(1)), Some(2.5));
/// assert!(index.edge_between(VertexId::new(0), VertexId::new(2)).is_none());
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    keys: Vec<u64>,
    ids: Vec<u32>,
    weights: Vec<f64>,
    mask: usize,
    len: usize,
}

/// Packs a canonical vertex pair into the table key.
#[inline]
fn pack(u: u32, v: u32) -> u64 {
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    (u64::from(lo) << 32) | u64::from(hi)
}

/// The 64-bit finalizer of MurmurHash3 — the same mixer the Phase-I flat
/// accumulator uses, so both tables share the well-tested probe behavior.
#[inline]
fn hash(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

impl EdgeIndex {
    /// Builds the index over every edge of `g` in O(|E|).
    #[must_use]
    pub fn for_graph<G: GraphView + ?Sized>(g: &G) -> Self {
        let m = g.edge_count();
        let slots = (m * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(16);
        let mut index = EdgeIndex {
            keys: vec![EMPTY; slots],
            ids: vec![0; slots],
            weights: vec![0.0; slots],
            mask: slots - 1,
            len: m,
        };
        for e in 0..m {
            let id = EdgeId::new(e);
            let (s, t) = g.edge_endpoints(id);
            // cast: vertex ids fit u32 by the GraphView contract (u32
            // CSR ids); packing two of them into the u64 key is lossless
            let key = pack(s.index() as u32, t.index() as u32);
            // cast: truncating the 64-bit hash to the slot index is the
            // point — the mask keeps only the table bits
            let mut slot = hash(key) as usize & index.mask;
            while index.keys[slot] != EMPTY {
                debug_assert_ne!(index.keys[slot], key, "duplicate edge in graph");
                slot = (slot + 1) & index.mask;
            }
            index.keys[slot] = key;
            index.ids[slot] = e as u32; // cast: e < m and m <= u32::MAX edges per GraphView
            index.weights[slot] = g.edge_weight(id);
        }
        index
    }

    /// The number of indexed edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the graph had no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut slot = hash(key) as usize & self.mask;
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(slot);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// The id of the edge joining `u` and `v`, if any — O(1) expected.
    #[inline]
    #[must_use]
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        self.find(pack(u.index() as u32, v.index() as u32))
            .map(|slot| EdgeId::new(self.ids[slot] as usize))
    }

    /// The weight of the edge joining `u` and `v`, if any — O(1)
    /// expected.
    #[inline]
    #[must_use]
    pub fn weight_between(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if u == v {
            return None;
        }
        self.find(pack(u.index() as u32, v.index() as u32)).map(|slot| self.weights[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{gnm, WeightMode};
    use crate::GraphBuilder;

    #[test]
    fn matches_binary_search_on_every_pair() {
        let g = gnm(40, 180, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 9);
        let index = EdgeIndex::for_graph(&g);
        assert_eq!(index.len(), g.edge_count());
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(index.edge_between(u, v), GraphView::edge_between(&g, u, v));
                assert_eq!(index.weight_between(u, v), GraphView::weight_between(&g, u, v));
            }
        }
    }

    #[test]
    fn empty_graph_yields_empty_index() {
        let g = GraphBuilder::new().build();
        let index = EdgeIndex::for_graph(&g);
        assert!(index.is_empty());
        assert_eq!(index.edge_between(VertexId::new(0), VertexId::new(1)), None);
    }

    #[test]
    fn self_pairs_never_match() {
        let g = gnm(10, 20, WeightMode::Unit, 3);
        let index = EdgeIndex::for_graph(&g);
        for v in g.vertices() {
            assert_eq!(index.edge_between(v, v), None);
        }
    }

    #[test]
    fn lookup_is_symmetric() {
        let g = GraphBuilder::from_edges(4, &[(0, 3, 1.5), (1, 2, 0.5)]).unwrap().build();
        let index = EdgeIndex::for_graph(&g);
        let (a, b) = (VertexId::new(3), VertexId::new(0));
        assert_eq!(index.edge_between(a, b), index.edge_between(b, a));
        assert_eq!(index.weight_between(a, b), Some(1.5));
    }
}
