//! Plain-text edge-list serialization.
//!
//! The interchange format used by most community-detection tooling: one
//! `u v weight` triple per line, `#`-prefixed comments, blank lines
//! ignored. Weights may be omitted (defaulting to 1.0).

use std::io::{BufRead, Write};

use crate::{GraphBuilder, GraphError, VertexId, WeightedGraph};

/// Errors raised while parsing an edge list.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseGraphError {
    /// An I/O failure from the underlying reader.
    Io(std::io::Error),
    /// A line that is not `u v [weight]`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A structurally invalid edge (self-loop, duplicate, bad weight).
    Graph {
        /// 1-based line number.
        line: usize,
        /// The underlying graph error.
        source: GraphError,
    },
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error while reading edge list: {e}"),
            ParseGraphError::Malformed { line, content } => {
                write!(f, "line {line} is not `u v [weight]`: {content:?}")
            }
            ParseGraphError::Graph { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Graph { source, .. } => Some(source),
            ParseGraphError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

/// Reads a weighted edge list. Vertex ids are dense non-negative
/// integers; the vertex count is `max id + 1`.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure, malformed lines, or
/// invalid edges.
///
/// # Examples
///
/// ```
/// use linkclust_graph::io::read_edge_list;
///
/// let text = "# a comment\n0 1 2.5\n1 2\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), linkclust_graph::io::ParseGraphError>(())
/// ```
pub fn read_edge_list<R: BufRead>(mut reader: R) -> Result<WeightedGraph, ParseGraphError> {
    // Streaming: one reused line buffer, edges added as they parse, so a
    // multi-GB edge list never sits in memory whole. The line counter
    // tracks *physical* lines, so errors report the original 1-based
    // line even past comments and blanks.
    let mut b = GraphBuilder::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(u), Some(v)) = (
            parts.next().and_then(|t| t.parse::<usize>().ok()),
            parts.next().and_then(|t| t.parse::<usize>().ok()),
        ) else {
            return Err(ParseGraphError::Malformed { line: lineno, content: trimmed.to_owned() });
        };
        let w = match parts.next() {
            None => 1.0,
            Some(t) => t.parse::<f64>().map_err(|_| ParseGraphError::Malformed {
                line: lineno,
                content: trimmed.to_owned(),
            })?,
        };
        if parts.next().is_some() {
            return Err(ParseGraphError::Malformed { line: lineno, content: trimmed.to_owned() });
        }
        // Vertex ids are dense; grow the builder on demand so edges are
        // validated (and rejected) as they stream past.
        let needed = u.max(v) + 1;
        if b.vertex_count() < needed {
            b.add_vertices(needed - b.vertex_count());
        }
        b.add_edge(VertexId::new(u), VertexId::new(v), w)
            .map_err(|source| ParseGraphError::Graph { line: lineno, source })?;
    }
    Ok(b.build())
}

/// Writes `g` as an edge list (`u v weight` per line, id order).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_edge_list<W: Write>(g: &WeightedGraph, mut writer: W) -> std::io::Result<()> {
    for (_, e) in g.edges() {
        writeln!(writer, "{} {} {}", e.source.index(), e.target.index(), e.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{gnm, WeightMode};

    #[test]
    fn roundtrip_preserves_graph() {
        let g = gnm(20, 50, WeightMode::Uniform { lo: 0.25, hi: 2.0 }, 8);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = read_edge_list("# header\n\n0 1\n# middle\n2 0 0.5\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(
            crate::GraphView::weight_between(&g, VertexId::new(0), VertexId::new(1)),
            Some(1.0)
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in ["0", "a b", "0 1 x", "0 1 1.0 extra"] {
            let err = read_edge_list(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, ParseGraphError::Malformed { line: 1, .. }), "{bad}");
        }
    }

    #[test]
    fn invalid_edges_are_rejected_with_line() {
        let err = read_edge_list("0 1\n1 1\n".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Graph { line, source } => {
                assert_eq!(line, 2);
                assert!(matches!(source, GraphError::SelfLoop { .. }));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn graph_error_line_numbers_survive_skipped_lines() {
        // Regression: the error loop used to enumerate the *filtered*
        // edge vector, so comments and blank lines shifted every
        // reported line. The self-loop here sits on line 5 of the input
        // but is only the second parsed edge.
        let text = "# header\n0 1\n\n# another comment\n2 2\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Graph { line, source } => {
                assert_eq!(line, 5, "must report the original line, not the edge index");
                assert!(matches!(source, GraphError::SelfLoop { .. }));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A duplicate edge after interleaved comments likewise reports
        // the physical line of the offending occurrence.
        let dup = "0 1 1.0\n# note\n\n1 0 2.0\n";
        let err = read_edge_list(dup.as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Graph { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert!(g.is_empty());
    }
}
