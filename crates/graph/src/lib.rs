//! Weighted undirected graph substrate for link clustering.
//!
//! This crate provides the graph representation that the link-clustering
//! algorithms of Yan (ICDCS 2017) operate on:
//!
//! * [`GraphView`] — the read-only access trait every algorithm is
//!   written against, implemented by both backends below.
//! * [`WeightedGraph`] — an immutable, adjacency-list weighted undirected
//!   graph with stable [`VertexId`]/[`EdgeId`] handles, constructed
//!   through [`GraphBuilder`].
//! * [`CsrGraph`] — the compact `u32`-offset CSR backend for
//!   million-edge workloads ([`GraphBuilder::build_csr`]), bit-identical
//!   to the adjacency-list backend under every [`GraphView`] algorithm.
//! * [`EdgeIndex`] — a precomputed O(1) edge-lookup table, replacing
//!   per-query adjacency scans in the clustering hot paths.
//! * [`GraphFile`] — the versioned binary on-disk format with
//!   chunked-streaming load/save ([`binfmt`]).
//! * [`stats`] — the incidence statistics the paper's complexity analysis
//!   is phrased in: K₁ (vertex pairs sharing a neighbor), K₂ (incident
//!   edge pairs) and K₃ (distinct edge pairs), plus density and degree
//!   summaries.
//! * [`generate`] — deterministic graph generators (Erdős–Rényi, complete,
//!   k-regular, Barabási–Albert, LFR-style planted communities, ring,
//!   star) used by the benchmarks to validate the asymptotic claims of
//!   the paper's appendix and to score clustering quality against ground
//!   truth.
//!
//! # Examples
//!
//! ```
//! use linkclust_graph::{GraphBuilder, stats::GraphStats};
//!
//! let mut b = GraphBuilder::new();
//! let (u, v, w) = (b.add_vertex(), b.add_vertex(), b.add_vertex());
//! b.add_edge(u, v, 1.0)?;
//! b.add_edge(v, w, 2.0)?;
//! let g = b.build();
//!
//! assert_eq!(g.vertex_count(), 3);
//! assert_eq!(g.edge_count(), 2);
//! let stats = GraphStats::compute(&g);
//! assert_eq!(stats.incident_edge_pairs, 1); // the two edges share v
//! # Ok::<(), linkclust_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod error;
mod graph;
mod ids;
mod index;
mod view;

pub mod algo;
pub mod binfmt;
pub mod dot;
pub mod generate;
pub mod io;
pub mod stats;

pub use binfmt::{BinGraphError, GraphFile};
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use graph::{Edge, EdgeIter, Neighbor, NeighborIter, WeightedGraph};
pub use ids::{EdgeId, VertexId};
pub use index::EdgeIndex;
pub use view::{GraphView, VertexIds};

/// Edge weights are finite, non-negative `f64` values.
pub type Weight = f64;
