//! Incidence statistics used by the paper's complexity analysis (§IV-C).
//!
//! The serial sweeping algorithm's cost is phrased in terms of three graph
//! properties:
//!
//! * **K₁** — the number of vertex pairs with at least one common neighbor
//!   (the number of keys in map `M` of Algorithm 1, i.e. the length of the
//!   sorted list `L`).
//! * **K₂** — the number of pairs of incident edges, `Σᵥ d(v)(d(v)−1)/2`
//!   (the number of `MERGE` calls in Algorithm 2).
//! * **K₃** — the number of pairs of distinct edges, `|E|(|E|−1)/2`
//!   (the number of similarity entries a generic clusterer must consider).
//!
//! For every graph `K₁ ≤ K₂ ≤ K₃` (Fig. 1 of the paper gives an example
//! with 7 < 16 < 28).

use std::collections::HashSet;

use crate::{EdgeId, GraphView, VertexId};

/// Summary statistics of a graph, computed through any [`GraphView`]
/// backend.
///
/// # Examples
///
/// ```
/// use linkclust_graph::{GraphBuilder, stats::GraphStats};
///
/// // A triangle: every pair of vertices shares the third as a neighbor.
/// let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])?.build();
/// let s = GraphStats::compute(&g);
/// assert_eq!(s.common_neighbor_pairs, 3); // K1
/// assert_eq!(s.incident_edge_pairs, 3);   // K2
/// assert_eq!(s.distinct_edge_pairs, 3);   // K3
/// # Ok::<(), linkclust_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GraphStats {
    /// Number of vertices, `|V|`.
    pub vertices: usize,
    /// Number of edges, `|E|`.
    pub edges: usize,
    /// Graph density, `2|E| / (|V|(|V|−1))`.
    pub density: f64,
    /// K₁ — vertex pairs with at least one common neighbor.
    pub common_neighbor_pairs: u64,
    /// K₂ — pairs of incident edges.
    pub incident_edge_pairs: u64,
    /// K₃ — pairs of distinct edges.
    pub distinct_edge_pairs: u64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Mean vertex degree, `2|E|/|V|`.
    pub mean_degree: f64,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    ///
    /// Runs in O(|V| + K₂) time and O(K₁) space (the dominant cost is
    /// enumerating neighbor pairs to count K₁ exactly).
    #[must_use]
    pub fn compute<G: GraphView + ?Sized>(g: &G) -> Self {
        GraphStats {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            density: g.density(),
            common_neighbor_pairs: count_common_neighbor_pairs(g),
            incident_edge_pairs: count_incident_edge_pairs(g),
            distinct_edge_pairs: count_distinct_edge_pairs(g),
            max_degree: g.max_degree(),
            mean_degree: if g.vertex_count() == 0 {
                0.0
            } else {
                2.0 * g.edge_count() as f64 / g.vertex_count() as f64
            },
        }
    }

    /// Returns `true` if the paper's invariant K₁ ≤ K₂ ≤ K₃ holds
    /// (it must, for every graph — exposed for assertion convenience).
    #[must_use]
    pub fn invariant_holds(&self) -> bool {
        self.common_neighbor_pairs <= self.incident_edge_pairs
            && self.incident_edge_pairs <= self.distinct_edge_pairs
    }
}

/// Counts K₁: the number of unordered vertex pairs `{u, w}` such that some
/// vertex `v` is adjacent to both.
///
/// This equals the number of keys of map `M` built by Algorithm 1.
#[must_use]
pub fn count_common_neighbor_pairs<G: GraphView + ?Sized>(g: &G) -> u64 {
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        for (i, a) in nbrs.iter().enumerate() {
            for b in &nbrs[i + 1..] {
                pairs.insert((a.vertex.into(), b.vertex.into()));
            }
        }
    }
    pairs.len() as u64
}

/// Counts K₂: the number of unordered pairs of distinct incident edges,
/// `Σᵥ d(v)(d(v)−1)/2`.
#[must_use]
pub fn count_incident_edge_pairs<G: GraphView + ?Sized>(g: &G) -> u64 {
    g.vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Counts K₃: the number of unordered pairs of distinct edges,
/// `|E|(|E|−1)/2`.
#[must_use]
pub fn count_distinct_edge_pairs<G: GraphView + ?Sized>(g: &G) -> u64 {
    let m = g.edge_count() as u64;
    m * (m.saturating_sub(1)) / 2
}

/// Counts the triangles in `g` (each counted once).
///
/// Uses the standard forward algorithm over sorted adjacency lists:
/// for each edge `(u, v)` with `u < v`, intersect the higher-id tails of
/// both neighbor lists. Runs in O(Σ d(v)²) = O(K₂) time — same order as
/// the similarity initialization.
///
/// Triangles are where link clustering's signal lives: an incident edge
/// pair closing a triangle has a large Tanimoto similarity.
#[must_use]
pub fn count_triangles<G: GraphView + ?Sized>(g: &G) -> u64 {
    let mut total = 0u64;
    for e in 0..g.edge_count() {
        let (u, v) = g.edge_endpoints(EdgeId::new(e));
        let (a, b) = (g.neighbors(u), g.neighbors(v));
        // Only count the third vertex above v to avoid double counting.
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].vertex.cmp(&b[j].vertex) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a[i].vertex > v {
                        total += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    total
}

/// The global clustering coefficient (transitivity):
/// `3 · triangles / open-and-closed-wedges` = `3·T / K₂`, or 0.0 when
/// the graph has no incident edge pairs.
#[must_use]
pub fn transitivity<G: GraphView + ?Sized>(g: &G) -> f64 {
    let k2 = count_incident_edge_pairs(g);
    if k2 == 0 {
        0.0
    } else {
        3.0 * count_triangles(g) as f64 / k2 as f64
    }
}

/// Returns the common neighbors of `u` and `v` in increasing id order.
///
/// Computed by merging the two sorted adjacency lists in
/// O(d(u) + d(v)) time.
#[must_use]
pub fn common_neighbors<G: GraphView + ?Sized>(g: &G, u: VertexId, v: VertexId) -> Vec<VertexId> {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].vertex.cmp(&b[j].vertex) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i].vertex);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, WeightedGraph};

    fn path(n: usize) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        GraphBuilder::from_edges(n, &edges).unwrap().build()
    }

    fn star(leaves: usize) -> WeightedGraph {
        let edges: Vec<_> = (1..=leaves).map(|i| (0, i, 1.0)).collect();
        GraphBuilder::from_edges(leaves + 1, &edges).unwrap().build()
    }

    #[test]
    fn path_statistics() {
        // P4: 0-1-2-3. K1: {0,2}, {1,3} => 2. K2: internal vertices 1, 2
        // each contribute 1 pair => 2. K3: 3 edges => 3 pairs.
        let s = GraphStats::compute(&path(4));
        assert_eq!(s.common_neighbor_pairs, 2);
        assert_eq!(s.incident_edge_pairs, 2);
        assert_eq!(s.distinct_edge_pairs, 3);
        assert!(s.invariant_holds());
    }

    #[test]
    fn star_statistics() {
        // K_{1,5}: center degree 5, K1 = C(5,2) = 10 pairs of leaves,
        // K2 = 10, K3 = 10.
        let s = GraphStats::compute(&star(5));
        assert_eq!(s.common_neighbor_pairs, 10);
        assert_eq!(s.incident_edge_pairs, 10);
        assert_eq!(s.distinct_edge_pairs, 10);
        assert_eq!(s.max_degree, 5);
    }

    #[test]
    fn disjoint_edges_have_no_incident_pairs() {
        // The paper notes K1 = K2 = 0 while |E| = |V|/2 for a perfect
        // matching.
        let g =
            GraphBuilder::from_edges(6, &[(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)]).unwrap().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.common_neighbor_pairs, 0);
        assert_eq!(s.incident_edge_pairs, 0);
        assert_eq!(s.distinct_edge_pairs, 3);
    }

    #[test]
    fn k1_counts_pairs_once_despite_multiple_witnesses() {
        // 4-cycle: 0-1-2-3-0. The pair {0,2} has two common neighbors
        // (1 and 3) but counts once; same for {1,3}.
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])
            .unwrap()
            .build();
        assert_eq!(count_common_neighbor_pairs(&g), 2);
        assert_eq!(count_incident_edge_pairs(&g), 4);
    }

    #[test]
    fn common_neighbors_merge() {
        let g = GraphBuilder::from_edges(
            5,
            &[(0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0), (1, 3, 1.0), (1, 4, 1.0)],
        )
        .unwrap()
        .build();
        let cn = common_neighbors(&g, VertexId::new(0), VertexId::new(1));
        let idx: Vec<_> = cn.iter().map(|v| v.index()).collect();
        assert_eq!(idx, vec![3, 4]);
    }

    #[test]
    fn triangle_counts() {
        use crate::generate::{complete, ring, WeightMode};
        // K4 has C(4,3) = 4 triangles; transitivity 1.
        let k4 = complete(4, WeightMode::Unit, 0);
        assert_eq!(count_triangles(&k4), 4);
        assert!((transitivity(&k4) - 1.0).abs() < 1e-12);
        // A ring has none.
        let c6 = ring(6, WeightMode::Unit, 0);
        assert_eq!(count_triangles(&c6), 0);
        assert_eq!(transitivity(&c6), 0.0);
        // One triangle with a pendant edge: T = 1, K2 = 5.
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
            .unwrap()
            .build();
        assert_eq!(count_triangles(&g), 1);
        assert!((transitivity(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn triangles_on_random_graph_match_brute_force() {
        use crate::generate::{gnm, WeightMode};
        let g = gnm(18, 60, WeightMode::Unit, 5);
        let mut brute = 0u64;
        let n = g.vertex_count();
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    let (va, vb, vc) = (VertexId::new(a), VertexId::new(b), VertexId::new(c));
                    if g.has_edge(va, vb) && g.has_edge(vb, vc) && g.has_edge(va, vc) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(count_triangles(&g), brute);
    }

    #[test]
    fn stats_identical_across_backends() {
        use crate::generate::{gnm, WeightMode};
        use crate::CsrGraph;
        let g = gnm(30, 90, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 21);
        let csr = CsrGraph::from_weighted(&g);
        assert_eq!(GraphStats::compute(&g), GraphStats::compute(&csr));
        assert_eq!(count_triangles(&g), count_triangles(&csr));
        assert_eq!(transitivity(&g).to_bits(), transitivity(&csr).to_bits());
    }

    #[test]
    fn empty_graph_statistics() {
        let s = GraphStats::compute(&GraphBuilder::new().build());
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.common_neighbor_pairs, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert!(s.invariant_holds());
    }
}
