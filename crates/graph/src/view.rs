//! The graph-access trait shared by every backend.
//!
//! [`GraphView`] abstracts the read-only access pattern the clustering
//! phases need — counts, contiguous [`Neighbor`] slabs, and edge
//! endpoint/weight lookup by id — so the algorithms in `linkclust-core`
//! and `linkclust-parallel` run unchanged over the adjacency-list
//! [`WeightedGraph`](crate::WeightedGraph) and the compact
//! [`CsrGraph`](crate::CsrGraph) backend. Both backends expose
//! *identical* id-sorted neighbor slabs and identical edge ids, so every
//! floating-point accumulation downstream visits operands in the same
//! order and the two backends produce bit-identical results.
//!
//! Hot paths should not call [`GraphView::edge_between`] per query; build
//! an [`EdgeIndex`](crate::EdgeIndex) once and look edges up in O(1).

use crate::{EdgeId, Neighbor, VertexId, Weight};

/// Read-only access to a weighted undirected graph.
///
/// Required methods are the primitive accessors every backend stores
/// directly; the provided methods derive the rest. Implementations must
/// keep each neighbor slab sorted by neighbor vertex id and must report
/// canonical endpoints (`source < target`) from
/// [`edge_endpoints`](Self::edge_endpoints).
///
/// # Panics
///
/// [`degree`](Self::degree), [`neighbors`](Self::neighbors),
/// [`edge_endpoints`](Self::edge_endpoints) and
/// [`edge_weight`](Self::edge_weight) panic when the id is out of
/// bounds, mirroring slice indexing.
pub trait GraphView {
    /// The number of vertices, `|V|`.
    fn vertex_count(&self) -> usize;

    /// The number of edges, `|E|`.
    fn edge_count(&self) -> usize;

    /// The degree of `v` (the number of incident edges).
    fn degree(&self, v: VertexId) -> usize;

    /// The adjacency slab of `v`, sorted by neighbor vertex id.
    fn neighbors(&self, v: VertexId) -> &[Neighbor];

    /// The canonical endpoints `(source, target)` of `e`, with
    /// `source < target`.
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId);

    /// The weight of edge `e`.
    fn edge_weight(&self, e: EdgeId) -> Weight;

    /// `true` if the graph has no vertices.
    fn is_empty(&self) -> bool {
        self.vertex_count() == 0
    }

    /// Iterates over all vertex ids in increasing order.
    fn vertices(&self) -> VertexIds {
        VertexIds { range: 0..self.vertex_count() }
    }

    /// The id of the edge joining `u` and `v`, if any, by binary search
    /// over the smaller adjacency slab — O(log min(d(u), d(v))).
    ///
    /// For repeated lookups build an [`EdgeIndex`](crate::EdgeIndex)
    /// instead.
    fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v || u.index() >= self.vertex_count() || v.index() >= self.vertex_count() {
            return None;
        }
        let (probe, key) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let list = self.neighbors(probe);
        list.binary_search_by(|n| n.vertex.cmp(&key)).ok().map(|i| list[i].edge)
    }

    /// The weight of the edge joining `u` and `v`, if any.
    fn weight_between(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.edge_between(u, v).map(|e| self.edge_weight(e))
    }

    /// `true` if `u` and `v` are adjacent.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The sum of all edge weights.
    fn total_weight(&self) -> Weight {
        (0..self.edge_count()).map(|e| self.edge_weight(EdgeId::new(e))).sum()
    }

    /// The maximum degree over all vertices (0 for an empty graph).
    fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Graph density, `2|E| / (|V|(|V|−1))` (0.0 for fewer than two
    /// vertices).
    fn density(&self) -> f64 {
        let n = self.vertex_count();
        if n < 2 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
        }
    }
}

/// Iterator over the vertex ids of a [`GraphView`], in increasing order.
#[derive(Clone, Debug)]
pub struct VertexIds {
    range: std::ops::Range<usize>,
}

impl Iterator for VertexIds {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        self.range.next().map(VertexId::new)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for VertexIds {}

impl DoubleEndedIterator for VertexIds {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.range.next_back().map(VertexId::new)
    }
}

impl<G: GraphView + ?Sized> GraphView for &G {
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    fn neighbors(&self, v: VertexId) -> &[Neighbor] {
        (**self).neighbors(v)
    }

    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        (**self).edge_endpoints(e)
    }

    fn edge_weight(&self, e: EdgeId) -> Weight {
        (**self).edge_weight(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> crate::WeightedGraph {
        GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 0.5)]).unwrap().build()
    }

    // Exercises the provided methods through the trait, not the inherent
    // shadows.
    fn probe<G: GraphView>(g: &G) {
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.vertices().count(), 3);
        assert_eq!(g.vertices().len(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!((g.total_weight() - 1.5).abs() < 1e-12);
        assert!((GraphView::density(g) - 2.0 / 3.0).abs() < 1e-12);
        let e = g.edge_between(VertexId::new(0), VertexId::new(1)).unwrap();
        assert_eq!(g.edge_endpoints(e), (VertexId::new(0), VertexId::new(1)));
        assert_eq!(g.edge_weight(e), 1.0);
        assert_eq!(g.weight_between(VertexId::new(2), VertexId::new(1)), Some(0.5));
        assert!(g.has_edge(VertexId::new(0), VertexId::new(1)));
        assert!(!g.has_edge(VertexId::new(0), VertexId::new(2)));
        assert!(g.edge_between(VertexId::new(1), VertexId::new(1)).is_none());
        assert!(g.edge_between(VertexId::new(0), VertexId::new(9)).is_none());
    }

    #[test]
    fn trait_methods_on_weighted_graph() {
        let g = path3();
        probe(&g);
        probe(&&g); // the blanket &G impl
    }

    #[test]
    fn vertex_ids_iterate_both_ways() {
        let g = path3();
        let fwd: Vec<usize> = g.vertices().map(|v| v.index()).collect();
        assert_eq!(fwd, vec![0, 1, 2]);
        let bwd: Vec<usize> = GraphView::vertices(&g).rev().map(|v| v.index()).collect();
        assert_eq!(bwd, vec![2, 1, 0]);
    }
}
