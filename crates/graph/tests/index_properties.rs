//! High-load-factor tests for [`EdgeIndex`]: the open-addressed table
//! sizes itself to a 7/8 maximum load (`slots = npot(m·8/7 + 1)`, at
//! least 16), so a 13-edge graph lands in a 16-slot table with only
//! three empty slots. These tests drive exactly that regime — probe
//! chains that wrap past the last slot to slot 0, absent-key lookups
//! that must terminate on a nearly-full table, and a property sweep at
//! maximum load proving every inserted pair stays findable regardless
//! of insertion interleaving.
//!
//! The seeding helpers mirror the table's `pack`/murmur3 finalizer so
//! keys can be aimed at the tail slots deterministically; if the
//! internal hash ever changes, the wraparound targeting degrades to an
//! ordinary high-load test (the correctness assertions hold either
//! way), and `tail_heavy_pairs` panics if it cannot find enough
//! tail-homed pairs — a loud signal to re-aim the mirror.

use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_graph::{EdgeIndex, GraphBuilder, GraphView, VertexId};
use proptest::prelude::*;

/// Mirror of the index's key packing: canonical pair, low id in the
/// high half.
fn pack(u: u32, v: u32) -> u64 {
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Mirror of the index's murmur3 64-bit finalizer.
fn hash(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// The home slot of pair `(u, v)` in a table of `slots` slots.
fn home_slot(u: u32, v: u32, slots: usize) -> usize {
    usize::try_from(hash(pack(u, v)) % slots as u64).expect("slot fits usize")
}

/// Picks `count` distinct pairs from a 64-vertex universe whose home
/// slots all sit in the last `tail` slots of a `slots`-slot table, so
/// inserting them forces probe chains across the index wraparound.
///
/// # Panics
///
/// If the universe cannot supply enough tail-homed pairs (would mean
/// the hash mirror no longer matches the implementation).
fn tail_heavy_pairs(count: usize, slots: usize, tail: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(count);
    for u in 0..64u32 {
        for v in (u + 1)..64u32 {
            if home_slot(u, v, slots) >= slots - tail {
                pairs.push((u as usize, v as usize));
                if pairs.len() == count {
                    return pairs;
                }
            }
        }
    }
    panic!("only {} of {count} tail-homed pairs found — hash mirror is stale", pairs.len());
}

/// The largest edge count whose table still has `slots` slots (load
/// factor 7/8): the next edge would round the table up to `2·slots`.
fn max_edges_for(slots: usize) -> usize {
    (slots - 1) * 7 / 8
}

#[test]
fn probe_chains_wrap_around_the_table_end() {
    // 13 edges -> 16 slots; all 13 keys homed in the last 4 slots, so
    // at least 9 insertions must wrap past slot 15 into slot 0.
    let m = max_edges_for(16);
    let pairs = tail_heavy_pairs(m, 16, 4);
    let edges: Vec<(usize, usize, f64)> =
        pairs.iter().enumerate().map(|(i, &(u, v))| (u, v, 1.0 + i as f64)).collect();
    let g = GraphBuilder::from_edges(64, &edges).expect("distinct canonical pairs").build();
    let index = EdgeIndex::for_graph(&g);
    assert_eq!(index.len(), m);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let (a, b) = (VertexId::new(u), VertexId::new(v));
        let found = index.edge_between(a, b);
        assert_eq!(found, GraphView::edge_between(&g, a, b), "pair {u}-{v}");
        assert!(found.is_some(), "pair {u}-{v} lost across the wraparound");
        // float-cmp: weights are small integers stored verbatim — exact
        assert_eq!(index.weight_between(b, a), Some(1.0 + i as f64));
    }
}

#[test]
fn absent_keys_terminate_on_a_maximally_loaded_table() {
    // A 16-slot table at its 13/16 design limit: absent-key probes may
    // walk long collision runs (including across the wraparound) and
    // must still hit one of the three EMPTY slots and stop.
    let m = max_edges_for(16);
    let pairs = tail_heavy_pairs(m, 16, 4);
    let edges: Vec<(usize, usize, f64)> = pairs.iter().map(|&(u, v)| (u, v, 1.0)).collect();
    let g = GraphBuilder::from_edges(64, &edges).expect("distinct canonical pairs").build();
    let index = EdgeIndex::for_graph(&g);
    let present: std::collections::BTreeSet<(usize, usize)> = pairs.into_iter().collect();
    for u in 0..64usize {
        for v in u..64usize {
            if u == v || present.contains(&(u, v)) {
                continue;
            }
            let (a, b) = (VertexId::new(u), VertexId::new(v));
            assert_eq!(index.edge_between(a, b), None, "phantom edge {u}-{v}");
            assert_eq!(index.weight_between(a, b), None, "phantom weight {u}-{v}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every inserted pair is findable (with the right id and weight)
    /// after interleaved inserts, with the table held at its maximum
    /// 7/8 load factor across several table sizes.
    #[test]
    fn every_pair_findable_at_max_load(
        slots_exp in 4u32..7,
        seed in 0u64..1000,
    ) {
        let slots = 1usize << slots_exp;
        let m = max_edges_for(slots);
        // Enough vertices that gnm can always place m distinct edges,
        // few enough that collisions stay likely.
        let n = (3 * m / 2).max(8);
        let g = gnm(n, m, WeightMode::Uniform { lo: 0.1, hi: 3.0 }, seed);
        prop_assert_eq!(g.edge_count(), m);
        let index = EdgeIndex::for_graph(&g);
        prop_assert_eq!(index.len(), m);
        for (id, e) in g.edges() {
            let found = index.edge_between(e.source, e.target);
            prop_assert_eq!(found, Some(id), "edge {}-{}", e.source.index(), e.target.index());
            // float-cmp: the stored weight is copied verbatim at build,
            // so lookup must return the identical bits
            prop_assert_eq!(index.weight_between(e.target, e.source), Some(e.weight));
        }
        // A band of absent pairs must stay absent at this load.
        for u in g.vertices() {
            for v in g.vertices() {
                if u != v && GraphView::edge_between(&g, u, v).is_none() {
                    prop_assert_eq!(index.edge_between(u, v), None);
                }
            }
        }
    }
}
