//! Property tests for the edge-list serialization: `write_edge_list` →
//! `read_edge_list` must round-trip exactly for any generated graph,
//! stay invariant under interleaved comments and blank lines, reject
//! trailing tokens, and report the *physical* 1-based line number in
//! every error — including when skipped lines precede the offender.

use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_graph::io::{read_edge_list, write_edge_list, ParseGraphError};
use linkclust_graph::GraphError;
use proptest::prelude::*;

/// Interleaves noise (comments and blank lines) into an edge-list text:
/// before each original line `i`, inserts a comment when bit `i` of
/// `mask` is set and a blank when bit `i` of `mask >> 16` is set.
fn sprinkle_noise(text: &str, mask: u32) -> String {
    let mut out = String::with_capacity(text.len() * 2);
    for (i, line) in text.lines().enumerate() {
        let bit = i % 16;
        if mask & (1 << bit) != 0 {
            out.push_str("# interleaved comment\n");
        }
        if (mask >> 16) & (1 << bit) != 0 {
            out.push('\n');
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_is_exact(
        n in 2usize..40,
        extra in 0usize..60,
        seed in 0u64..500,
        unit in proptest::bool::ANY,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let mode = if unit {
            WeightMode::Unit
        } else {
            WeightMode::Uniform { lo: 0.1, hi: 3.0 }
        };
        let g = gnm(n, m, mode, seed);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        // `{}` on f64 prints the shortest string that parses back to the
        // same value, so weights survive to the bit and the graphs are
        // structurally equal.
        prop_assert_eq!(&g, &back);
    }

    #[test]
    fn comments_and_blanks_do_not_change_the_graph(
        n in 2usize..30,
        extra in 0usize..40,
        seed in 0u64..500,
        mask in 0u32..=u32::MAX,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gnm(n, m, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let noisy = sprinkle_noise(std::str::from_utf8(&buf).unwrap(), mask);
        let back = read_edge_list(noisy.as_bytes()).unwrap();
        prop_assert_eq!(&g, &back);
    }

    #[test]
    fn trailing_tokens_are_rejected_at_the_right_line(
        comments_before in 0usize..6,
        good_edges in 0usize..4,
    ) {
        let mut text = String::new();
        let mut lines = 0usize;
        for _ in 0..comments_before {
            text.push_str("# preamble\n");
            lines += 1;
        }
        for i in 0..good_edges {
            text.push_str(&format!("{} {} 1.0\n", i, i + 1));
            lines += 1;
        }
        text.push_str("7 8 1.0 trailing\n");
        let offender = lines + 1;
        match read_edge_list(text.as_bytes()) {
            Err(ParseGraphError::Malformed { line, content }) => {
                prop_assert_eq!(line, offender);
                prop_assert!(content.contains("trailing"));
            }
            other => prop_assert!(false, "expected Malformed, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn graph_errors_report_physical_lines_past_noise(
        mask in 0u32..=u32::MAX,
        good_edges in 1usize..5,
    ) {
        // Build a valid prefix, sprinkle noise, then append a self-loop;
        // the reported line must be the self-loop's physical position in
        // the noisy text, not its index among parsed edges.
        let mut body = String::new();
        for i in 0..good_edges {
            body.push_str(&format!("{} {}\n", i, i + 1));
        }
        body.push_str("3 3\n");
        let noisy = sprinkle_noise(&body, mask);
        let offender = 1 + noisy
            .lines()
            .position(|l| l == "3 3")
            .expect("the self-loop line survives noise injection");
        match read_edge_list(noisy.as_bytes()) {
            Err(ParseGraphError::Graph { line, source }) => {
                prop_assert_eq!(line, offender);
                prop_assert!(matches!(source, GraphError::SelfLoop { .. }));
            }
            other => prop_assert!(false, "expected Graph error, got {:?}", other.map(|_| ())),
        }
    }
}

/// Non-property edge cases that pin exact messages and boundaries.
#[test]
fn malformed_variants_each_name_their_line() {
    for (text, bad_line) in [
        ("0 1\nx y\n", 2),
        ("# c\n0 1\n\n0 2 notaweight\n", 4),
        ("\n\n0\n", 3),
        ("0 1 1.0 2.0\n", 1),
    ] {
        match read_edge_list(text.as_bytes()) {
            Err(ParseGraphError::Malformed { line, .. }) => {
                assert_eq!(line, bad_line, "input {text:?}");
            }
            other => panic!("expected Malformed for {text:?}, got {:?}", other.map(|_| ())),
        }
    }
}
