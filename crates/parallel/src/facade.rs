//! Unified serial/parallel clustering facade.
//!
//! One builder covers the whole repo: `threads(1)` (the default) runs
//! the exact serial code path of [`linkclust_core::LinkClustering`] —
//! bit-for-bit identical dendrograms — while `threads(n)` for `n > 1`
//! dispatches Phase I, the sort of `L`, the fine-grained sweep (the
//! union-find engine of [`crate::ufsweep`], which reproduces the serial
//! dendrogram exactly), and (for the coarse sweep) the chunk processing
//! to the multi-threaded implementations in this crate. The paper's
//! coarse chunk pipeline remains available through
//! [`run_coarse`](LinkClustering::run_coarse) as the explicit
//! approximate mode.

use std::path::PathBuf;
use std::sync::Arc;

use linkclust_core::coarse::{coarse_sweep_instrumented, CoarseConfig, CoarseResult};
use linkclust_core::sweep::{sweep_with, EdgeOrder, SweepConfig};
use linkclust_core::telemetry::{Counter, Recorder, Telemetry, TelemetrySink, TraceCollector};
use linkclust_core::{ClusteringResult, ConfigError, PairSimilarities};
use linkclust_graph::GraphView;

use crate::init::compute_similarities_pooled;
use crate::pool::WorkerPool;
use crate::sort::parallel_into_sorted_pooled;
use crate::sweep::ParallelChunkProcessor;
use crate::ufsweep::ufsweep_with;

/// Which Phase-II engine [`LinkClustering::run`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SweepEngine {
    /// The default: the serial sweep at `threads == 1`, the exact
    /// parallel union-find engine ([`crate::ufsweep`]) at `threads >= 2`.
    #[default]
    Auto,
    /// Always the serial fine-grained sweep (Algorithm 2), even when
    /// init and sort run on many threads — the pre-ufsweep behavior,
    /// kept for A/B measurement.
    Serial,
    /// Always the union-find engine, even at `threads == 1` (useful for
    /// testing the engine without a pool fan-out).
    UnionFind,
}

/// End-to-end link clustering with a configurable thread count.
///
/// This is the facade the `linkclust` crate re-exports at its root. With
/// the default single thread every run takes exactly the serial code
/// path; raising [`threads`](Self::threads) switches Phase I, the sort,
/// and the coarse chunk processor to their parallel counterparts while
/// producing the same dendrogram.
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_parallel::LinkClustering;
///
/// let g = gnm(40, 160, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
/// let serial = LinkClustering::new().run(&g)?;
/// let parallel = LinkClustering::new().threads(4).run(&g)?;
/// assert_eq!(serial.edge_assignments(), parallel.edge_assignments());
/// # Ok::<(), linkclust_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LinkClustering {
    threads: usize,
    edge_order: Option<EdgeOrder>,
    min_similarity: Option<f64>,
    engine: SweepEngine,
    sink: TelemetrySink,
    tracer: Option<Arc<TraceCollector>>,
    trace_path: Option<PathBuf>,
}

impl Default for LinkClustering {
    fn default() -> Self {
        LinkClustering {
            threads: 1,
            edge_order: None,
            min_similarity: None,
            engine: SweepEngine::Auto,
            sink: TelemetrySink::Off,
            tracer: None,
            trace_path: None,
        }
    }
}

impl LinkClustering {
    /// Creates the default pipeline: one thread, insertion edge order,
    /// no similarity threshold, no telemetry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count. `1` (the default) is the exact
    /// serial pipeline; `0` is rejected by the run methods with
    /// [`ConfigError::ZeroThreads`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the edge-to-slot order of the sweep explicitly. An explicit
    /// setting takes priority over a default-valued
    /// [`CoarseConfig::edge_order`] in [`run_coarse`](Self::run_coarse)
    /// and conflicts with a non-default one.
    #[must_use]
    pub fn edge_order(mut self, order: EdgeOrder) -> Self {
        self.edge_order = Some(order);
        self
    }

    /// Stops sweeping below this similarity (cuts the dendrogram early).
    #[must_use]
    pub fn min_similarity(mut self, theta: f64) -> Self {
        self.min_similarity = Some(theta);
        self
    }

    /// Selects the Phase-II engine for [`run`](Self::run). The default
    /// ([`SweepEngine::Auto`]) uses the parallel union-find engine
    /// whenever `threads >= 2`; every engine produces the identical
    /// dendrogram, so this knob exists for A/B measurement and tests.
    #[must_use]
    pub fn sweep_engine(mut self, engine: SweepEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Collect phase timings and counters into a
    /// [`RunReport`](linkclust_core::telemetry::RunReport) attached to
    /// the result. Disabled by default — a disabled run skips all clock
    /// reads.
    #[must_use]
    pub fn stats(mut self, enabled: bool) -> Self {
        self.sink = if enabled { TelemetrySink::Stats } else { TelemetrySink::Off };
        self
    }

    /// Streams telemetry events into a caller-supplied [`Recorder`]
    /// instead of the built-in aggregation (the result then carries no
    /// report). Overrides [`stats`](Self::stats).
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.sink = TelemetrySink::Custom(recorder);
        self
    }

    /// Records a per-thread event trace of the run and writes it to
    /// `path` as Chrome trace-event JSON (open it in
    /// <https://ui.perfetto.dev> or `chrome://tracing`). Off by default;
    /// the traced run records phase spans and pool-task executions into
    /// lock-free per-thread ring buffers
    /// ([`TraceCollector`]), so the overhead is a
    /// clock read and three word-stores per event. If the write fails
    /// the run still completes and the run method returns
    /// [`ConfigError::TraceWrite`].
    #[must_use]
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Records the run's event trace into a caller-owned
    /// [`TraceCollector`] instead of (or in addition to) a
    /// [`trace`](Self::trace) file — drain it yourself with
    /// [`TraceCollector::events`] or
    /// [`TraceCollector::to_chrome_json`].
    #[must_use]
    pub fn tracer(mut self, collector: Arc<TraceCollector>) -> Self {
        self.tracer = Some(collector);
        self
    }

    fn check_threads(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(())
    }

    /// The run's trace collector: the caller-supplied one, a fresh one
    /// when only a [`trace`](Self::trace) path was requested, `None`
    /// when tracing is off.
    fn active_collector(&self) -> Option<Arc<TraceCollector>> {
        match (&self.tracer, &self.trace_path) {
            (Some(c), _) => Some(Arc::clone(c)),
            (None, Some(_)) => Some(Arc::new(TraceCollector::new())),
            (None, None) => None,
        }
    }

    /// Folds the collector's drop count into the telemetry (so reports
    /// carry `trace_events_dropped`) and writes the Chrome trace file if
    /// a path was configured.
    fn finish_trace(
        &self,
        collector: Option<&Arc<TraceCollector>>,
        telemetry: &Telemetry,
    ) -> Result<(), ConfigError> {
        let Some(collector) = collector else { return Ok(()) };
        let dropped = collector.dropped();
        if dropped > 0 {
            telemetry.add(Counter::TraceEventsDropped, dropped);
        }
        self.write_trace_file(Some(collector))
    }

    /// Writes the Chrome trace file if a path was configured (the
    /// drop-count accounting happens elsewhere — in the serial facade
    /// for `threads == 1` runs).
    fn write_trace_file(&self, collector: Option<&Arc<TraceCollector>>) -> Result<(), ConfigError> {
        let (Some(collector), Some(path)) = (collector, &self.trace_path) else { return Ok(()) };
        std::fs::write(path, collector.to_chrome_json()).map_err(|e| ConfigError::TraceWrite {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// The serial facade with this builder's settings (used for the
    /// exact `threads == 1` path). The collector is passed in because
    /// the parallel facade may have created one for a
    /// [`trace`](Self::trace) path.
    fn serial(&self, collector: Option<&Arc<TraceCollector>>) -> linkclust_core::LinkClustering {
        let mut serial = linkclust_core::LinkClustering::new();
        if let Some(order) = self.edge_order {
            serial = serial.edge_order(order);
        }
        if let Some(theta) = self.min_similarity {
            serial = serial.min_similarity(theta);
        }
        if let Some(c) = collector {
            serial = serial.tracer(Arc::clone(c));
        }
        match &self.sink {
            TelemetrySink::Off => serial,
            TelemetrySink::Stats => serial.stats(true),
            TelemetrySink::Custom(r) => serial.recorder(r.clone()),
        }
    }

    fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            edge_order: self.edge_order.unwrap_or_default(),
            min_similarity: self.min_similarity,
        }
    }

    fn reconcile_coarse(&self, mut config: CoarseConfig) -> Result<CoarseConfig, ConfigError> {
        config.validate()?;
        if let Some(facade_order) = self.edge_order {
            if config.edge_order != EdgeOrder::default() && config.edge_order != facade_order {
                return Err(ConfigError::EdgeOrderConflict);
            }
            config.edge_order = facade_order;
        }
        Ok(config)
    }

    /// One persistent worker pool plus the `Arc`-shared graph for a run:
    /// every parallel phase (init passes, sort, coarse chunks) submits
    /// tasks to this pool instead of spawning threads of its own.
    fn run_context<G>(&self, g: &G, telemetry: &Telemetry) -> (Arc<WorkerPool>, Arc<G>)
    where
        G: GraphView + Clone + Send + Sync + 'static,
    {
        let pool = Arc::new(WorkerPool::new(self.threads).with_telemetry(telemetry.clone()));
        (pool, Arc::new(g.clone()))
    }

    /// Phase I plus the sort: the list `L`, ready to sweep. Runs on the
    /// configured threads. Accepts any [`GraphView`] backend
    /// (adjacency-list or CSR) and yields bit-identical similarities
    /// from either.
    pub fn similarities<G>(&self, g: &G) -> Result<PairSimilarities, ConfigError>
    where
        G: GraphView + Clone + Send + Sync + 'static,
    {
        self.check_threads()?;
        let collector = self.active_collector();
        let (telemetry, _) = self.sink.build();
        let telemetry = match &collector {
            Some(c) => telemetry.with_tracer(Arc::clone(c)),
            None => telemetry,
        };
        let (pool, g) = self.run_context(g, &telemetry);
        let sims = Self::sorted_similarities(&pool, &g, &telemetry);
        self.finish_trace(collector.as_ref(), &telemetry)?;
        Ok(sims)
    }

    fn sorted_similarities<G>(
        pool: &WorkerPool,
        g: &Arc<G>,
        telemetry: &Telemetry,
    ) -> PairSimilarities
    where
        G: GraphView + Send + Sync + 'static,
    {
        let sims = compute_similarities_pooled(pool, g, telemetry);
        parallel_into_sorted_pooled(pool, sims, telemetry)
    }

    /// Runs both phases on `g`: initialization, sort, and the
    /// fine-grained sweep, all on the configured threads (the sweep runs
    /// the exact parallel union-find engine of [`crate::ufsweep`] unless
    /// [`sweep_engine`](Self::sweep_engine) says otherwise). Generic
    /// over the graph backend; adjacency-list and CSR inputs — and every
    /// engine — produce bit-identical dendrograms.
    pub fn run<G>(&self, g: &G) -> Result<ClusteringResult, ConfigError>
    where
        G: GraphView + Clone + Send + Sync + 'static,
    {
        self.check_threads()?;
        let collector = self.active_collector();
        if self.threads == 1 && self.engine != SweepEngine::UnionFind {
            let result = self.serial(collector.as_ref()).run(g);
            self.write_trace_file(collector.as_ref())?;
            return Ok(result);
        }
        let (telemetry, recorder) = self.sink.build();
        let telemetry = match &collector {
            Some(c) => telemetry.with_tracer(Arc::clone(c)),
            None => telemetry,
        };
        let (pool, g) = self.run_context(g, &telemetry);
        let sims = Arc::new(Self::sorted_similarities(&pool, &g, &telemetry));
        let output = match self.engine {
            SweepEngine::Serial => sweep_with(&*g, &sims, self.sweep_config(), &telemetry),
            SweepEngine::Auto | SweepEngine::UnionFind => {
                ufsweep_with(&*g, &sims, self.sweep_config(), &pool, &telemetry)
            }
        };
        self.finish_trace(collector.as_ref(), &telemetry)?;
        // All worker clones are gone once the pool tasks rendezvoused;
        // the unwrap only clones if a tracer/recorder still holds one.
        let sims = Arc::try_unwrap(sims).unwrap_or_else(|shared| (*shared).clone());
        Ok(ClusteringResult::from_parts(sims, output, recorder.map(|r| r.report())))
    }

    /// Runs Phase I and the **coarse-grained** Phase II (§V), with
    /// chunks fanned out over the configured threads (§VI-B).
    ///
    /// Validates `config` first and reconciles its
    /// [`edge_order`](CoarseConfig::edge_order) with the facade's: an
    /// order set through [`edge_order`](Self::edge_order) wins over a
    /// default-valued config, and a **conflicting** non-default config
    /// value is rejected with [`ConfigError::EdgeOrderConflict`] instead
    /// of silently overwritten.
    pub fn run_coarse<G>(&self, g: &G, config: CoarseConfig) -> Result<CoarseResult, ConfigError>
    where
        G: GraphView + Clone + Send + Sync + 'static,
    {
        self.check_threads()?;
        let collector = self.active_collector();
        if self.threads == 1 {
            let result = self.serial(collector.as_ref()).run_coarse(g, config)?;
            self.write_trace_file(collector.as_ref())?;
            return Ok(result);
        }
        let config = self.reconcile_coarse(config)?;
        let (telemetry, recorder) = self.sink.build();
        let telemetry = match &collector {
            Some(c) => telemetry.with_tracer(Arc::clone(c)),
            None => telemetry,
        };
        let (pool, g) = self.run_context(g, &telemetry);
        let sims = Arc::new(Self::sorted_similarities(&pool, &g, &telemetry));
        // The processor shares the run's pool, graph, and similarity
        // list, so chunk fan-out reuses the warm workers and reads the
        // entries zero-copy.
        let mut processor = ParallelChunkProcessor::new(self.threads)?
            .telemetry(telemetry.clone())
            .with_pool(pool)
            .shared_entries(Arc::clone(&sims));
        let result = coarse_sweep_instrumented(&*g, &sims, config, &mut processor, &telemetry);
        self.finish_trace(collector.as_ref(), &telemetry)?;
        Ok(match recorder {
            Some(r) => result.with_report(r.report()),
            None => result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::reference::canonical_labels;
    use linkclust_core::telemetry::{Counter, Gauge, Phase};
    use linkclust_graph::generate::{gnm, WeightMode};

    fn canon(labels: &[u32]) -> Vec<usize> {
        canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
    }

    #[test]
    fn one_thread_equals_serial_exactly() {
        for seed in 0..3 {
            let g = gnm(40, 170, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let serial = linkclust_core::LinkClustering::new().run(&g);
            let unified = LinkClustering::new().run(&g).unwrap();
            assert_eq!(serial.edge_assignments(), unified.edge_assignments());
            assert_eq!(serial.dendrogram(), unified.dendrogram());
        }
    }

    #[test]
    fn many_threads_match_serial_partition() {
        for seed in 0..3 {
            let g = gnm(40, 170, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let serial = LinkClustering::new().run(&g).unwrap();
            for threads in [2, 4] {
                let par = LinkClustering::new().threads(threads).run(&g).unwrap();
                assert_eq!(
                    canon(&serial.edge_assignments()),
                    canon(&par.edge_assignments()),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn zero_threads_is_rejected_not_panicking() {
        let g = gnm(10, 20, WeightMode::Unit, 0);
        let facade = LinkClustering::new().threads(0);
        assert_eq!(facade.run(&g).unwrap_err(), ConfigError::ZeroThreads);
        assert_eq!(
            facade.run_coarse(&g, CoarseConfig::default()).unwrap_err(),
            ConfigError::ZeroThreads
        );
        assert_eq!(facade.similarities(&g).unwrap_err(), ConfigError::ZeroThreads);
    }

    #[test]
    fn coarse_edge_order_conflict_is_rejected() {
        let g = gnm(15, 40, WeightMode::Unit, 1);
        let facade = LinkClustering::new().threads(2).edge_order(EdgeOrder::Shuffled { seed: 1 });
        let cfg =
            CoarseConfig { edge_order: EdgeOrder::Shuffled { seed: 2 }, ..Default::default() };
        assert_eq!(facade.run_coarse(&g, cfg).unwrap_err(), ConfigError::EdgeOrderConflict);
    }

    #[test]
    fn parallel_coarse_matches_serial_levels() {
        let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 7);
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let serial = LinkClustering::new().run_coarse(&g, cfg).unwrap();
        let par = LinkClustering::new().threads(3).run_coarse(&g, cfg).unwrap();
        let sl: Vec<_> = serial.levels().iter().map(|l| (l.level, l.clusters)).collect();
        let pl: Vec<_> = par.levels().iter().map(|l| (l.level, l.clusters)).collect();
        assert_eq!(sl, pl);
    }

    #[test]
    fn parallel_stats_report_covers_every_phase() {
        let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 2);
        let r = LinkClustering::new().threads(4).stats(true).run(&g).unwrap();
        let report = r.report().expect("stats(true) attaches a report");
        for phase in [Phase::InitPass1, Phase::InitPass2, Phase::InitShardFold, Phase::InitPass3] {
            assert_eq!(report.phase_calls(phase), 1, "{phase:?}");
        }
        assert_eq!(report.phase_calls(Phase::Sort), 1);
        assert_eq!(report.phase_calls(Phase::Sweep), 1);
        assert_eq!(report.counter(Counter::MergesApplied), r.dendrogram().merge_count());
        assert_eq!(
            report.counter(Counter::PairsK1),
            linkclust_graph::stats::count_common_neighbor_pairs(&g)
        );
        // Every (pair, common neighbor) record crossed the shard
        // exchange exactly once, so the routed volume is K₂.
        assert_eq!(
            report.counter(Counter::ShardRecords),
            linkclust_graph::stats::count_incident_edge_pairs(&g)
        );
        // Pass 2 reported a folded record count for every owner thread,
        // and every non-empty owner table sampled its occupancy.
        assert!(report.thread_items().len() >= 4);
        assert!(report.gauge(Gauge::TableOccupancy).count >= 1);
    }

    #[test]
    fn traced_run_produces_consistent_timeline_and_file() {
        use linkclust_core::telemetry::{trace, TraceCollector, TraceLabel};
        let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 9);
        // Caller-owned collector, parallel fine run.
        let collector = Arc::new(TraceCollector::new());
        let r = LinkClustering::new().threads(4).tracer(Arc::clone(&collector)).run(&g).unwrap();
        let serial = LinkClustering::new().run(&g).unwrap();
        assert_eq!(canon(&serial.edge_assignments()), canon(&r.edge_assignments()));
        let events = collector.events();
        trace::check_events(&events).unwrap();
        assert!(events.iter().any(|e| e.label == TraceLabel::Phase(Phase::InitPass1)));
        assert!(events.iter().any(|e| matches!(e.label, TraceLabel::PoolTask { .. })));
        trace::validate_json(&collector.to_chrome_json()).unwrap();
        // .trace(path): the file lands on disk and is well-formed.
        let dir = std::env::temp_dir().join("linkclust-facade-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let _ = LinkClustering::new().threads(2).trace(&path).run_coarse(&g, cfg).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        trace::validate_json(&text).unwrap();
        assert!(text.contains("\"ph\":\"X\""));
        // threads(1) traces through the serial path too.
        let _ = LinkClustering::new().trace(&path).run(&g).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        trace::validate_json(&text).unwrap();
        assert!(text.contains("\"name\":\"sweep\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_write_failure_is_reported_not_panicking() {
        let g = gnm(15, 40, WeightMode::Unit, 1);
        let err = LinkClustering::new()
            .threads(2)
            .trace("/nonexistent-dir-for-trace-test/trace.json")
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, ConfigError::TraceWrite { .. }), "got {err:?}");
    }

    #[test]
    fn parallel_coarse_stats_count_chunks() {
        let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 4);
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let r = LinkClustering::new().threads(4).stats(true).run_coarse(&g, cfg).unwrap();
        let report = r.report().expect("report attached");
        assert!(report.counter(Counter::ChunksProcessed) > 0);
        assert!(report.phase_calls(Phase::CoarseEpoch) > 0);
        assert_eq!(report.counter(Counter::MergesApplied), r.dendrogram().merge_count());
    }
}
