//! Parallel initialization phase (§VI-A, with a sharded pass 2).
//!
//! The three passes of Algorithm 1:
//!
//! 1. **Pass 1** — vertices are partitioned into `T` disjoint contiguous
//!    sets; each thread fills its slice of `H₁`/`H₂`.
//! 2. **Pass 2** — owner-sharded accumulation, replacing the paper's
//!    per-thread maps + O(K₁·log T) hierarchical map merge:
//!    * *produce* — each thread scans its vertex range and routes one
//!      `(packed pair, w·w, common neighbor)` record per neighbor pair
//!      into a per-`(producer, owner)` buffer, where the **owner** of a
//!      pair is the thread whose vertex range contains the pair's first
//!      (smaller) vertex;
//!    * *fold* — each owner thread folds exactly the buffers addressed
//!      to it (taken by move — no copy, no intermediate map) into a flat
//!      arena-backed [`FlatPairAccumulator`], in producer order.
//!      Because producer ranges ascend and each
//!      producer scans its vertices in ascending order, every pair's
//!      contributions arrive in exactly the serial order — the folded
//!      sums are **bit-identical** to the serial pass, not merely close.
//!
//!    Ownership by first-vertex range makes each owner's key-sorted
//!    output a contiguous slab of the global key order, so the shards
//!    concatenate into the deterministic entry list with no merge step
//!    at all.
//! 3. **Pass 3** — the key-sorted entry vector is split into disjoint
//!    contiguous ranges; each thread applies the adjacency correction
//!    and final similarity to its own range.
//!
//! All passes execute on the persistent [`WorkerPool`]: the facade
//! spawns one pool per run and shares it with the sort and the coarse
//! sweep ([`compute_similarities_pooled`]); the standalone entry points
//! spin up a transient pool of their own. The historical
//! hierarchical-map-merge implementation is preserved as an A/B baseline
//! in `linkclust-bench` (`bench::mapmerge`).

use std::sync::Arc;

use linkclust_core::flatacc::{pack_pair, FlatPairAccumulator};
use linkclust_core::init::{
    entries_into_similarities, finalize_entries, vertex_norms_range, RawPairEntry, VertexNorms,
};
use linkclust_core::telemetry::{Counter, Gauge, Phase, Telemetry};
use linkclust_core::PairSimilarities;
use linkclust_graph::{EdgeIndex, GraphView, VertexId};

use crate::pool::{partition_ranges, Task, WorkerPool};

/// One routed pass-2 record: a pair key packed by
/// [`pack_pair`], the weight product `w_vi·w_vj`, and the common
/// neighbor `v` that produced it.
#[derive(Clone, Copy, Debug)]
struct ShardRecord {
    key: u64,
    w: f64,
    v: u32,
}

/// Scans the vertex `range` and routes one record per neighbor pair into
/// a per-owner buffer. `starts` holds the ascending start offsets of the
/// owner ranges. A cheap O(Σd) pre-count sizes every buffer **exactly**
/// — ownership is skewed on power-law graphs (hub vertices have small
/// ids, so low ranges own most pairs), and an even `records/owners`
/// split would make the hot owner's buffer regrow repeatedly.
fn produce_shard_records<G: GraphView + ?Sized>(
    g: &G,
    range: std::ops::Range<usize>,
    starts: &[usize],
) -> Vec<Vec<ShardRecord>> {
    let owners = starts.len();
    let mut counts = vec![0usize; owners];
    for i in range.clone() {
        let nbrs = g.neighbors(VertexId::new(i));
        for (a, x) in nbrs.iter().enumerate() {
            let owner = starts.partition_point(|&s| s <= u32::from(x.vertex) as usize) - 1;
            counts[owner] += nbrs.len() - a - 1;
        }
    }
    let mut bufs: Vec<Vec<ShardRecord>> = counts.into_iter().map(Vec::with_capacity).collect();
    for i in range {
        let v = VertexId::new(i);
        let nbrs = g.neighbors(v);
        for (a, x) in nbrs.iter().enumerate() {
            let first = u32::from(x.vertex);
            // Adjacency lists are sorted, so `x.vertex` is the smaller
            // endpoint of every pair it opens — one owner lookup serves
            // the whole inner loop.
            let owner = starts.partition_point(|&s| s <= first as usize) - 1;
            let buf = &mut bufs[owner];
            for y in &nbrs[a + 1..] {
                buf.push(ShardRecord {
                    key: pack_pair(first, u32::from(y.vertex)),
                    w: x.weight * y.weight,
                    v: i as u32,
                });
            }
        }
    }
    bufs
}

/// Folds one owner's shard — the record buffers every producer routed to
/// it, in producer order — into a flat accumulator and materializes the
/// owner's slab of the key-sorted entry list. Returns the slab plus the
/// accumulator's final table occupancy (for the telemetry gauge).
fn fold_shard(bufs: Vec<Vec<ShardRecord>>) -> (Vec<RawPairEntry>, f64) {
    let records: usize = bufs.iter().map(Vec::len).sum();
    let mut acc = FlatPairAccumulator::with_capacity(records, records);
    for buf in bufs {
        for rec in buf {
            acc.record(rec.key, rec.w, rec.v);
        }
    }
    let occupancy = acc.occupancy();
    (acc.into_sorted_entries(), occupancy)
}

/// Computes the pair similarities of Phase I using `threads` worker
/// threads. The result is **bit-identical** to
/// [`compute_similarities`](linkclust_core::init::compute_similarities):
/// the owner fold replays every pair's contributions in the serial scan
/// order (producer ranges ascend; each producer scans ascending), so
/// even the floating-point association matches.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// Accepts any [`GraphView`] backend; both backends expose identical
/// neighbor slabs, so the CSR result is bit-identical to the
/// adjacency-list result too.
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_parallel::compute_similarities_parallel;
///
/// let g = gnm(30, 90, WeightMode::Unit, 1);
/// let sims = compute_similarities_parallel(&g, 4);
/// assert_eq!(sims.len() as u64, linkclust_graph::stats::count_common_neighbor_pairs(&g));
/// ```
#[must_use]
pub fn compute_similarities_parallel<G>(g: &G, threads: usize) -> PairSimilarities
where
    G: GraphView + Clone + Send + Sync + 'static,
{
    compute_similarities_parallel_with(g, threads, &Telemetry::disabled())
}

/// [`compute_similarities_parallel`] with phase-level telemetry: each
/// pass runs under its own span (the owner fold of pass 2 gets a
/// separate [`Phase::InitShardFold`] span), the K₁/K₂ counters and the
/// shard-exchange record volume ([`Counter::ShardRecords`]) are
/// recorded, each owner's folded record count feeds the per-thread item
/// counts for load-imbalance analysis, and every owner table's final
/// load factor is sampled into [`Gauge::TableOccupancy`].
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn compute_similarities_parallel_with<G>(
    g: &G,
    threads: usize,
    telemetry: &Telemetry,
) -> PairSimilarities
where
    G: GraphView + Clone + Send + Sync + 'static,
{
    assert!(threads > 0, "need at least one thread");
    let pool = WorkerPool::new(threads).with_telemetry(telemetry.clone());
    compute_similarities_pooled(&pool, &Arc::new(g.clone()), telemetry)
}

/// Phase I on a caller-supplied [`WorkerPool`] — the variant the facade
/// uses so one pool serves the whole run (init, sort, and sweep). The
/// graph is shared with the workers via `Arc`, so the only per-run copy
/// is whatever the caller paid to build it.
#[must_use]
pub fn compute_similarities_pooled<G>(
    pool: &WorkerPool,
    g: &Arc<G>,
    telemetry: &Telemetry,
) -> PairSimilarities
where
    G: GraphView + Send + Sync + 'static,
{
    let threads = pool.threads();
    let n = g.vertex_count();

    // Pass 1: per-range vertex norms, concatenated in range order.
    let ranges = partition_ranges(n, threads);
    let mut norms = VertexNorms { h1: Vec::with_capacity(n), h2: Vec::with_capacity(n) };
    {
        let _span = telemetry.span(Phase::InitPass1);
        let g = Arc::clone(g);
        let parts = pool.run_on_ranges(ranges.clone(), move |r| vertex_norms_range(&*g, r));
        for part in parts {
            norms.h1.extend(part.h1);
            norms.h2.extend(part.h2);
        }
    }

    // Pass 2, step 1 (produce): each producer scans its vertex range and
    // routes records into per-(producer, owner) buffers. The owner of a
    // pair is the thread whose range holds the pair's first vertex.
    let starts: Arc<Vec<usize>> = Arc::new(ranges.iter().map(|r| r.start).collect());
    let produced: Vec<Vec<Vec<ShardRecord>>> = {
        let _span = telemetry.span(Phase::InitPass2);
        let g = Arc::clone(g);
        let starts = Arc::clone(&starts);
        pool.run_on_ranges(ranges, move |r| produce_shard_records(&*g, r, &starts))
    };

    // Transpose: hand every owner exactly its buffers, by move, in
    // producer order — the fold then replays each pair's contributions
    // in the serial scan order, so the sums are bit-identical to the
    // serial pass. No cross-thread map merge exists anymore.
    let owners = starts.len();
    let mut shards: Vec<Vec<Vec<ShardRecord>>> =
        (0..owners).map(|_| Vec::with_capacity(produced.len())).collect();
    for bufs in produced {
        for (owner, buf) in bufs.into_iter().enumerate() {
            shards[owner].push(buf);
        }
    }
    let mut total_records = 0u64;
    for (owner, shard) in shards.iter().enumerate() {
        let records: u64 = shard.iter().map(|b| b.len() as u64).sum();
        telemetry.thread_items(owner, records);
        total_records += records;
    }
    telemetry.add(Counter::ShardRecords, total_records);

    // Pass 2, step 2 (fold): each owner folds its shard into a flat
    // accumulator. Owner slabs are contiguous in the global key order
    // (ownership follows the first vertex), so concatenating them in
    // owner order *is* the deterministic key-sorted entry list.
    let folded: Vec<(Vec<RawPairEntry>, f64)> = {
        let _span = telemetry.span(Phase::InitShardFold);
        let tasks: Vec<Task<(Vec<RawPairEntry>, f64)>> = shards
            .into_iter()
            .map(|shard| Box::new(move || fold_shard(shard)) as Task<(Vec<RawPairEntry>, f64)>)
            .collect();
        pool.run_tasks(tasks)
    };
    let mut entries = Vec::with_capacity(folded.iter().map(|(e, _)| e.len()).sum());
    for (slab, occupancy) in folded {
        if !slab.is_empty() {
            telemetry.observe(Gauge::TableOccupancy, occupancy);
        }
        entries.extend(slab);
    }
    telemetry.add(Counter::PairsK1, entries.len() as u64);

    // Pass 3: finalize disjoint entry ranges in parallel. The entry
    // vector is carved into owned chunks (tasks need `'static` data),
    // finalized on the pool, and stitched back together in order. One
    // O(m) edge index serves every chunk — the adjacency correction is
    // then an O(1) probe per entry instead of an O(degree) scan.
    let total = entries.len();
    let chunk = total.div_ceil(threads).max(1);
    {
        let _span = telemetry.span(Phase::InitPass3);
        let norms = Arc::new(norms);
        let index = Arc::new(EdgeIndex::for_graph(&**g));
        let bounds = partition_ranges(total, total.div_ceil(chunk).max(1));
        let mut chunks: Vec<Vec<RawPairEntry>> = Vec::with_capacity(bounds.len());
        for range in bounds.into_iter().rev() {
            chunks.push(entries.split_off(range.start));
        }
        chunks.reverse();
        let tasks: Vec<Task<Vec<RawPairEntry>>> = chunks
            .into_iter()
            .map(|mut slice| {
                let index = Arc::clone(&index);
                let norms = Arc::clone(&norms);
                Box::new(move || {
                    finalize_entries(&index, &norms, &mut slice);
                    slice
                }) as Task<Vec<RawPairEntry>>
            })
            .collect();
        entries = Vec::with_capacity(total);
        for mut done in pool.run_tasks(tasks) {
            entries.append(&mut done);
        }
    }
    let sims = entries_into_similarities(entries);
    telemetry.add(Counter::IncidentPairsK2, sims.incident_pair_count());
    sims
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};
    use linkclust_graph::GraphBuilder;

    #[test]
    fn matches_serial_exactly() {
        for seed in 0..4 {
            let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let serial = compute_similarities(&g);
            for threads in [1, 2, 3, 4, 7] {
                let par = compute_similarities_parallel(&g, threads);
                assert_eq!(par.len(), serial.len(), "seed {seed} threads {threads}");
                let mut se: Vec<_> = serial.entries().to_vec();
                let mut pe: Vec<_> = par.entries().to_vec();
                se.sort_by_key(|e| e.pair);
                pe.sort_by_key(|e| e.pair);
                for (a, b) in se.iter().zip(&pe) {
                    assert_eq!(a.pair, b.pair);
                    assert_eq!(a.common_neighbors, b.common_neighbors);
                    // The owner fold replays the serial accumulation
                    // order, so scores match to the bit.
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "score mismatch at {}: {} vs {}",
                        a.pair,
                        a.score,
                        b.score
                    );
                }
            }
        }
    }

    #[test]
    fn csr_backend_matches_adjacency_backend_bit_for_bit() {
        let g = gnm(60, 260, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let csr = linkclust_graph::CsrGraph::from_weighted(&g);
        for threads in [1, 2, 4] {
            let adj = compute_similarities_parallel(&g, threads);
            let via_csr = compute_similarities_parallel(&csr, threads);
            assert_eq!(adj.entries(), via_csr.entries(), "threads {threads}");
        }
    }

    #[test]
    fn pooled_entry_point_matches_standalone() {
        let g = gnm(40, 160, WeightMode::Uniform { lo: 0.3, hi: 1.5 }, 5);
        let standalone = compute_similarities_parallel(&g, 4);
        let pool = WorkerPool::new(4);
        let shared = Arc::new(g);
        // The same pool serves repeated runs.
        for _ in 0..3 {
            let pooled = compute_similarities_pooled(&pool, &shared, &Telemetry::disabled());
            assert_eq!(standalone.entries(), pooled.entries());
        }
    }

    #[test]
    fn power_law_graph_matches_serial() {
        let g = barabasi_albert(150, 4, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 2);
        let serial = compute_similarities(&g);
        let par = compute_similarities_parallel(&g, 6);
        assert_eq!(serial.len(), par.len());
        assert_eq!(serial.incident_pair_count(), par.incident_pair_count());
    }

    #[test]
    fn single_thread_is_serial() {
        let g = gnm(20, 50, WeightMode::Unit, 9);
        let a = compute_similarities(&g);
        let b = compute_similarities_parallel(&g, 1);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn more_threads_than_vertices() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap().build();
        let sims = compute_similarities_parallel(&g, 16);
        assert_eq!(sims.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let sims = compute_similarities_parallel(&g, 4);
        assert!(sims.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let g = GraphBuilder::new().build();
        let _ = compute_similarities_parallel(&g, 0);
    }
}
