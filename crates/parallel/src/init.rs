//! Parallel initialization phase (§VI-A).
//!
//! The three passes of Algorithm 1, each parallelized as the paper
//! prescribes:
//!
//! 1. **Pass 1** — vertices are partitioned into `T` disjoint contiguous
//!    sets; each thread fills its slice of `H₁`/`H₂`.
//! 2. **Pass 2** — each thread accumulates its own pair map over its
//!    vertex set (no sharing), then the `T` maps are merged pairwise in a
//!    hierarchical reduction until at most three remain, which a single
//!    thread folds.
//! 3. **Pass 3** — the key-sorted entry vector is split into disjoint
//!    contiguous ranges (equivalently: partitioned by first vertex); each
//!    thread applies the adjacency correction and final similarity to its
//!    own range.
//!
//! All three passes execute on the persistent [`WorkerPool`]: the facade
//! spawns one pool per run and shares it with the sort and the coarse
//! sweep ([`compute_similarities_pooled`]); the standalone entry points
//! spin up a transient pool of their own.

use std::sync::Arc;

use linkclust_core::init::{
    accumulate_pairs, entries_into_similarities, finalize_entries, vertex_norms_range,
    RawPairEntry, VertexNorms,
};
use linkclust_core::telemetry::{Counter, Phase, Telemetry};
use linkclust_core::PairSimilarities;
use linkclust_graph::{VertexId, WeightedGraph};

use crate::pool::{partition_ranges, Task, WorkerPool};

/// Computes the pair similarities of Phase I using `threads` worker
/// threads. The result is identical (up to floating-point association,
/// which the per-vertex accumulation order keeps deterministic) to
/// [`compute_similarities`](linkclust_core::init::compute_similarities).
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_parallel::compute_similarities_parallel;
///
/// let g = gnm(30, 90, WeightMode::Unit, 1);
/// let sims = compute_similarities_parallel(&g, 4);
/// assert_eq!(sims.len() as u64, linkclust_graph::stats::count_common_neighbor_pairs(&g));
/// ```
#[must_use]
pub fn compute_similarities_parallel(g: &WeightedGraph, threads: usize) -> PairSimilarities {
    compute_similarities_parallel_with(g, threads, &Telemetry::disabled())
}

/// [`compute_similarities_parallel`] with phase-level telemetry: each
/// pass runs under its own span (the map merge of pass 2 gets a separate
/// [`Phase::InitMapMerge`] span), the K₁/K₂ counters are recorded, and
/// every worker's pass-2 pair-map size feeds the per-thread item counts
/// for load-imbalance analysis.
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn compute_similarities_parallel_with(
    g: &WeightedGraph,
    threads: usize,
    telemetry: &Telemetry,
) -> PairSimilarities {
    assert!(threads > 0, "need at least one thread");
    let pool = WorkerPool::new(threads).with_telemetry(telemetry.clone());
    compute_similarities_pooled(&pool, &Arc::new(g.clone()), telemetry)
}

/// Phase I on a caller-supplied [`WorkerPool`] — the variant the facade
/// uses so one pool serves the whole run (init, sort, and sweep). The
/// graph is shared with the workers via `Arc`, so the only per-run copy
/// is whatever the caller paid to build it.
#[must_use]
pub fn compute_similarities_pooled(
    pool: &WorkerPool,
    g: &Arc<WeightedGraph>,
    telemetry: &Telemetry,
) -> PairSimilarities {
    let threads = pool.threads();
    let n = g.vertex_count();

    // Pass 1: per-range vertex norms, concatenated in range order.
    let ranges = partition_ranges(n, threads);
    let mut norms = VertexNorms { h1: Vec::with_capacity(n), h2: Vec::with_capacity(n) };
    {
        let _span = telemetry.span(Phase::InitPass1);
        let g = Arc::clone(g);
        let parts = pool.run_on_ranges(ranges.clone(), move |r| vertex_norms_range(&g, r));
        for part in parts {
            norms.h1.extend(part.h1);
            norms.h2.extend(part.h2);
        }
    }

    // Pass 2, step 1: per-thread pair maps over disjoint vertex sets.
    let maps = {
        let _span = telemetry.span(Phase::InitPass2);
        let g = Arc::clone(g);
        pool.run_on_ranges(ranges, move |r| accumulate_pairs(&g, r.map(VertexId::new)))
    };
    for (thread, map) in maps.iter().enumerate() {
        telemetry.thread_items(thread, map.len() as u64);
    }
    // Pass 2, step 2: hierarchical pairwise merge.
    let acc = {
        let _span = telemetry.span(Phase::InitMapMerge);
        pool.reduce(maps, |mut a, b| {
            a.merge(b);
            a
        })
        .unwrap_or_default()
    };
    telemetry.add(Counter::PairsK1, acc.len() as u64);

    // Pass 3: finalize disjoint entry ranges in parallel. The entry
    // vector is carved into owned chunks (tasks need `'static` data),
    // finalized on the pool, and stitched back together in order.
    let mut entries = acc.into_sorted_entries();
    let total = entries.len();
    let chunk = total.div_ceil(threads).max(1);
    {
        let _span = telemetry.span(Phase::InitPass3);
        let norms = Arc::new(norms);
        let bounds = partition_ranges(total, total.div_ceil(chunk).max(1));
        let mut chunks: Vec<Vec<RawPairEntry>> = Vec::with_capacity(bounds.len());
        for range in bounds.into_iter().rev() {
            chunks.push(entries.split_off(range.start));
        }
        chunks.reverse();
        let tasks: Vec<Task<Vec<RawPairEntry>>> = chunks
            .into_iter()
            .map(|mut slice| {
                let g = Arc::clone(g);
                let norms = Arc::clone(&norms);
                Box::new(move || {
                    finalize_entries(&g, &norms, &mut slice);
                    slice
                }) as Task<Vec<RawPairEntry>>
            })
            .collect();
        entries = Vec::with_capacity(total);
        for mut done in pool.run_tasks(tasks) {
            entries.append(&mut done);
        }
    }
    let sims = entries_into_similarities(entries);
    telemetry.add(Counter::IncidentPairsK2, sims.incident_pair_count());
    sims
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};
    use linkclust_graph::GraphBuilder;

    #[test]
    fn matches_serial_exactly() {
        for seed in 0..4 {
            let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let serial = compute_similarities(&g);
            for threads in [1, 2, 3, 4, 7] {
                let par = compute_similarities_parallel(&g, threads);
                assert_eq!(par.len(), serial.len(), "seed {seed} threads {threads}");
                let mut se: Vec<_> = serial.entries().to_vec();
                let mut pe: Vec<_> = par.entries().to_vec();
                se.sort_by_key(|e| e.pair);
                pe.sort_by_key(|e| e.pair);
                for (a, b) in se.iter().zip(&pe) {
                    assert_eq!(a.pair, b.pair);
                    assert_eq!(a.common_neighbors, b.common_neighbors);
                    assert!(
                        (a.score - b.score).abs() < 1e-12,
                        "score mismatch at {}: {} vs {}",
                        a.pair,
                        a.score,
                        b.score
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_entry_point_matches_standalone() {
        let g = gnm(40, 160, WeightMode::Uniform { lo: 0.3, hi: 1.5 }, 5);
        let standalone = compute_similarities_parallel(&g, 4);
        let pool = WorkerPool::new(4);
        let shared = Arc::new(g);
        // The same pool serves repeated runs.
        for _ in 0..3 {
            let pooled = compute_similarities_pooled(&pool, &shared, &Telemetry::disabled());
            assert_eq!(standalone.entries(), pooled.entries());
        }
    }

    #[test]
    fn power_law_graph_matches_serial() {
        let g = barabasi_albert(150, 4, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 2);
        let serial = compute_similarities(&g);
        let par = compute_similarities_parallel(&g, 6);
        assert_eq!(serial.len(), par.len());
        assert_eq!(serial.incident_pair_count(), par.incident_pair_count());
    }

    #[test]
    fn single_thread_is_serial() {
        let g = gnm(20, 50, WeightMode::Unit, 9);
        let a = compute_similarities(&g);
        let b = compute_similarities_parallel(&g, 1);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn more_threads_than_vertices() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap().build();
        let sims = compute_similarities_parallel(&g, 16);
        assert_eq!(sims.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let sims = compute_similarities_parallel(&g, 4);
        assert!(sims.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let g = GraphBuilder::new().build();
        let _ = compute_similarities_parallel(&g, 0);
    }
}
