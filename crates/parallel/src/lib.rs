//! Multi-threaded link clustering (§VI of the paper).
//!
//! Parallelizes both phases of the serial algorithm on shared-memory
//! multi-core machines:
//!
//! * **Initialization** ([`init`]) — the three passes of Algorithm 1:
//!   vertex ranges in parallel (pass 1), owner-sharded accumulation into
//!   flat arena-backed tables — producers route records to the owner of
//!   each pair's first vertex; no cross-thread map merge (pass 2) — and
//!   disjoint entry ranges (pass 3).
//! * **Sweeping** ([`sweep`]) — each coarse-grained chunk is partitioned
//!   across `T` threads, each merging into its own copy of the cluster
//!   array `C`; the copies are then combined pairwise ([`merge`]) with
//!   the corrected chain-union scheme (the paper devotes §VI-B to why the
//!   naive scheme is flawed — both schemes are implemented here, and the
//!   flaw is reproduced in a test).
//!
//! All parallel phases run as tasks on a persistent [`pool::WorkerPool`]
//! — spawned once per clustering run and reused by the init passes, the
//! sort, and every coarse chunk — instead of spawning scoped OS threads
//! per call. The entry point is the unified [`LinkClustering`] facade:
//! serial by default, parallel via `.threads(n)`, with optional
//! phase-level telemetry via `.stats(true)`.
//!
//! # Examples
//!
//! ```
//! use linkclust_graph::generate::{gnm, WeightMode};
//! use linkclust_core::coarse::CoarseConfig;
//! use linkclust_parallel::LinkClustering;
//!
//! let g = gnm(40, 160, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
//! let cfg = CoarseConfig { phi: 10, initial_chunk: 16, ..Default::default() };
//! let result = LinkClustering::new().threads(4).stats(true).run_coarse(&g, cfg)?;
//! assert!(result.dendrogram().merge_count() > 0);
//! let report = result.report().expect("stats(true) attaches a report");
//! assert!(report.phase_calls(linkclust_core::telemetry::Phase::Sort) == 1);
//! # Ok::<(), linkclust_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facade;
pub mod init;
pub mod merge;
pub mod pool;
pub mod schedule;
pub mod sort;
pub mod sweep;
pub mod ufsweep;

pub use facade::{LinkClustering, SweepEngine};
pub use init::compute_similarities_parallel;
pub use pool::WorkerPool;
pub use sweep::{parallel_coarse_sweep, parallel_coarse_sweep_shared, ParallelChunkProcessor};

use linkclust_core::coarse::{CoarseConfig, CoarseResult};
use linkclust_core::{ConfigError, PairSimilarities};
use linkclust_graph::WeightedGraph;

/// Thin wrapper kept for source compatibility; use
/// [`LinkClustering::new().threads(n)`](LinkClustering::threads) instead.
#[deprecated(
    since = "0.2.0",
    note = "use `LinkClustering::new().threads(n)` — the unified facade \
            also covers the serial pipeline and telemetry"
)]
#[derive(Clone, Debug)]
pub struct ParallelLinkClustering {
    inner: LinkClustering,
    threads: usize,
}

#[allow(deprecated)]
impl ParallelLinkClustering {
    /// Creates the facade with `threads` worker threads; rejects
    /// `threads == 0` with [`ConfigError::ZeroThreads`].
    pub fn new(threads: usize) -> Result<Self, ConfigError> {
        if threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(ParallelLinkClustering { inner: LinkClustering::new().threads(threads), threads })
    }

    /// The configured thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Phase I in parallel: the sorted similarity list. Both the three
    /// passes and the O(K₁ log K₁) sort run on the configured threads
    /// (the sort is an extension beyond the paper; see DESIGN.md).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the thread count was validated by
    /// [`ParallelLinkClustering::new`], the only way to construct `self`.
    #[must_use]
    pub fn similarities(&self, g: &WeightedGraph) -> PairSimilarities {
        self.inner.similarities(g).expect("thread count validated in new()")
    }

    /// Both phases in parallel: parallel initialization followed by the
    /// parallel coarse-grained sweep.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`CoarseConfig`] validation (for example a
    /// zero chunk size); use [`LinkClustering::run_coarse`] on the facade
    /// for the fallible variant.
    #[must_use]
    pub fn run_coarse(&self, g: &WeightedGraph, config: CoarseConfig) -> CoarseResult {
        self.inner.run_coarse(g, config).unwrap_or_else(|e| panic!("invalid coarse config: {e}"))
    }
}
