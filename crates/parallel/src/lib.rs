//! Multi-threaded link clustering (§VI of the paper).
//!
//! Parallelizes both phases of the serial algorithm on shared-memory
//! multi-core machines:
//!
//! * **Initialization** ([`init`]) — the three passes of Algorithm 1:
//!   vertex ranges in parallel (pass 1), per-thread pair maps merged
//!   hierarchically (pass 2), and disjoint entry ranges (pass 3).
//! * **Sweeping** ([`sweep`]) — each coarse-grained chunk is partitioned
//!   across `T` threads, each merging into its own copy of the cluster
//!   array `C`; the copies are then combined pairwise ([`merge`]) with
//!   the corrected chain-union scheme (the paper devotes §VI-B to why the
//!   naive scheme is flawed — both schemes are implemented here, and the
//!   flaw is reproduced in a test).
//!
//! # Examples
//!
//! ```
//! use linkclust_graph::generate::{gnm, WeightMode};
//! use linkclust_core::coarse::CoarseConfig;
//! use linkclust_parallel::ParallelLinkClustering;
//!
//! let g = gnm(40, 160, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
//! let cfg = CoarseConfig { phi: 10, initial_chunk: 16, ..Default::default() };
//! let result = ParallelLinkClustering::new(4).run_coarse(&g, &cfg);
//! assert!(result.dendrogram().merge_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod merge;
pub mod pool;
pub mod sort;
pub mod sweep;

pub use init::compute_similarities_parallel;
pub use sweep::{parallel_coarse_sweep, ParallelChunkProcessor};

use linkclust_core::coarse::{CoarseConfig, CoarseResult};
use linkclust_core::PairSimilarities;
use linkclust_graph::WeightedGraph;

/// End-to-end multi-threaded link clustering facade.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelLinkClustering {
    threads: usize,
}

impl ParallelLinkClustering {
    /// Creates the facade with `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        ParallelLinkClustering { threads }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Phase I in parallel: the sorted similarity list. Both the three
    /// passes and the O(K₁ log K₁) sort run on the configured threads
    /// (the sort is an extension beyond the paper; see DESIGN.md).
    pub fn similarities(&self, g: &WeightedGraph) -> PairSimilarities {
        let sims = compute_similarities_parallel(g, self.threads);
        sort::parallel_into_sorted(sims, self.threads)
    }

    /// Both phases in parallel: parallel initialization followed by the
    /// parallel coarse-grained sweep.
    pub fn run_coarse(&self, g: &WeightedGraph, config: &CoarseConfig) -> CoarseResult {
        let sims = self.similarities(g);
        parallel_coarse_sweep(g, &sims, config, self.threads)
    }
}
