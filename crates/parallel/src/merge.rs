//! Combining per-thread copies of the cluster array `C` (§VI-B).
//!
//! After each thread has merged its share of a chunk's edge pairs into
//! its own copy of `C`, the copies must be combined into one array whose
//! partition is the join (union-closure) of the input partitions.
//!
//! The paper first presents a natural scheme — for each edge `i`, point
//! everything on the chains `F₀(i)` and `F₁(i)` at the smaller root — and
//! shows it is **flawed**: redirecting an interior element of a `C₁`
//! chain can detach it from the rest of its `C₀` cluster
//! ([`merge_cluster_arrays_flawed`] reproduces the counterexample). The
//! fix extends the update set with `F₀(min F₁(i))`, the `C₀` chain of
//! `i`'s `C₁`-root ([`merge_cluster_arrays`]).
//!
//! [`merge_cluster_arrays_reference`] is an obviously-correct union-find
//! formulation used by the property tests as ground truth.

use linkclust_core::unionfind::UnionFind;
use linkclust_core::ClusterArray;

/// Merges the partition of `other` into `target` using the paper's
/// **corrected** scheme: for every edge `i` (ascending), all elements of
/// `F₀(i) ∪ F₁(i) ∪ F₀(min F₁(i))` are pointed at the minimum element of
/// that union.
///
/// Because chains descend, each chain's minimum is its final element (its
/// root), so the union's minimum is the smaller of the two `C₀` roots —
/// no need to scan every element. The three chains can also overlap
/// (`F₀(i)` and `F₀(min F₁(i))` share any common suffix in `target`), so
/// the element set is deduplicated before the writes.
///
/// # Examples
///
/// The counterexample of §VI-B (0-based): `C₀ = [0,1,1,0]` puts edges
/// `{0, 3}` and `{1, 2}` together, `C₁ = [0,1,2,2]` joins `{2, 3}`, so
/// the join is one big cluster. The corrected scheme finds it; the
/// flawed scheme of the paper's first attempt
/// ([`merge_cluster_arrays_flawed`]) leaves two clusters behind:
///
/// ```
/// use linkclust_core::ClusterArray;
/// use linkclust_parallel::merge::{merge_cluster_arrays, merge_cluster_arrays_flawed};
///
/// let c1 = ClusterArray::from_parents(vec![0, 1, 2, 2]);
///
/// let mut corrected = ClusterArray::from_parents(vec![0, 1, 1, 0]);
/// merge_cluster_arrays(&mut corrected, &c1);
/// assert_eq!(corrected.assignments(), vec![0, 0, 0, 0]);
///
/// let mut flawed = ClusterArray::from_parents(vec![0, 1, 1, 0]);
/// merge_cluster_arrays_flawed(&mut flawed, &c1);
/// assert_eq!(flawed.count_roots(), 2); // wrong: the join is one cluster
/// ```
///
/// # Panics
///
/// Panics if the arrays have different lengths.
pub fn merge_cluster_arrays(target: &mut ClusterArray, other: &ClusterArray) {
    assert_eq!(target.len(), other.len(), "cluster arrays must cover the same edges");
    let mut members: Vec<u32> = Vec::new();
    for i in 0..target.len() {
        let f0 = target.chain(i);
        let f1 = other.chain(i);
        let r1 = *f1.last().expect("chains are non-empty");
        let extra = target.chain(r1 as usize);
        // min(F₀(i) ∪ F₁(i) ∪ F₀(r₁)) hoisted to the chain roots:
        // min F₁(i) = r₁ is the head of `extra`, so the union's minimum
        // is the smaller of the two `target` roots.
        let r0 = *f0.last().expect("chains are non-empty");
        let f = r0.min(*extra.last().expect("chains are non-empty"));
        members.clear();
        members.extend_from_slice(&f0);
        members.extend_from_slice(&f1);
        members.extend_from_slice(&extra);
        members.sort_unstable();
        members.dedup();
        for &e in &members {
            target.set_parent(e as usize, f);
        }
    }
}

/// The **flawed** scheme of §VI-B, kept only to demonstrate the paper's
/// counterexample: updates `F₀(i) ∪ F₁(i)` but not `F₀(min F₁(i))`, so an
/// interior redirect can split a `C₀` cluster. Do not use for real
/// merging.
///
/// # Panics
///
/// Panics if the arrays have different lengths.
pub fn merge_cluster_arrays_flawed(target: &mut ClusterArray, other: &ClusterArray) {
    assert_eq!(target.len(), other.len(), "cluster arrays must cover the same edges");
    for i in 0..target.len() {
        let f0 = target.chain(i);
        let f1 = other.chain(i);
        let f = *f0.iter().chain(&f1).min().expect("chains are non-empty");
        for &e in f0.iter().chain(&f1) {
            target.set_parent(e as usize, f);
        }
    }
}

/// Reference combination via union-find: unions every edge with its
/// parents in both arrays, then rebuilds a flat `C` whose parents are the
/// per-set minima. Provably yields the join of the two partitions.
///
/// # Panics
///
/// Panics if the arrays have different lengths.
#[must_use]
pub fn merge_cluster_arrays_reference(a: &ClusterArray, b: &ClusterArray) -> ClusterArray {
    assert_eq!(a.len(), b.len(), "cluster arrays must cover the same edges");
    let n = a.len();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        uf.union(i, a.parent(i) as usize);
        uf.union(i, b.parent(i) as usize);
    }
    ClusterArray::from_parents(uf.assignments())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The paper's counterexample, 0-based: C0 = [0,1,1,0] and
    /// C1 = [0,1,2,2]; the union must be a single cluster.
    fn paper_example() -> (ClusterArray, ClusterArray) {
        (ClusterArray::from_parents(vec![0, 1, 1, 0]), ClusterArray::from_parents(vec![0, 1, 2, 2]))
    }

    #[test]
    fn flawed_scheme_reproduces_paper_counterexample() {
        let (mut c0, c1) = paper_example();
        merge_cluster_arrays_flawed(&mut c0, &c1);
        // The paper: "Clearly, it has two clusters (i.e., 1 and 2), which
        // is wrong".
        assert_eq!(c0.count_roots(), 2, "parents: {:?}", c0.parents());
    }

    #[test]
    fn fixed_scheme_resolves_paper_counterexample() {
        let (mut c0, c1) = paper_example();
        merge_cluster_arrays(&mut c0, &c1);
        assert_eq!(c0.count_roots(), 1, "parents: {:?}", c0.parents());
        assert_eq!(c0.assignments(), vec![0, 0, 0, 0]);
    }

    /// Builds a random cluster array by applying random merges on top of
    /// an optional shared base.
    fn random_array(base: &ClusterArray, merges: usize, rng: &mut SmallRng) -> ClusterArray {
        let mut c = base.clone();
        let n = c.len();
        for _ in 0..merges {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            c.merge(i, j);
        }
        c
    }

    fn assert_join_equal(got: &ClusterArray, a: &ClusterArray, b: &ClusterArray, ctx: &str) {
        let expected = merge_cluster_arrays_reference(a, b);
        assert_eq!(
            got.assignments(),
            expected.assignments(),
            "{ctx}: a={:?} b={:?}",
            a.parents(),
            b.parents()
        );
    }

    #[test]
    fn fixed_scheme_matches_reference_on_random_arrays() {
        let mut rng = SmallRng::seed_from_u64(7);
        for case in 0..300 {
            let n = rng.gen_range(2..30);
            let base = ClusterArray::new(n);
            let a = random_array(&base, rng.gen_range(0..n), &mut rng);
            let b = random_array(&base, rng.gen_range(0..n), &mut rng);
            let mut got = a.clone();
            merge_cluster_arrays(&mut got, &b);
            assert_join_equal(&got, &a, &b, &format!("case {case}"));
        }
    }

    #[test]
    fn fixed_scheme_matches_reference_with_shared_base() {
        // The real workload: both arrays extend the same base partition
        // (the chunk's starting state).
        let mut rng = SmallRng::seed_from_u64(13);
        for case in 0..300 {
            let n = rng.gen_range(4..40);
            let base = random_array(&ClusterArray::new(n), rng.gen_range(0..n), &mut rng);
            let a = random_array(&base, rng.gen_range(0..n / 2), &mut rng);
            let b = random_array(&base, rng.gen_range(0..n / 2), &mut rng);
            let mut got = a.clone();
            merge_cluster_arrays(&mut got, &b);
            assert_join_equal(&got, &a, &b, &format!("base case {case}"));
        }
    }

    #[test]
    fn merging_with_identity_is_identity() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = random_array(&ClusterArray::new(12), 8, &mut rng);
        let mut got = a.clone();
        merge_cluster_arrays(&mut got, &ClusterArray::new(12));
        assert_eq!(got.assignments(), a.assignments());
        let mut id = ClusterArray::new(12);
        merge_cluster_arrays(&mut id, &a);
        assert_eq!(id.assignments(), a.assignments());
    }

    #[test]
    fn merge_is_commutative_in_partition() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..100 {
            let n = rng.gen_range(2..25);
            let a = random_array(&ClusterArray::new(n), rng.gen_range(0..n), &mut rng);
            let b = random_array(&ClusterArray::new(n), rng.gen_range(0..n), &mut rng);
            let mut ab = a.clone();
            merge_cluster_arrays(&mut ab, &b);
            let mut ba = b.clone();
            merge_cluster_arrays(&mut ba, &a);
            assert_eq!(ab.assignments(), ba.assignments());
        }
    }

    #[test]
    fn reference_merge_counts() {
        let a = ClusterArray::from_parents(vec![0, 0, 2, 2, 4]);
        let b = ClusterArray::from_parents(vec![0, 1, 1, 3, 3]);
        let m = merge_cluster_arrays_reference(&a, &b);
        // a: {0,1},{2,3},{4}; b: {0},{1,2},{3,4} -> all connected.
        assert_eq!(m.count_roots(), 1);
    }

    #[test]
    #[should_panic(expected = "same edges")]
    fn rejects_length_mismatch() {
        let mut a = ClusterArray::new(3);
        merge_cluster_arrays(&mut a, &ClusterArray::new(4));
    }
}
