//! Work partitioning and scoped parallel execution.

use std::ops::Range;

/// Splits `0..n` into at most `parts` contiguous, near-equal ranges
/// (fewer if `n < parts`; none if `n == 0`).
///
/// # Panics
///
/// Panics if `parts == 0`.
///
/// # Examples
///
/// ```
/// use linkclust_parallel::pool::partition_ranges;
///
/// let r = partition_ranges(10, 3);
/// assert_eq!(r, vec![0..4, 4..7, 7..10]);
/// ```
#[must_use]
pub fn partition_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one partition");
    let parts = parts.min(n);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = n / parts + usize::from(i < n % parts);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Splits the index range of `weights` into at most `parts` contiguous
/// ranges of near-equal total weight (greedy: a range closes once it
/// reaches the ideal share). Used to balance chunk processing, where an
/// entry's cost is its incident-pair count.
///
/// # Panics
///
/// Panics if `parts == 0`.
#[must_use]
pub fn balanced_partition_by_weight(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one partition");
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let total: u64 = weights.iter().sum();
    let parts = parts.min(n);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    let mut acc: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let remaining_parts = parts - out.len();
        let remaining_items = n - i - 1;
        // Close the k-th range once the running sum reaches k·total/parts
        // — compared exactly in u128 (acc·parts ≥ total·k), so the
        // boundary targets carry no accumulated floating-point drift —
        // but never leave fewer items than ranges still to emit.
        let k = (out.len() + 1) as u128;
        let reached = u128::from(acc) * parts as u128 >= u128::from(total) * k;
        if (reached && remaining_parts > 1 && remaining_items >= remaining_parts - 1)
            || remaining_items + 1 == remaining_parts
        {
            out.push(start..i + 1);
            start = i + 1;
            if out.len() == parts - 1 {
                break;
            }
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// Unwraps a scoped join handle, re-raising the worker's own panic
/// payload instead of panicking with a second, less informative message.
fn join_propagating<'scope, T>(h: std::thread::ScopedJoinHandle<'scope, T>) -> T {
    match h.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Runs `f` over each range on its own thread (scoped), collecting the
/// results in range order.
///
/// # Panics
///
/// A panic in `f` on any worker thread is propagated to the caller with
/// its original payload.
pub fn run_on_ranges<T, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                s.spawn(move || f(r))
            })
            .collect();
        handles.into_iter().map(|h| join_propagating(h)).collect()
    })
}

/// Reduces `items` pairwise, each pair on its own thread, until at most
/// three remain; those are folded serially — the hierarchical merge shape
/// of §VI-A (pass 2) and §VI-B (array combination).
///
/// # Panics
///
/// A panic in `combine` on any worker thread is propagated to the caller
/// with its original payload.
pub fn hierarchical_reduce<T, F>(mut items: Vec<T>, combine: F) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    while items.len() > 3 {
        let carry = if items.len() % 2 == 1 { items.pop() } else { None };
        let mut pairs = Vec::with_capacity(items.len() / 2);
        let mut it = items.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            pairs.push((a, b));
        }
        let mut next: Vec<T> = std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| {
                    let combine = &combine;
                    s.spawn(move || combine(a, b))
                })
                .collect();
            handles.into_iter().map(|h| join_propagating(h)).collect()
        });
        next.extend(carry);
        items = next;
    }
    let mut it = items.into_iter();
    let first = it.next()?;
    Some(it.fold(first, &combine))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_everything_without_overlap() {
        for (n, p) in [(10, 3), (7, 7), (5, 10), (100, 6), (1, 1)] {
            let ranges = partition_ranges(n, p);
            let mut covered = 0;
            let mut prev_end = 0;
            for r in &ranges {
                assert_eq!(r.start, prev_end);
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, n, "n={n} p={p}");
            assert!(ranges.len() <= p);
        }
    }

    #[test]
    fn empty_input_gives_no_ranges() {
        assert!(partition_ranges(0, 4).is_empty());
        assert!(balanced_partition_by_weight(&[], 4).is_empty());
    }

    #[test]
    fn balanced_partition_covers_and_balances() {
        let weights = vec![5u64, 1, 1, 1, 1, 1, 5, 5, 1, 1, 1, 8];
        let ranges = balanced_partition_by_weight(&weights, 4);
        let mut prev_end = 0;
        let mut sums = Vec::new();
        for r in &ranges {
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
            sums.push(weights[r.clone()].iter().sum::<u64>());
        }
        assert_eq!(prev_end, weights.len());
        assert!(ranges.len() <= 4);
        let total: u64 = weights.iter().sum();
        // No range should carry more than ~2x the ideal share + max item.
        for &s in &sums {
            assert!(s <= total / 2 + 8, "unbalanced: {sums:?}");
        }
    }

    #[test]
    fn balanced_partition_with_more_parts_than_items() {
        let ranges = balanced_partition_by_weight(&[3, 3], 8);
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    fn run_on_ranges_preserves_order() {
        let ranges = partition_ranges(100, 7);
        let sums = run_on_ranges(ranges.clone(), |r| r.sum::<usize>());
        let direct: Vec<usize> = ranges.into_iter().map(|r| r.sum()).collect();
        assert_eq!(sums, direct);
    }

    #[test]
    fn hierarchical_reduce_sums() {
        for n in [0usize, 1, 2, 3, 4, 5, 8, 13, 64] {
            let items: Vec<u64> = (0..n as u64).collect();
            let got = hierarchical_reduce(items, |a, b| a + b);
            if n == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some((n as u64 - 1) * n as u64 / 2), "n={n}");
            }
        }
    }
}
