//! Work partitioning and the persistent worker pool.
//!
//! Earlier revisions spawned fresh scoped OS threads for every parallel
//! call — every init pass, every sort merge round, and (worst) every
//! coarse chunk. The many-small-chunk regime the head/tail machine
//! produces was therefore dominated by thread setup, not merging. The
//! [`WorkerPool`] here is spawned **once per clustering run** and reused
//! by all phases: it keeps `threads - 1` OS workers parked on a
//! condition variable, dispatches boxed tasks through a shared queue,
//! and rendezvouses over an `mpsc` channel. The submitting thread
//! *helps*: while waiting for its tasks it drains the queue and executes
//! jobs inline, so a pool with `threads == n` delivers `n`-way
//! parallelism with `n - 1` workers, `threads == 1` never spawns at all,
//! and nested submissions (a pooled sort inside a pooled sweep) cannot
//! deadlock — the nested caller simply executes its own tasks.
//!
//! Panics inside tasks are contained on the worker (so the pool stays
//! usable) and re-raised on the submitting thread with their original
//! payload, preserving the propagation semantics of the old scoped
//! implementation.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use linkclust_core::telemetry::{Counter, Phase, Telemetry};

/// Splits `0..n` into at most `parts` contiguous, near-equal ranges
/// (fewer if `n < parts`; none if `n == 0`).
///
/// # Panics
///
/// Panics if `parts == 0`.
///
/// # Examples
///
/// ```
/// use linkclust_parallel::pool::partition_ranges;
///
/// let r = partition_ranges(10, 3);
/// assert_eq!(r, vec![0..4, 4..7, 7..10]);
/// ```
#[must_use]
pub fn partition_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one partition");
    let parts = parts.min(n);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = n / parts + usize::from(i < n % parts);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Splits the index range of `weights` into at most `parts` contiguous
/// ranges of near-equal total weight (greedy: a range closes once it
/// reaches the ideal share). Used to balance chunk processing, where an
/// entry's cost is its incident-pair count.
///
/// # Panics
///
/// Panics if `parts == 0`.
#[must_use]
pub fn balanced_partition_by_weight(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    balanced_partition_with_loads(weights, parts).0
}

/// [`balanced_partition_by_weight`], also returning each range's total
/// weight. The sums fall out of the greedy accumulation for free, so
/// callers that report per-thread loads (telemetry) can reuse them
/// instead of re-walking `weights` range by range.
///
/// # Panics
///
/// Panics if `parts == 0`.
#[must_use]
pub fn balanced_partition_with_loads(
    weights: &[u64],
    parts: usize,
) -> (Vec<Range<usize>>, Vec<u64>) {
    assert!(parts > 0, "need at least one partition");
    let n = weights.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let total: u64 = weights.iter().sum();
    let parts = parts.min(n);
    let mut out = Vec::with_capacity(parts);
    let mut loads = Vec::with_capacity(parts);
    let mut start = 0;
    let mut acc: u64 = 0;
    let mut closed: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let remaining_parts = parts - out.len();
        let remaining_items = n - i - 1;
        // Close the k-th range once the running sum reaches k·total/parts
        // — compared exactly in u128 (acc·parts ≥ total·k), so the
        // boundary targets carry no accumulated floating-point drift —
        // but never leave fewer items than ranges still to emit.
        let k = (out.len() + 1) as u128;
        let reached = u128::from(acc) * parts as u128 >= u128::from(total) * k;
        if (reached && remaining_parts > 1 && remaining_items >= remaining_parts - 1)
            || remaining_items + 1 == remaining_parts
        {
            out.push(start..i + 1);
            loads.push(acc - closed);
            closed = acc;
            start = i + 1;
            if out.len() == parts - 1 {
                break;
            }
        }
    }
    if start < n {
        out.push(start..n);
        loads.push(total - closed);
    }
    (out, loads)
}

/// Unwraps a thread join result, re-raising the joined thread's own
/// panic payload instead of panicking with a second, less informative
/// message. The single join helper of the crate — scoped or not, every
/// join that must propagate goes through it.
///
/// # Panics
///
/// Resumes the joined thread's panic with its original payload.
pub fn join_propagating<T>(result: std::thread::Result<T>) -> T {
    match result {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// A unit of work submitted to the pool: produces a `T` on whichever
/// thread picks it up.
pub type Task<T> = Box<dyn FnOnce() -> T + Send>;

/// A queued, type-erased job (result delivery is baked into the closure).
type Job = Box<dyn FnOnce() + Send>;

/// State behind the queue mutex: pending jobs plus the shutdown flag the
/// condition variable pairs with.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
}

impl PoolShared {
    /// Locks the queue, recovering from poisoning: jobs are
    /// panic-contained, so a poisoned queue mutex still holds a
    /// consistent `VecDeque`.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn pop_job(&self) -> Option<Job> {
        self.lock().jobs.pop_front()
    }
}

/// The worker body: pop and run jobs until shutdown. Jobs are wrapped in
/// `catch_unwind` by the submitter, so a panicking task never kills the
/// worker — the pool stays usable afterwards.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
    }
}

/// A persistent pool of worker threads, spawned once and reused by every
/// parallel phase of a clustering run.
///
/// A pool for `threads` keeps `threads - 1` parked OS workers; the
/// submitting thread always participates in execution, so `threads == 1`
/// spawns nothing and runs everything inline (the exact serial path).
///
/// # Examples
///
/// ```
/// use linkclust_parallel::pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let sums = pool.run_on_ranges((0..4).map(|i| i * 25..(i + 1) * 25).collect(), |r| {
///     r.sum::<usize>()
/// });
/// assert_eq!(sums.iter().sum::<usize>(), (0..100).sum());
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    telemetry: Telemetry,
    /// Next pool-task sequence number, used to label per-task trace
    /// events when the telemetry handle carries a tracer.
    task_seq: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool delivering `threads`-way parallelism
    /// (`threads - 1` OS workers plus the submitting thread).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or if the OS refuses to spawn a worker
    /// thread.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                // Named so trace timelines and debuggers show "worker-i"
                // instead of an anonymous thread id.
                std::thread::Builder::new()
                    .name(format!("worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread failed")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
            telemetry: Telemetry::disabled(),
            task_seq: AtomicU64::new(0),
        }
    }

    /// Attaches a telemetry handle: every submitted task bumps
    /// [`Counter::PoolTasks`], and each task's queue wait (submission to
    /// pickup) is recorded as a [`Phase::PoolQueueWait`] span. If the
    /// handle carries a tracer, each task's execution additionally lands
    /// on the executing thread's trace timeline as a `pool_task` event
    /// labelled with its submission sequence number.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The parallelism this pool delivers (workers + submitting thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of jobs currently sitting in the queue waiting for a
    /// thread (submitted but not yet picked up). A sustained non-zero
    /// depth means the pool is oversubscribed; `linkclustd` samples
    /// this as a runtime gauge.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().jobs.len()
    }

    /// Runs every task to completion and returns the results in task
    /// order. Tasks run on the pool workers *and* the calling thread,
    /// which drains the shared queue while it waits — so the call never
    /// deadlocks even when invoked from inside another pooled task.
    ///
    /// # Panics
    ///
    /// If any task panics, the first panic (in task order) is re-raised
    /// here with its original payload after every task has finished; the
    /// pool itself stays usable.
    #[must_use]
    pub fn run_tasks<T>(&self, tasks: Vec<Task<T>>) -> Vec<T>
    where
        T: Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        self.telemetry.add(Counter::PoolTasks, n as u64);
        // Sequence numbers label per-task trace events; the counter only
        // advances when a tracer is attached (one relaxed RMW per batch).
        // ordering: uniqueness of the reserved range comes from RMW
        // atomicity alone — no other memory is published through this
        // counter, so Relaxed is exactly strong enough.
        let base_seq = if self.telemetry.is_tracing() {
            self.task_seq.fetch_add(n as u64, Ordering::Relaxed) // ordering: see above
        } else {
            0
        };
        let mut results: Vec<Option<std::thread::Result<T>>> = Vec::with_capacity(n);
        results.resize_with(n, || None);

        if self.workers.is_empty() || n == 1 {
            // No parallelism available (or needed): run inline. Panics
            // are still contained per task so one failing task cannot
            // skip its siblings, matching the pooled path.
            for (idx, task) in tasks.into_iter().enumerate() {
                let _trace = self.telemetry.trace_task(base_seq + idx as u64);
                results[idx] = Some(std::panic::catch_unwind(AssertUnwindSafe(task)));
            }
            return collect_results(results);
        }

        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let mut st = self.shared.lock();
            for (idx, task) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                let telemetry = self.telemetry.clone();
                let queued_at = telemetry.is_enabled().then(Instant::now);
                let seq = base_seq + idx as u64;
                st.jobs.push_back(Box::new(move || {
                    if let Some(t0) = queued_at {
                        let nanos = t0.elapsed().as_nanos() as u64;
                        telemetry.record_phase_nanos(Phase::PoolQueueWait, nanos);
                    }
                    let result = {
                        let _trace = telemetry.trace_task(seq);
                        std::panic::catch_unwind(AssertUnwindSafe(task))
                    };
                    let _ = tx.send((idx, result));
                }));
            }
        }
        self.shared.work_ready.notify_all();
        drop(tx);

        // Rendezvous with caller help: prefer executing queued jobs over
        // blocking, so the queue always drains even if every worker is
        // busy with (or blocked inside) other submissions.
        let mut received = 0;
        while received < n {
            match rx.try_recv() {
                Ok((idx, result)) => {
                    results[idx] = Some(result);
                    received += 1;
                    continue;
                }
                Err(mpsc::TryRecvError::Empty | mpsc::TryRecvError::Disconnected) => {}
            }
            if let Some(job) = self.shared.pop_job() {
                job();
                continue;
            }
            // Queue empty, results pending: workers are executing them.
            let (idx, result) = rx.recv().expect("every pooled task delivers exactly one result");
            results[idx] = Some(result);
            received += 1;
        }
        collect_results(results)
    }

    /// Enqueues a fire-and-forget job and returns without waiting for
    /// it: the asynchronous counterpart of [`run_tasks`](Self::run_tasks),
    /// used by batch admission in `linkclust-serve`, where a full
    /// recluster must run *behind* the submitting thread while it keeps
    /// serving queries.
    ///
    /// A parked worker picks the job up. With no workers
    /// (`threads == 1`) the job runs inline before returning — the
    /// degenerate serial pool keeps the "submitted means it executes"
    /// guarantee without spawning; callers needing true background
    /// execution must size the pool at ≥ 2 threads.
    ///
    /// Panics inside the job are contained and *discarded* (the pool
    /// stays usable; nothing rendezvouses to re-raise them), so jobs
    /// must report failure through their own channel — e.g. the swap
    /// handshake admission jobs already perform.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.telemetry.add(Counter::PoolTasks, 1);
        let wrapped: Job = Box::new(move || {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
        });
        if self.workers.is_empty() {
            wrapped();
            return;
        }
        self.shared.lock().jobs.push_back(wrapped);
        self.shared.work_ready.notify_one();
    }

    /// Runs `f` over each range on the pool, collecting the results in
    /// range order — the pooled replacement for per-call scoped spawns.
    ///
    /// # Panics
    ///
    /// A panic in `f` on any task is propagated to the caller with its
    /// original payload (see [`run_tasks`](Self::run_tasks)).
    #[must_use]
    pub fn run_on_ranges<T, F>(&self, ranges: Vec<Range<usize>>, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Range<usize>) -> T + Send + Sync + 'static,
    {
        if ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let f = Arc::new(f);
        let tasks: Vec<Task<T>> = ranges
            .into_iter()
            .map(|r| {
                let f = Arc::clone(&f);
                Box::new(move || f(r)) as Task<T>
            })
            .collect();
        self.run_tasks(tasks)
    }

    /// Reduces `items` pairwise on the pool until at most three remain;
    /// those are folded serially — the hierarchical merge shape of §VI-A
    /// (pass 2) and §VI-B (array combination).
    ///
    /// # Panics
    ///
    /// A panic in `combine` on any task is propagated to the caller with
    /// its original payload (see [`run_tasks`](Self::run_tasks)).
    pub fn reduce<T, F>(&self, mut items: Vec<T>, combine: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        let combine = Arc::new(combine);
        while items.len() > 3 {
            let carry = if items.len() % 2 == 1 { items.pop() } else { None };
            let mut pairs = Vec::with_capacity(items.len() / 2);
            let mut it = items.into_iter();
            while let (Some(a), Some(b)) = (it.next(), it.next()) {
                pairs.push((a, b));
            }
            let tasks: Vec<Task<T>> = pairs
                .into_iter()
                .map(|(a, b)| {
                    let combine = Arc::clone(&combine);
                    Box::new(move || combine(a, b)) as Task<T>
                })
                .collect();
            let mut next = self.run_tasks(tasks);
            next.extend(carry);
            items = next;
        }
        let mut it = items.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |a, b| combine(a, b)))
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.workers.drain(..) {
            // Workers contain task panics, so a join error would mean a
            // bug in the worker loop itself; swallowing it here avoids a
            // double panic if the pool is dropped during unwinding.
            let _ = h.join();
        }
    }
}

/// The cooperative shutdown handshake of a [`ServiceThread`]: a flag
/// behind a mutex paired with a condition variable, so the service body
/// can sleep *interruptibly* — a ticker parked in
/// [`wait_timeout`](Self::wait_timeout) wakes immediately when the
/// owner stops it, instead of finishing out its sleep.
pub struct ShutdownFlag {
    state: Mutex<bool>,
    signal: Condvar,
}

impl std::fmt::Debug for ShutdownFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownFlag").field("is_set", &self.is_set()).finish()
    }
}

impl ShutdownFlag {
    fn new() -> Self {
        ShutdownFlag { state: Mutex::new(false), signal: Condvar::new() }
    }

    /// Locks the flag, recovering from poisoning: the state is a single
    /// monotone boolean, always consistent.
    fn lock(&self) -> MutexGuard<'_, bool> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// `true` once the owner has requested shutdown.
    #[must_use]
    pub fn is_set(&self) -> bool {
        *self.lock()
    }

    /// Sleeps for up to `timeout`, waking early on shutdown. Returns
    /// `true` if shutdown was requested (the service loop should exit).
    #[must_use]
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut requested = self.lock();
        while !*requested {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = self
                .signal
                .wait_timeout(requested, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            requested = guard;
        }
        true
    }

    fn set(&self) {
        *self.lock() = true;
        self.signal.notify_all();
    }
}

/// A named background service thread with a cooperative shutdown
/// handshake — the resident-service counterpart of [`WorkerPool`].
///
/// The pool module is the workspace's single sanctioned thread-spawn
/// site (the `bare-spawn` lint denies `thread::spawn` everywhere else),
/// and [`WorkerPool::submit`] intentionally runs *inline* on a
/// single-thread pool — which would wedge a caller submitting an
/// infinite service loop. Long-lived service bodies (the `linkclustd`
/// metrics ticker and `/metrics` HTTP listener) therefore get a
/// dedicated thread here: the body receives a [`ShutdownFlag`] it must
/// poll (or sleep on via [`ShutdownFlag::wait_timeout`]), and dropping
/// the handle requests shutdown and joins.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
/// use linkclust_parallel::pool::ServiceThread;
///
/// let ticks = Arc::new(AtomicU64::new(0));
/// let seen = Arc::clone(&ticks);
/// let service = ServiceThread::spawn("ticker", move |shutdown| {
///     loop {
///         // ordering: independent counter, no memory published through it.
///         seen.fetch_add(1, Ordering::Relaxed);
///         if shutdown.wait_timeout(Duration::from_millis(1)) {
///             return;
///         }
///     }
/// });
/// std::thread::sleep(Duration::from_millis(10));
/// drop(service); // requests shutdown and joins
/// assert!(ticks.load(Ordering::Relaxed) > 0);
/// ```
pub struct ServiceThread {
    handle: Option<JoinHandle<()>>,
    shutdown: Arc<ShutdownFlag>,
}

impl std::fmt::Debug for ServiceThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceThread").field("running", &self.handle.is_some()).finish()
    }
}

impl ServiceThread {
    /// Spawns a named service thread running `body`. The body owns its
    /// loop; it must return promptly once its [`ShutdownFlag`] is set.
    /// Panics inside the body are contained (the join on drop swallows
    /// them), so a crashing service never takes the owner down.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn the thread.
    #[must_use]
    pub fn spawn<F>(name: &str, body: F) -> Self
    where
        F: FnOnce(&ShutdownFlag) + Send + 'static,
    {
        let shutdown = Arc::new(ShutdownFlag::new());
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| body(&flag)));
            })
            .expect("spawning a service thread failed");
        ServiceThread { handle: Some(handle), shutdown }
    }

    /// Requests shutdown and joins the thread (equivalent to dropping
    /// the handle, as an explicit statement).
    pub fn stop(self) {}
}

impl Drop for ServiceThread {
    fn drop(&mut self) {
        self.shutdown.set();
        if let Some(handle) = self.handle.take() {
            // The body is panic-contained, so a join error would be a
            // harness bug; swallowing it avoids a double panic when the
            // owner is already unwinding.
            let _ = handle.join();
        }
    }
}

/// Unwraps the collected per-task results, re-raising the first panic
/// (in task order) with its original payload.
///
/// # Panics
///
/// Propagates the first task panic; panics on a missing result slot,
/// which would be a rendezvous bug.
fn collect_results<T>(results: Vec<Option<std::thread::Result<T>>>) -> Vec<T> {
    let mut out = Vec::with_capacity(results.len());
    let mut first_panic = None;
    for slot in results {
        match slot.expect("rendezvous collected every task result") {
            Ok(v) => out.push(v),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ranges_cover_everything_without_overlap() {
        for (n, p) in [(10, 3), (7, 7), (5, 10), (100, 6), (1, 1)] {
            let ranges = partition_ranges(n, p);
            let mut covered = 0;
            let mut prev_end = 0;
            for r in &ranges {
                assert_eq!(r.start, prev_end);
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, n, "n={n} p={p}");
            assert!(ranges.len() <= p);
        }
    }

    #[test]
    fn empty_input_gives_no_ranges() {
        assert!(partition_ranges(0, 4).is_empty());
        assert!(balanced_partition_by_weight(&[], 4).is_empty());
    }

    #[test]
    fn balanced_partition_covers_and_balances() {
        let weights = vec![5u64, 1, 1, 1, 1, 1, 5, 5, 1, 1, 1, 8];
        let ranges = balanced_partition_by_weight(&weights, 4);
        let mut prev_end = 0;
        let mut sums = Vec::new();
        for r in &ranges {
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
            sums.push(weights[r.clone()].iter().sum::<u64>());
        }
        assert_eq!(prev_end, weights.len());
        assert!(ranges.len() <= 4);
        let total: u64 = weights.iter().sum();
        // No range should carry more than ~2x the ideal share + max item.
        for &s in &sums {
            assert!(s <= total / 2 + 8, "unbalanced: {sums:?}");
        }
    }

    #[test]
    fn balanced_partition_loads_match_recomputed_sums() {
        for parts in 1..6 {
            let weights = vec![5u64, 1, 1, 1, 1, 1, 5, 5, 1, 1, 1, 8];
            let (ranges, loads) = balanced_partition_with_loads(&weights, parts);
            assert_eq!(ranges.len(), loads.len(), "parts={parts}");
            for (r, &load) in ranges.iter().zip(&loads) {
                assert_eq!(load, weights[r.clone()].iter().sum::<u64>(), "parts={parts} r={r:?}");
            }
            assert_eq!(loads.iter().sum::<u64>(), weights.iter().sum::<u64>());
        }
    }

    #[test]
    fn balanced_partition_with_more_parts_than_items() {
        let ranges = balanced_partition_by_weight(&[3, 3], 8);
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    fn run_on_ranges_preserves_order() {
        let pool = WorkerPool::new(4);
        let ranges = partition_ranges(100, 7);
        let sums = pool.run_on_ranges(ranges.clone(), |r| r.sum::<usize>());
        let direct: Vec<usize> = ranges.into_iter().map(|r| r.sum()).collect();
        assert_eq!(sums, direct);
    }

    #[test]
    fn reduce_sums() {
        let pool = WorkerPool::new(3);
        for n in [0usize, 1, 2, 3, 4, 5, 8, 13, 64] {
            let items: Vec<u64> = (0..n as u64).collect();
            let got = pool.reduce(items, |a, b| a + b);
            if n == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some((n as u64 - 1) * n as u64 / 2), "n={n}");
            }
        }
    }

    #[test]
    fn single_thread_pool_spawns_nothing_and_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers.len(), 0);
        let out = pool.run_on_ranges(partition_ranges(10, 4), |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 10);
    }

    #[test]
    fn pool_is_reusable_across_many_submissions() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 0..50 {
            let tasks: Vec<Task<usize>> = (0..8)
                .map(|i| {
                    let counter = Arc::clone(&counter);
                    Box::new(move || {
                        // ordering: relaxed is enough — the reader below
                        // happens-after this task via run_tasks' result
                        // rendezvous, not via this RMW's ordering.
                        counter.fetch_add(1, Ordering::Relaxed);
                        round * 8 + i
                    }) as Task<usize>
                })
                .collect();
            let got = pool.run_tasks(tasks);
            let expected: Vec<usize> = (0..8).map(|i| round * 8 + i).collect();
            assert_eq!(got, expected);
        }
        // ordering: every fetch_add happens-before this read because
        // each run_tasks call returned (its mpsc recv of the last result
        // synchronizes-with the worker's send after the increment).
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn task_panic_propagates_original_payload_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Task<u32>> = (0..6u32)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 3, "task 3 exploded");
                    i
                }) as Task<u32>
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run_tasks(tasks)))
            .expect_err("the panicking task must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("payload is a string");
        assert!(msg.contains("task 3 exploded"), "unexpected payload: {msg}");
        // The pool keeps working after the panic.
        let got = pool.run_tasks((0..4u32).map(|i| Box::new(move || i) as Task<u32>).collect());
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_submission_from_inside_a_task_does_not_deadlock() {
        // Even a 2-thread pool (one worker) must survive a task that
        // itself submits to the pool: the nested call drains the queue
        // inline instead of blocking.
        for threads in [2usize, 4] {
            let pool = Arc::new(WorkerPool::new(threads));
            let inner_pool = Arc::clone(&pool);
            let tasks: Vec<Task<usize>> = vec![
                Box::new(move || {
                    let sums =
                        inner_pool.run_on_ranges(partition_ranges(40, 4), |r| r.sum::<usize>());
                    sums.iter().sum()
                }),
                Box::new(|| 1000),
            ];
            let got = pool.run_tasks(tasks);
            assert_eq!(got, vec![(0..40).sum::<usize>(), 1000], "threads={threads}");
        }
    }

    #[test]
    fn submit_runs_asynchronously_and_survives_panics() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        // A panicking fire-and-forget job must not kill the worker.
        pool.submit(|| panic!("contained"));
        pool.submit(move || {
            let _ = tx.send(7);
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(7));
        // The pool still serves synchronous batches afterwards.
        let got = pool.run_tasks((0..3u32).map(|i| Box::new(move || i) as Task<u32>).collect());
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn submit_on_single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let hit = Arc::new(AtomicUsize::new(0));
        let hit2 = Arc::clone(&hit);
        pool.submit(move || {
            // ordering: inline execution — same thread, no concurrency.
            hit2.store(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn queue_depth_reflects_pending_jobs() {
        // A single-thread pool runs submissions inline, so its queue is
        // always empty.
        let pool = WorkerPool::new(1);
        assert_eq!(pool.queue_depth(), 0);
        pool.submit(|| {});
        assert_eq!(pool.queue_depth(), 0);
        // A 2-thread pool with its one worker blocked accumulates depth.
        let pool = WorkerPool::new(2);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let held = Arc::clone(&gate);
        pool.submit(move || {
            held.wait();
        });
        // Wait until the worker has picked the blocker up, then queue
        // more jobs behind it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.queue_depth() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        pool.submit(|| {});
        pool.submit(|| {});
        assert_eq!(pool.queue_depth(), 2);
        gate.wait();
    }

    #[test]
    fn service_thread_ticks_and_stops_promptly() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let service = ServiceThread::spawn("test-ticker", move |shutdown| loop {
            // ordering: independent counter, nothing published through it.
            seen.fetch_add(1, Ordering::Relaxed);
            if shutdown.wait_timeout(std::time::Duration::from_millis(1)) {
                return;
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(ticks.load(Ordering::Relaxed) >= 3, "ticker never ran");
        // Stop wakes the ticker out of a long sleep instead of waiting
        // it out: bound the whole handshake well below the sleep.
        let t0 = std::time::Instant::now();
        let slow = ServiceThread::spawn("test-sleeper", |shutdown| {
            let _ = shutdown.wait_timeout(std::time::Duration::from_secs(3600));
        });
        slow.stop();
        assert!(t0.elapsed() < std::time::Duration::from_secs(60), "stop did not interrupt");
        service.stop();
    }

    #[test]
    fn service_thread_contains_body_panics() {
        let service = ServiceThread::spawn("test-panicker", |_| panic!("contained"));
        // Dropping joins the panicked thread without re-raising.
        drop(service);
    }

    #[test]
    fn join_propagating_reraises_payload() {
        let handle = std::thread::spawn(|| -> u32 { panic!("worker payload 7") });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| join_propagating(handle.join())))
            .expect_err("panic must re-raise");
        let msg = err.downcast_ref::<&str>().copied().expect("payload is a &str");
        assert_eq!(msg, "worker payload 7");
        let ok = std::thread::spawn(|| 5u32);
        assert_eq!(join_propagating(ok.join()), 5);
    }

    #[test]
    fn pool_telemetry_counts_tasks_and_queue_waits() {
        use linkclust_core::telemetry::RunRecorder;
        let recorder = Arc::new(RunRecorder::new());
        let pool = WorkerPool::new(3).with_telemetry(Telemetry::new(recorder.clone()));
        let _ = pool.run_tasks((0..5u32).map(|i| Box::new(move || i) as Task<u32>).collect());
        let report = recorder.report();
        assert_eq!(report.counter(Counter::PoolTasks), 5);
        assert_eq!(report.phase_calls(Phase::PoolQueueWait), 5);
    }

    #[test]
    fn tracing_pool_records_every_task_once_with_unique_seqs() {
        use linkclust_core::telemetry::{trace, TraceCollector, TraceLabel};
        let collector = Arc::new(TraceCollector::new());
        let pool =
            WorkerPool::new(4).with_telemetry(Telemetry::disabled().with_tracer(collector.clone()));
        // Two rendezvous tasks: neither finishes until both are running,
        // and the caller-help loop executes only one job at a time, so at
        // least one task lands on a pool worker — the worker-name
        // assertion below is deterministic, not a race against the
        // caller draining the whole queue before the workers wake.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let (a, b) = (Arc::clone(&gate), Arc::clone(&gate));
        let _ = pool.run_tasks(vec![
            Box::new(move || {
                a.wait();
                0u32
            }) as Task<u32>,
            Box::new(move || {
                b.wait();
                1u32
            }) as Task<u32>,
        ]);
        let _ = pool.run_tasks((0..14u32).map(|i| Box::new(move || i) as Task<u32>).collect());
        let _ = pool.run_tasks((0..8u32).map(|i| Box::new(move || i) as Task<u32>).collect());
        let events = collector.events();
        let mut seqs: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.label {
                TraceLabel::PoolTask { seq } => Some(seq),
                TraceLabel::Phase(_) => None,
            })
            .collect();
        seqs.sort_unstable();
        // Every submitted task traced exactly once, seqs dense from 0.
        assert_eq!(seqs, (0..24).collect::<Vec<u64>>());
        trace::check_events(&events).unwrap();
        // Worker threads registered under their builder-given names.
        let names = collector.thread_names();
        assert!(names.iter().any(|n| n.starts_with("worker-")), "names: {names:?}");
    }
}
