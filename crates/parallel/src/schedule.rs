//! Deterministic schedule-permutation harness for the §VI-B combination.
//!
//! The parallel chunk processor combines per-thread copies of the
//! cluster array in whatever order the reduction tree happens to run.
//! Correctness therefore requires the combined partition to be the join
//! of the inputs **regardless of combination order** — exactly the
//! property the paper's first (flawed) combination scheme lacks.
//!
//! This module replays a chunk's per-thread results under explicit
//! combination orders: exhaustively (every permutation) for `T ≤ 4`
//! thread copies, and a seeded sample of permutations above that. Each
//! order is folded with the combination function and compared against
//! the serial join. A divergence is reported with the exact order that
//! produced it, so a failure is replayable.
//!
//! The harness is deliberately generic over the combination function so
//! its own tests can demonstrate that it catches the flawed scheme
//! ([`crate::merge::merge_cluster_arrays_flawed`]) while the corrected
//! one ([`crate::merge::merge_cluster_arrays`]) passes every schedule.

use std::sync::Arc;

use linkclust_core::coarse::ChunkProcessor;
use linkclust_core::coarse::SerialChunkProcessor;
use linkclust_core::{ClusterArray, SimilarityEntry};
use linkclust_graph::{EdgeIndex, GraphView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::merge::merge_cluster_arrays;
use crate::pool::balanced_partition_by_weight;
use crate::ufsweep::{kruskal_filter, Candidate};

/// Exhaustive checking is used up to this many thread copies (4! = 24
/// orders); larger inputs fall back to seeded sampling.
pub const EXHAUSTIVE_LIMIT: usize = 4;

/// How many seeded permutations are sampled beyond the exhaustive limit.
pub const SAMPLED_ORDERS: usize = 48;

/// Outcome of a clean schedule sweep: how many orders ran and whether
/// they covered every permutation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduleReport {
    /// Number of combination orders checked.
    pub orders_checked: usize,
    /// `true` if every permutation of the copies was checked.
    pub exhaustive: bool,
}

/// A combination order whose folded result diverged from the join.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleViolation {
    /// The order the copies were folded in (indices into the copy list).
    pub order: Vec<usize>,
    /// Cluster assignments the fold produced.
    pub got: Vec<u32>,
    /// Cluster assignments of the serial join.
    pub expected: Vec<u32>,
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "combining thread copies in order {:?} produced {:?}, but the serial join is {:?}",
            self.order, self.got, self.expected
        )
    }
}

impl std::error::Error for ScheduleViolation {}

/// The combination orders the harness will replay for `t` copies:
/// every permutation when `t ≤` [`EXHAUSTIVE_LIMIT`], otherwise
/// [`SAMPLED_ORDERS`] seeded shuffles (always including the identity
/// order). The second component reports which case applied.
#[must_use]
pub fn combination_orders(t: usize, seed: u64) -> (Vec<Vec<usize>>, bool) {
    if t <= EXHAUSTIVE_LIMIT {
        (permutations(t), true)
    } else {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut orders = Vec::with_capacity(SAMPLED_ORDERS + 1);
        orders.push((0..t).collect::<Vec<_>>());
        for _ in 0..SAMPLED_ORDERS {
            let mut order: Vec<usize> = (0..t).collect();
            // Fisher–Yates with the seeded generator.
            for i in (1..t).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            orders.push(order);
        }
        (orders, false)
    }
}

/// All permutations of `0..t` in a deterministic order (iterative Heap's
/// algorithm).
fn permutations(t: usize) -> Vec<Vec<usize>> {
    let mut current: Vec<usize> = (0..t).collect();
    let mut out = vec![current.clone()];
    let mut counters = vec![0usize; t];
    let mut i = 0;
    while i < t {
        if counters[i] < i {
            if i % 2 == 0 {
                current.swap(0, i);
            } else {
                current.swap(counters[i], i);
            }
            out.push(current.clone());
            counters[i] += 1;
            i = 0;
        } else {
            counters[i] = 0;
            i += 1;
        }
    }
    out
}

/// Folds `copies` together in every combination order (see
/// [`combination_orders`]) with `combine`, checking each result against
/// `expected`.
///
/// # Errors
///
/// Returns the first diverging order as a [`ScheduleViolation`].
pub fn check_schedules_with<F>(
    copies: &[ClusterArray],
    expected: &ClusterArray,
    seed: u64,
    combine: F,
) -> Result<ScheduleReport, Box<ScheduleViolation>>
where
    F: Fn(&mut ClusterArray, &ClusterArray),
{
    let (orders, exhaustive) = combination_orders(copies.len(), seed);
    let expected_assignments = expected.assignments();
    for order in &orders {
        let mut it = order.iter();
        let Some(&first) = it.next() else { continue };
        let mut acc = copies[first].clone();
        for &k in it {
            combine(&mut acc, &copies[k]);
        }
        let got = acc.assignments();
        if got != expected_assignments {
            return Err(Box::new(ScheduleViolation {
                order: order.clone(),
                got,
                expected: expected_assignments,
            }));
        }
    }
    Ok(ScheduleReport { orders_checked: orders.len(), exhaustive })
}

/// Replays one chunk of the parallel sweep under permuted combination
/// schedules: splits `entries` into `threads` weight-balanced ranges,
/// processes each range serially on its own copy of `base` (exactly as
/// [`crate::sweep::ParallelChunkProcessor`] does, minus the threads),
/// computes the serial join by processing all entries in order on a
/// single copy, and then checks every combination order of the
/// per-thread copies against it with the **corrected** merge scheme.
///
/// `slot_of_edge` maps edge ids to cluster-array slots (use the identity
/// permutation when replaying outside a sweep).
///
/// # Errors
///
/// Returns the first diverging order as a [`ScheduleViolation`] — which,
/// with the corrected scheme, indicates a bug in the combination.
///
/// # Panics
///
/// Panics if an entry lists a common neighbor with no edge to both
/// endpoints in `g`, i.e. if the entries were computed over a different
/// graph.
pub fn replay_chunk_schedules<G: GraphView + ?Sized>(
    g: &G,
    slot_of_edge: &[u32],
    entries: &[SimilarityEntry],
    base: &ClusterArray,
    threads: usize,
    seed: u64,
) -> Result<ScheduleReport, Box<ScheduleViolation>> {
    let index = Arc::new(EdgeIndex::for_graph(g));
    let weights: Vec<u64> = entries.iter().map(|e| e.pair_count() as u64).collect();
    let ranges = balanced_partition_by_weight(&weights, threads);
    let copies: Vec<ClusterArray> = ranges
        .into_iter()
        .map(|r| {
            let mut local = base.clone();
            let _ =
                SerialChunkProcessor.process_entries(&index, slot_of_edge, &entries[r], &mut local);
            local
        })
        .collect();
    let mut serial = base.clone();
    let _ = SerialChunkProcessor.process_entries(&index, slot_of_edge, entries, &mut serial);
    check_schedules_with(&copies, &serial, seed, merge_cluster_arrays)
}

/// A stitch schedule whose survivor set diverged from the serial MSF
/// oracle (see [`check_stitch_schedules`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StitchViolation {
    /// The candidate visit order that produced the divergence (indices
    /// into the candidate list).
    pub order: Vec<usize>,
    /// Surviving candidate ranks the permuted stitch produced.
    pub got: Vec<u32>,
    /// Surviving candidate ranks of the serial Kruskal oracle.
    pub expected: Vec<u32>,
}

impl std::fmt::Display for StitchViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stitching candidates in visit order {:?} survived {:?}, but the serial MSF is {:?}",
            self.order, self.got, self.expected
        )
    }
}

impl std::error::Error for StitchViolation {}

/// Replays the `ufsweep` boundary stitch under explicit candidate visit
/// orders — the loom-style counterpart of [`check_schedules_with`] for
/// the Borůvka filter. A worker schedule decides which thread touches
/// which candidate first in each of the stitch's three passes (select,
/// claim, unite); this harness emulates that nondeterminism
/// deterministically by running a *sequential* Borůvka whose passes
/// visit candidates in a permuted order, and requires the surviving set
/// to equal the serial Kruskal oracle
/// ([`crate::ufsweep::kruskal_filter`]) for every replayed order —
/// the uniqueness-of-the-MSF property the parallel stitch's exactness
/// rests on.
///
/// Orders come from [`combination_orders`]: exhaustive for up to
/// [`EXHAUSTIVE_LIMIT`] candidates, a seeded sample above that.
///
/// # Errors
///
/// Returns the first diverging visit order as a [`StitchViolation`].
pub fn check_stitch_schedules(
    m: usize,
    candidates: &[Candidate],
    seed: u64,
) -> Result<ScheduleReport, Box<StitchViolation>> {
    let expected = kruskal_filter(m, candidates);
    let (orders, exhaustive) = combination_orders(candidates.len(), seed);
    for order in &orders {
        let got = stitch_under_order(m, candidates, order);
        if got != expected {
            return Err(Box::new(StitchViolation { order: order.clone(), got, expected }));
        }
    }
    Ok(ScheduleReport { orders_checked: orders.len(), exhaustive })
}

/// One sequential Borůvka stitch with every pass visiting candidates in
/// the order induced by `order` — the same select/claim/unite round
/// structure as [`crate::ufsweep::boruvka_filter`], minus the threads.
fn stitch_under_order(m: usize, candidates: &[Candidate], order: &[usize]) -> Vec<u32> {
    let mut uf = linkclust_core::unionfind::UnionFind::new(m);
    let mut live: Vec<u32> = order.iter().map(|&i| i as u32).collect();
    let mut survivors: Vec<u32> = Vec::new();
    while !live.is_empty() {
        // Select: each still-open component offers its minimum-rank
        // incident candidate (visit order only changes write order, and
        // min is write-order-free — exactly like the fetch_min pass).
        let mut best: Vec<u32> = vec![u32::MAX; m];
        let mut open = Vec::new();
        for &ci in &live {
            let c = candidates[ci as usize];
            let (ra, rb) = (uf.find(c.s1 as usize) as usize, uf.find(c.s2 as usize) as usize);
            if ra == rb {
                continue;
            }
            best[ra] = best[ra].min(ci);
            best[rb] = best[rb].min(ci);
            open.push(ci);
        }
        // Claim: winners are the claimed minima (roots unchanged — no
        // unions have happened since the select pass).
        let (mut winners, mut retained) = (Vec::new(), Vec::new());
        for &ci in &open {
            let c = candidates[ci as usize];
            let ra = uf.find(c.s1 as usize) as usize;
            let rb = uf.find(c.s2 as usize) as usize;
            if best[ra] == ci || best[rb] == ci {
                winners.push(ci);
            } else {
                retained.push(ci);
            }
        }
        // Unite: in visit order — every interleaving must succeed, the
        // forest property the parallel unite pass asserts.
        for &ci in &winners {
            let c = candidates[ci as usize];
            assert!(
                uf.union(c.s1 as usize, c.s2 as usize),
                "round winners must form a forest in every schedule"
            );
        }
        survivors.extend_from_slice(&winners);
        live = retained;
    }
    survivors.sort_unstable();
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_cluster_arrays_flawed;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{barabasi_albert, gnm, planted_partition, ring, WeightMode};
    use linkclust_graph::WeightedGraph;

    #[test]
    fn permutation_count_is_factorial() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // Every permutation distinct.
        let mut p4 = permutations(4);
        p4.sort();
        p4.dedup();
        assert_eq!(p4.len(), 24);
    }

    #[test]
    fn sampled_orders_are_deterministic_and_include_identity() {
        let (a, exhaustive_a) = combination_orders(6, 99);
        let (b, _) = combination_orders(6, 99);
        assert_eq!(a, b, "same seed must give the same schedule sample");
        assert!(!exhaustive_a);
        assert_eq!(a[0], vec![0, 1, 2, 3, 4, 5]);
        let (c, _) = combination_orders(6, 100);
        assert_ne!(a, c, "different seeds should explore different orders");
    }

    /// The paper's §VI-B counterexample, replayed through the harness:
    /// the corrected scheme passes every order, the flawed scheme is
    /// caught.
    #[test]
    fn harness_catches_the_flawed_merge_on_the_paper_counterexample() {
        let copies = [
            ClusterArray::from_parents(vec![0, 1, 1, 0]),
            ClusterArray::from_parents(vec![0, 1, 2, 2]),
        ];
        let expected = ClusterArray::from_parents(vec![0, 0, 0, 0]);

        let report = check_schedules_with(&copies, &expected, 0, |a, b| {
            merge_cluster_arrays(a, b);
        })
        .expect("corrected scheme is order-independent");
        assert_eq!(report, ScheduleReport { orders_checked: 2, exhaustive: true });

        let violation = check_schedules_with(&copies, &expected, 0, |a, b| {
            merge_cluster_arrays_flawed(a, b);
        })
        .expect_err("the flawed scheme must be caught");
        assert_eq!(violation.expected, vec![0, 0, 0, 0]);
        assert_ne!(violation.got, violation.expected);
    }

    fn replay_family(g: &WeightedGraph, label: &str) {
        let sims = compute_similarities(g).into_sorted();
        let entries: Vec<SimilarityEntry> = sims.entries().to_vec();
        let slot_of_edge: Vec<u32> = (0..g.edge_count() as u32).collect();
        let base = ClusterArray::new(g.edge_count());
        for threads in 2..=4 {
            let report = replay_chunk_schedules(g, &slot_of_edge, &entries, &base, threads, 7)
                .unwrap_or_else(|v| panic!("{label} with {threads} threads: {v}"));
            assert!(report.exhaustive, "{label}: T = {threads} must be exhaustive");
            assert!(report.orders_checked >= 2, "{label}: no orders replayed");
        }
    }

    #[test]
    fn gnm_chunks_are_schedule_independent() {
        replay_family(&gnm(40, 110, WeightMode::Unit, 11), "gnm");
    }

    #[test]
    fn barabasi_albert_chunks_are_schedule_independent() {
        replay_family(
            &barabasi_albert(45, 3, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 5),
            "barabasi_albert",
        );
    }

    #[test]
    fn planted_partition_chunks_are_schedule_independent() {
        replay_family(&planted_partition(4, 12, 0.6, 0.05, 23).graph, "planted");
    }

    #[test]
    fn ring_chunks_are_schedule_independent() {
        replay_family(&ring(30, WeightMode::Unit, 3), "ring");
    }

    #[test]
    fn mid_chunk_base_is_schedule_independent() {
        // Replay from a non-trivial base partition (a chunk mid-sweep).
        let g = gnm(36, 90, WeightMode::Unit, 17);
        let sims = compute_similarities(&g).into_sorted();
        let entries: Vec<SimilarityEntry> = sims.entries().to_vec();
        let slot_of_edge: Vec<u32> = (0..g.edge_count() as u32).collect();
        let mut base = ClusterArray::new(g.edge_count());
        let half = entries.len() / 2;
        let index = Arc::new(EdgeIndex::for_graph(&g));
        let _ = SerialChunkProcessor.process_entries(
            &index,
            &slot_of_edge,
            &entries[..half],
            &mut base,
        );
        let report = replay_chunk_schedules(&g, &slot_of_edge, &entries[half..], &base, 4, 29)
            .unwrap_or_else(|v| panic!("mid-chunk replay: {v}"));
        assert!(report.exhaustive);
    }

    /// The full (unfiltered) operation stream of a graph's sweep is a
    /// valid candidate list — blocks of size one — so the stitch must
    /// survive it under every visit order.
    fn sweep_op_stream(g: &WeightedGraph) -> (usize, Vec<Candidate>) {
        let sims = compute_similarities(g).into_sorted();
        let index = EdgeIndex::for_graph(g);
        let mut ops = Vec::new();
        for (ei, entry) in sims.entries().iter().enumerate() {
            let (vi, vj) = (entry.pair.first(), entry.pair.second());
            for &vk in &entry.common_neighbors {
                let e1 = index.edge_between(vi, vk).unwrap();
                let e2 = index.edge_between(vj, vk).unwrap();
                ops.push(Candidate {
                    s1: e1.index() as u32,
                    s2: e2.index() as u32,
                    entry: ei as u32,
                });
            }
        }
        (g.edge_count(), ops)
    }

    #[test]
    fn stitch_survivors_are_schedule_independent_on_sweep_streams() {
        for seed in [3, 19, 31] {
            let g = gnm(18, 40, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let (m, ops) = sweep_op_stream(&g);
            let report = check_stitch_schedules(m, &ops, seed)
                .unwrap_or_else(|v| panic!("gnm seed {seed}: {v}"));
            assert!(report.orders_checked >= 2, "seed {seed}: no orders replayed");
        }
    }

    #[test]
    fn stitch_exhaustive_mode_covers_tiny_candidate_lists() {
        // Four candidates over five slots: a path plus one redundant op.
        let candidates = [
            Candidate { s1: 0, s2: 1, entry: 0 },
            Candidate { s1: 1, s2: 2, entry: 1 },
            Candidate { s1: 0, s2: 2, entry: 2 }, // cycle-closer: must never survive
            Candidate { s1: 3, s2: 4, entry: 3 },
        ];
        let report = check_stitch_schedules(5, &candidates, 0).expect("exact in every order");
        assert!(report.exhaustive);
        assert_eq!(report.orders_checked, 24);
        assert_eq!(kruskal_filter(5, &candidates), vec![0, 1, 3]);
    }

    #[test]
    fn stitch_harness_catches_a_broken_oracle() {
        // Sanity: the harness really compares against Kruskal — a
        // candidate list where visit order would matter for a *naive*
        // greedy (no min-claim) stitch still converges to the MSF here.
        let candidates = [
            Candidate { s1: 0, s2: 1, entry: 0 },
            Candidate { s1: 1, s2: 0, entry: 1 },
            Candidate { s1: 1, s2: 2, entry: 2 },
        ];
        let report = check_stitch_schedules(3, &candidates, 1).unwrap();
        assert!(report.exhaustive);
        assert_eq!(kruskal_filter(3, &candidates), vec![0, 2]);
    }

    #[test]
    fn sampled_mode_kicks_in_above_the_exhaustive_limit() {
        let g = gnm(30, 70, WeightMode::Unit, 41);
        let sims = compute_similarities(&g).into_sorted();
        let entries: Vec<SimilarityEntry> = sims.entries().to_vec();
        let slot_of_edge: Vec<u32> = (0..g.edge_count() as u32).collect();
        let base = ClusterArray::new(g.edge_count());
        let report = replay_chunk_schedules(&g, &slot_of_edge, &entries, &base, 6, 13)
            .unwrap_or_else(|v| panic!("sampled replay: {v}"));
        assert!(!report.exhaustive);
        assert_eq!(report.orders_checked, SAMPLED_ORDERS + 1);
    }
}
