//! Parallel sorting of the similarity list.
//!
//! The paper parallelizes the initialization passes and the sweep but
//! leaves the O(K₁ log K₁) sort of list `L` serial. On large graphs the
//! sort is a visible fraction of Phase II, so this module adds a scoped
//! parallel merge sort: split into `T` runs, sort each on its own
//! thread, then merge pairwise with the same hierarchical shape as the
//! paper's map/array combination steps. Documented as an extension in
//! DESIGN.md.

use linkclust_core::telemetry::{Phase, Telemetry};
use linkclust_core::{PairSimilarities, SimilarityEntry};

use crate::pool::{hierarchical_reduce, partition_ranges};

/// Sorts arbitrary data with a scoped parallel merge sort.
///
/// `compare` must be a strict weak ordering. Falls back to the standard
/// library sort for small inputs or `threads == 1`.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn parallel_sort_by<T, F>(mut items: Vec<T>, threads: usize, compare: F) -> Vec<T>
where
    T: Send,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || items.len() < 4 * threads || items.len() < 64 {
        items.sort_by(&compare);
        return items;
    }
    let ranges = partition_ranges(items.len(), threads);
    // Carve the vector into runs (preserving order).
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    for range in ranges.into_iter().rev() {
        let run: Vec<T> = items.split_off(range.start);
        runs.push(run);
    }
    runs.reverse();
    // Sort each run on its own thread.
    let sorted_runs: Vec<Vec<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = runs
            .into_iter()
            .map(|mut run| {
                let compare = &compare;
                s.spawn(move || {
                    run.sort_by(compare);
                    run
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sort thread panicked")).collect()
    });
    // Merge pairwise, hierarchically.
    hierarchical_reduce(sorted_runs, |a, b| merge_two(a, b, &compare)).unwrap_or_default()
}

fn merge_two<T, F>(a: Vec<T>, b: Vec<T>, compare: &F) -> Vec<T>
where
    F: Fn(&T, &T) -> std::cmp::Ordering,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    while let (Some(x), Some(y)) = (ia.peek(), ib.peek()) {
        if compare(x, y) != std::cmp::Ordering::Greater {
            out.extend(ia.next());
        } else {
            out.extend(ib.next());
        }
    }
    out.extend(ia);
    out.extend(ib);
    out
}

/// Sorts a [`PairSimilarities`] into the list `L` (non-increasing score,
/// ties by vertex pair) using `threads` worker threads. Produces exactly
/// the same order as [`PairSimilarities::into_sorted`].
#[must_use]
pub fn parallel_into_sorted(sims: PairSimilarities, threads: usize) -> PairSimilarities {
    parallel_into_sorted_with(sims, threads, &Telemetry::disabled())
}

/// [`parallel_into_sorted`] with telemetry: the sort runs under a
/// [`Phase::Sort`] span (recorded even when the input is already sorted,
/// so run reports always account for the phase).
#[must_use]
pub fn parallel_into_sorted_with(
    sims: PairSimilarities,
    threads: usize,
    telemetry: &Telemetry,
) -> PairSimilarities {
    let _span = telemetry.span(Phase::Sort);
    if sims.is_sorted() {
        return sims;
    }
    let entries: Vec<SimilarityEntry> = sims.into_iter().collect();
    let sorted = parallel_sort_by(entries, threads, |a, b| {
        b.score.total_cmp(&a.score).then_with(|| a.pair.cmp(&b.pair))
    });
    PairSimilarities::from_sorted(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_like_std() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [0usize, 1, 5, 63, 64, 100, 1000, 4097] {
            let items: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
            let mut expected = items.clone();
            expected.sort();
            for threads in [1, 2, 3, 4, 7] {
                let got = parallel_sort_by(items.clone(), threads, |a, b| a.cmp(b));
                assert_eq!(got, expected, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn stable_for_equal_keys_in_merge_order() {
        // merge_two prefers the left run on ties, so items with equal
        // keys keep run-relative order — verify output is sorted and a
        // permutation.
        let items: Vec<(u32, u32)> = (0..500).map(|i| (i % 7, i)).collect();
        let got = parallel_sort_by(items.clone(), 4, |a, b| a.0.cmp(&b.0));
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut a = got;
        a.sort();
        let mut b = items;
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_l_matches_serial_l() {
        for seed in 0..3 {
            let g = gnm(40, 200, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let serial = compute_similarities(&g).into_sorted();
            for threads in [1, 2, 4] {
                let parallel = parallel_into_sorted(compute_similarities(&g), threads);
                assert!(parallel.is_sorted());
                assert_eq!(serial.entries(), parallel.entries(), "threads {threads}");
            }
        }
    }

    #[test]
    fn already_sorted_is_noop() {
        let g = gnm(20, 60, WeightMode::Unit, 2);
        let sorted = compute_similarities(&g).into_sorted();
        let again = parallel_into_sorted(sorted.clone(), 4);
        assert_eq!(sorted, again);
    }
}
