//! Parallel sorting of the similarity list.
//!
//! The paper parallelizes the initialization passes and the sweep but
//! leaves the O(K₁ log K₁) sort of list `L` serial. On large graphs the
//! sort is a visible fraction of Phase II, so this module adds a pooled
//! parallel merge sort: split into `T` runs, sort each as a task on the
//! persistent [`WorkerPool`], then merge pairwise with the same
//! hierarchical shape as the paper's map/array combination steps. The
//! merge rounds recycle the spent input vectors of the previous round as
//! output buffers (`merge_two_into`), so after the first round no merge
//! allocates. Documented as an extension in DESIGN.md.

use std::sync::Arc;

use linkclust_core::telemetry::{Phase, Telemetry};
use linkclust_core::{PairSimilarities, SimilarityEntry};

use crate::pool::{partition_ranges, Task, WorkerPool};

/// Sorts arbitrary data with a parallel merge sort on a transient pool.
///
/// `compare` must be a strict weak ordering. Falls back to the standard
/// library sort for small inputs or `threads == 1`.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn parallel_sort_by<T, F>(items: Vec<T>, threads: usize, compare: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + 'static,
{
    assert!(threads > 0, "need at least one thread");
    if sort_serially(items.len(), threads) {
        let mut items = items;
        items.sort_by(compare);
        return items;
    }
    parallel_sort_pooled(&WorkerPool::new(threads), items, compare)
}

/// `true` when the input is too small for fan-out to pay off.
fn sort_serially(len: usize, threads: usize) -> bool {
    threads == 1 || len < 4 * threads || len < 64
}

/// What one pooled merge task returns: the merged run plus its two spent
/// input buffers (empty, capacity intact) for recycling.
type MergeRound<T> = (Vec<T>, Vec<T>, Vec<T>);

/// [`parallel_sort_by`] on a caller-supplied [`WorkerPool`] — the variant
/// the facade uses so the run's single pool also serves the sort.
#[must_use]
pub fn parallel_sort_pooled<T, F>(pool: &WorkerPool, mut items: Vec<T>, compare: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + 'static,
{
    let threads = pool.threads();
    if sort_serially(items.len(), threads) {
        items.sort_by(compare);
        return items;
    }
    let ranges = partition_ranges(items.len(), threads);
    // Carve the vector into runs (preserving order).
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    for range in ranges.into_iter().rev() {
        runs.push(items.split_off(range.start));
    }
    runs.reverse();
    let compare = Arc::new(compare);
    // Sort each run as a pool task.
    let sort_tasks: Vec<Task<Vec<T>>> = runs
        .into_iter()
        .map(|mut run| {
            let compare = Arc::clone(&compare);
            Box::new(move || {
                run.sort_by(|a, b| compare(a, b));
                run
            }) as Task<Vec<T>>
        })
        .collect();
    let mut runs = pool.run_tasks(sort_tasks);

    // Merge pairwise, hierarchically. Each merge returns its two spent
    // inputs (empty, capacity intact); they become the output buffers of
    // the next round, so only the first round allocates.
    let mut spare: Vec<Vec<T>> = Vec::new();
    while runs.len() > 1 {
        let carry = if runs.len() % 2 == 1 { runs.pop() } else { None };
        let mut merge_tasks: Vec<Task<MergeRound<T>>> = Vec::with_capacity(runs.len() / 2);
        let mut it = runs.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            let compare = Arc::clone(&compare);
            let out = spare.pop().unwrap_or_default();
            merge_tasks.push(Box::new(move || {
                let (mut a, mut b, mut out) = (a, b, out);
                merge_two_into(&mut a, &mut b, &mut out, &*compare);
                (out, a, b)
            }));
        }
        runs = Vec::with_capacity(merge_tasks.len() + 1);
        for (merged, spent_a, spent_b) in pool.run_tasks(merge_tasks) {
            runs.push(merged);
            spare.push(spent_a);
            spare.push(spent_b);
        }
        runs.extend(carry);
    }
    runs.pop().unwrap_or_default()
}

/// Merges two sorted vectors into `out` (cleared first), draining both
/// inputs; ties prefer `a`, keeping run order stable. The inputs come
/// back empty with their capacity intact, ready for reuse as future
/// output buffers.
fn merge_two_into<T, F>(a: &mut Vec<T>, b: &mut Vec<T>, out: &mut Vec<T>, compare: &F)
where
    F: Fn(&T, &T) -> std::cmp::Ordering,
{
    out.clear();
    out.reserve(a.len() + b.len());
    let mut ia = a.drain(..).peekable();
    let mut ib = b.drain(..).peekable();
    while let (Some(x), Some(y)) = (ia.peek(), ib.peek()) {
        if compare(x, y) != std::cmp::Ordering::Greater {
            out.extend(ia.next());
        } else {
            out.extend(ib.next());
        }
    }
    out.extend(ia);
    out.extend(ib);
}

/// Sorts a [`PairSimilarities`] into the list `L` (non-increasing score,
/// ties by vertex pair) using `threads` worker threads. Produces exactly
/// the same order as [`PairSimilarities::into_sorted`].
#[must_use]
pub fn parallel_into_sorted(sims: PairSimilarities, threads: usize) -> PairSimilarities {
    parallel_into_sorted_with(sims, threads, &Telemetry::disabled())
}

/// [`parallel_into_sorted`] with telemetry: the sort runs under a
/// [`Phase::Sort`] span (recorded even when the input is already sorted,
/// so run reports always account for the phase).
#[must_use]
pub fn parallel_into_sorted_with(
    sims: PairSimilarities,
    threads: usize,
    telemetry: &Telemetry,
) -> PairSimilarities {
    if sims.is_sorted() {
        let _span = telemetry.span(Phase::Sort);
        return sims;
    }
    let pool = WorkerPool::new(threads).with_telemetry(telemetry.clone());
    parallel_into_sorted_pooled(&pool, sims, telemetry)
}

/// [`parallel_into_sorted`] on a caller-supplied [`WorkerPool`].
#[must_use]
pub fn parallel_into_sorted_pooled(
    pool: &WorkerPool,
    sims: PairSimilarities,
    telemetry: &Telemetry,
) -> PairSimilarities {
    let _span = telemetry.span(Phase::Sort);
    if sims.is_sorted() {
        return sims;
    }
    let entries: Vec<SimilarityEntry> = sims.into_iter().collect();
    let sorted = parallel_sort_pooled(pool, entries, |a: &SimilarityEntry, b: &SimilarityEntry| {
        b.score.total_cmp(&a.score).then_with(|| a.pair.cmp(&b.pair))
    });
    PairSimilarities::from_sorted(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_like_std() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [0usize, 1, 5, 63, 64, 100, 1000, 4097] {
            let items: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
            let mut expected = items.clone();
            expected.sort();
            for threads in [1, 2, 3, 4, 7] {
                let got = parallel_sort_by(items.clone(), threads, |a, b| a.cmp(b));
                assert_eq!(got, expected, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_sort_reuses_one_pool_across_calls() {
        let pool = WorkerPool::new(4);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5 {
            let items: Vec<u64> = (0..700).map(|_| rng.gen_range(0..10_000)).collect();
            let mut expected = items.clone();
            expected.sort();
            assert_eq!(parallel_sort_pooled(&pool, items, |a, b| a.cmp(b)), expected);
        }
    }

    #[test]
    fn stable_for_equal_keys_in_merge_order() {
        // merge_two_into prefers the left run on ties, so items with
        // equal keys keep run-relative order — verify output is sorted
        // and a permutation.
        let items: Vec<(u32, u32)> = (0..500).map(|i| (i % 7, i)).collect();
        let got = parallel_sort_by(items.clone(), 4, |a, b| a.0.cmp(&b.0));
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut a = got;
        a.sort();
        let mut b = items;
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_two_into_drains_and_recycles() {
        let mut a = vec![1u32, 3, 5];
        let mut b = vec![2u32, 3, 6];
        let mut out = Vec::new();
        merge_two_into(&mut a, &mut b, &mut out, &|x: &u32, y: &u32| x.cmp(y));
        assert_eq!(out, vec![1, 2, 3, 3, 5, 6]);
        assert!(a.is_empty() && b.is_empty());
        assert!(a.capacity() >= 3 && b.capacity() >= 3, "capacity must survive for reuse");
    }

    #[test]
    fn parallel_l_matches_serial_l() {
        for seed in 0..3 {
            let g = gnm(40, 200, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let serial = compute_similarities(&g).into_sorted();
            for threads in [1, 2, 4] {
                let parallel = parallel_into_sorted(compute_similarities(&g), threads);
                assert!(parallel.is_sorted());
                assert_eq!(serial.entries(), parallel.entries(), "threads {threads}");
            }
        }
    }

    #[test]
    fn already_sorted_is_noop() {
        let g = gnm(20, 60, WeightMode::Unit, 2);
        let sorted = compute_similarities(&g).into_sorted();
        let again = parallel_into_sorted(sorted.clone(), 4);
        assert_eq!(sorted, again);
    }
}
