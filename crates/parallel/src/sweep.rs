//! Parallel coarse-grained sweeping (§VI-B).
//!
//! Each coarse chunk is split into `T` contiguous entry ranges of
//! near-equal incident-pair count; each thread merges its range on its
//! own copy of array `C`; the copies are combined with the corrected
//! chain-union scheme in a hierarchical (pairwise) reduction. Because the
//! combination yields the join of the per-thread partitions — which
//! equals the partition the serial chunk would produce — the parallel
//! sweep commits the same levels, cluster counts, and mode transitions as
//! the serial coarse sweep.

use linkclust_core::cluster_array::{partition_diff, MergeOutcome};
use linkclust_core::coarse::{
    coarse_sweep_with, ChunkProcessor, CoarseConfig, CoarseResult, SerialChunkProcessor,
};
use linkclust_core::telemetry::{Counter, Phase, Telemetry};
use linkclust_core::{ClusterArray, ConfigError, PairSimilarities, SimilarityEntry};
use linkclust_graph::WeightedGraph;

use crate::merge::merge_cluster_arrays;
use crate::pool::{balanced_partition_by_weight, hierarchical_reduce, run_on_ranges};

/// A [`ChunkProcessor`] that fans each chunk out over `threads` worker
/// threads (per-thread copies of `C`, hierarchical combination).
#[derive(Clone, Debug)]
pub struct ParallelChunkProcessor {
    threads: usize,
    min_entries_per_thread: usize,
    telemetry: Telemetry,
}

impl ParallelChunkProcessor {
    /// Creates a processor with `threads` worker threads; rejects
    /// `threads == 0` with [`ConfigError::ZeroThreads`].
    pub fn new(threads: usize) -> Result<Self, ConfigError> {
        if threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(ParallelChunkProcessor {
            threads,
            min_entries_per_thread: 8,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Chunks with fewer than `n` entries per thread fall back to serial
    /// processing (thread spawn overhead dominates tiny chunks). Default
    /// is 8.
    #[must_use]
    pub fn min_entries_per_thread(mut self, n: usize) -> Self {
        self.min_entries_per_thread = n.max(1);
        self
    }

    /// Attaches a telemetry handle: chunk fan-out and combination are
    /// timed ([`Phase::ChunkProcess`] / [`Phase::ChunkCombine`]), chunk
    /// and combine counters recorded, and per-thread incident-pair loads
    /// fed into the report's thread-item counts.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

impl ChunkProcessor for ParallelChunkProcessor {
    fn process_entries(
        &mut self,
        g: &WeightedGraph,
        slot_of_edge: &[u32],
        entries: &[SimilarityEntry],
        c: &mut ClusterArray,
    ) -> Vec<MergeOutcome> {
        self.telemetry.add(Counter::ChunksProcessed, 1);
        if self.threads == 1 || entries.len() < self.threads * self.min_entries_per_thread {
            self.telemetry.add(Counter::SerialFallbackChunks, 1);
            let span = self.telemetry.span(Phase::ChunkProcess);
            let out = SerialChunkProcessor.process_entries(g, slot_of_edge, entries, c);
            span.finish();
            return out;
        }
        let base = c.clone();
        let weights: Vec<u64> = entries.iter().map(|e| e.pair_count() as u64).collect();
        let ranges = balanced_partition_by_weight(&weights, self.threads);
        if self.telemetry.is_enabled() {
            for (thread, r) in ranges.iter().enumerate() {
                let load: u64 = weights[r.clone()].iter().sum();
                self.telemetry.thread_items(thread, load);
            }
        }

        // Step 1: every thread merges its entry range on its own copy.
        let span = self.telemetry.span(Phase::ChunkProcess);
        let copies = run_on_ranges(ranges, |r| {
            let mut local = base.clone();
            SerialChunkProcessor.process_entries(g, slot_of_edge, &entries[r], &mut local);
            local
        });
        span.finish();

        // Step 2: hierarchical pairwise combination.
        let span = self.telemetry.span(Phase::ChunkCombine);
        self.telemetry.add(Counter::ArrayCombines, copies.len().saturating_sub(1) as u64);
        let merged = hierarchical_reduce(copies, |mut a, b| {
            merge_cluster_arrays(&mut a, &b);
            a
        })
        .unwrap_or_else(|| base.clone());
        span.finish();

        // Debug builds verify the combined array is still a valid
        // descending-chain partition and only merged (never split) the
        // clusters of the pre-chunk state.
        linkclust_core::invariants::debug_check_cluster_array(&merged);
        linkclust_core::invariants::debug_check_refinement(&base, &merged);

        let outcomes = partition_diff(&base, &merged);
        *c = merged;
        outcomes
    }
}

/// Runs the coarse-grained sweep with chunks processed by `threads`
/// worker threads. Produces the same partition trajectory (levels,
/// cluster counts, epoch decisions) as the serial
/// [`coarse_sweep`](linkclust_core::coarse::coarse_sweep).
///
/// # Panics
///
/// Panics if `threads == 0`, or under the same conditions as the serial
/// coarse sweep (unsorted input, degenerate config).
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_core::init::compute_similarities;
/// use linkclust_core::coarse::CoarseConfig;
/// use linkclust_parallel::parallel_coarse_sweep;
///
/// let g = gnm(30, 120, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
/// let sims = compute_similarities(&g).into_sorted();
/// let cfg = CoarseConfig { phi: 10, initial_chunk: 16, ..Default::default() };
/// let r = parallel_coarse_sweep(&g, &sims, cfg, 4);
/// assert!(r.dendrogram().merge_count() > 0);
/// ```
#[must_use]
pub fn parallel_coarse_sweep(
    g: &WeightedGraph,
    sorted: &PairSimilarities,
    config: CoarseConfig,
    threads: usize,
) -> CoarseResult {
    let mut processor = ParallelChunkProcessor::new(threads).unwrap_or_else(|e| panic!("{e}"));
    coarse_sweep_with(g, sorted, config, &mut processor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::coarse::coarse_sweep;
    use linkclust_core::init::compute_similarities;
    use linkclust_core::reference::canonical_labels;
    use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};

    fn canon(labels: &[u32]) -> Vec<usize> {
        canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
    }

    #[test]
    fn matches_serial_coarse_trajectory() {
        for seed in 0..3 {
            let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = compute_similarities(&g).into_sorted();
            let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
            let serial = coarse_sweep(&g, &sims, cfg);
            for threads in [2, 4] {
                // Force parallel processing even for small chunks so the
                // combination path is exercised.
                let mut proc =
                    ParallelChunkProcessor::new(threads).unwrap().min_entries_per_thread(1);
                let par = coarse_sweep_with(&g, &sims, cfg, &mut proc);
                // The partition trajectory must match level by level.
                let sl: Vec<_> = serial.levels().iter().map(|l| (l.level, l.clusters)).collect();
                let pl: Vec<_> = par.levels().iter().map(|l| (l.level, l.clusters)).collect();
                assert_eq!(sl, pl, "seed {seed} threads {threads}");
                assert_eq!(
                    canon(&serial.output().edge_assignments()),
                    canon(&par.output().edge_assignments()),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn power_law_graph_parallel_partition_is_correct() {
        let g = barabasi_albert(120, 5, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 4);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 1, initial_chunk: 32, ..Default::default() };
        // phi = 1 processes everything: final partition must equal the
        // fine-grained single-linkage partition.
        let fine = linkclust_core::LinkClustering::new().run(&g);
        let mut proc = ParallelChunkProcessor::new(3).unwrap().min_entries_per_thread(1);
        let par = coarse_sweep_with(&g, &sims, cfg, &mut proc);
        assert_eq!(canon(&fine.edge_assignments()), canon(&par.output().edge_assignments()));
    }

    #[test]
    fn single_thread_processor_is_serial() {
        let g = gnm(25, 80, WeightMode::Unit, 6);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 3, initial_chunk: 4, ..Default::default() };
        let serial = coarse_sweep(&g, &sims, cfg);
        let par = parallel_coarse_sweep(&g, &sims, cfg, 1);
        assert_eq!(serial.levels(), par.levels());
    }

    #[test]
    fn dendrogram_cluster_accounting_is_exact() {
        let g = gnm(40, 170, WeightMode::Uniform { lo: 0.3, hi: 1.6 }, 2);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 4, initial_chunk: 16, ..Default::default() };
        let mut proc = ParallelChunkProcessor::new(4).unwrap().min_entries_per_thread(1);
        let r = coarse_sweep_with(&g, &sims, cfg, &mut proc);
        // edge_count - merges == clusters at the last level.
        let last = r.levels().last().expect("at least one level");
        assert_eq!(r.dendrogram().final_cluster_count(), last.clusters);
    }
}

#[cfg(test)]
mod processor_equivalence_tests {
    use super::*;
    use linkclust_core::coarse::SerialChunkProcessor;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};

    #[test]
    fn processor_matches_serial_on_first_chunk() {
        let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 0);
        let sims = compute_similarities(&g).into_sorted();
        let entries = sims.entries();
        let slot: Vec<u32> = (0..g.edge_count() as u32).collect();
        // take first few entries as the chunk
        for take in [3usize, 5, 8, 12, 20] {
            let chunk = &entries[..take];
            let mut c_serial = ClusterArray::new(g.edge_count());
            SerialChunkProcessor.process_entries(&g, &slot, chunk, &mut c_serial);
            let mut c_par = ClusterArray::new(g.edge_count());
            let mut proc = ParallelChunkProcessor::new(2).unwrap().min_entries_per_thread(1);
            proc.process_entries(&g, &slot, chunk, &mut c_par);
            assert_eq!(c_serial.assignments(), c_par.assignments(), "take={take}");
            assert_eq!(c_serial.cluster_count(), c_par.cluster_count(), "take={take}");
            assert_eq!(c_par.cluster_count(), c_par.count_roots(), "live counter must stay exact");
        }
    }
}
